"""Unit tests for individual isolation rewrite rules (paper Fig. 5)."""

from repro.algebra import (
    Attach,
    Comparison,
    Cross,
    Distinct,
    Join,
    LitTable,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
    col,
    evaluate,
    infer_properties,
    lit,
)
from repro.algebra.dagutils import parents_map
from repro.rewrite import rules as R
from repro.rewrite.rules import RewriteContext


def ctx_for(root):
    return RewriteContext(
        root=root, props=infer_properties(root), parents=parents_map(root)
    )


def serial(node, item="item", pos="pos"):
    return Serialize(node, item=item, pos=pos)


def test_rule_1_cross_with_single_row_literal():
    q = LitTable(("item",), [(1,), (2,)])
    loop = LitTable(("pos",), [(9,)])
    cross = Cross(q, loop)
    root = serial(cross)
    replacement = R.rule_1_cross_literal(cross, ctx_for(root))
    assert isinstance(replacement, Attach)
    assert evaluate(replacement).rows == [(1, 9), (2, 9)]


def test_rule_1_cross_with_empty_literal():
    q = LitTable(("item", "x"), [(1, 2), (3, 4)])
    cross = Cross(q, LitTable(("pos",), []))
    replacement = R.rule_1_cross_literal(cross, ctx_for(serial(cross)))
    assert replacement is not None
    assert evaluate(replacement).rows == []


def test_rule_2_merges_projections():
    t = LitTable(("a", "b"), [(1, 2)])
    inner = Project(t, [("x", "a"), ("y", "b")])
    outer = Project(inner, [("item", "x"), ("pos", "y")])
    replacement = R.rule_2_merge_projects(outer, ctx_for(serial(outer)))
    assert isinstance(replacement, Project)
    assert replacement.child is t
    assert replacement.cols == (("item", "a"), ("pos", "b"))


def test_rule_3_const_join_to_cross():
    left = Attach(LitTable(("item",), [(1,)]), "a", 1)
    right = Attach(LitTable(("pos",), [(2,)]), "b", 1)
    join = Join(left, right, Comparison("=", col("a"), col("b")))
    replacement = R.rule_3_const_join_to_cross(join, ctx_for(serial(join)))
    assert isinstance(replacement, Cross)


def test_rule_4_5_6_unreferenced_generators():
    t = LitTable(("item", "pos"), [(1, 1)])
    attach = Attach(t, "junk", 0)
    root = serial(attach)
    assert R.rule_4_attach_unreferenced(attach, ctx_for(root)) is t

    rank = RowRank(t, "junk", ("item",))
    root = serial(rank)
    assert R.rule_5_rank_unreferenced(rank, ctx_for(root)) is t

    rowid = RowId(t, "junk")
    root = serial(rowid)
    assert R.rule_6_rowid_unreferenced(rowid, ctx_for(root)) is t


def test_rule_7_restricts_projection():
    t = LitTable(("a", "b", "c"), [(1, 2, 3)])
    p = Project(t, [("item", "a"), ("pos", "b"), ("junk", "c")])
    replacement = R.rule_7_project_restrict(p, ctx_for(serial(p)))
    assert replacement is not None
    assert replacement.columns == ("item", "pos")


def test_rule_8_drops_const_order_columns():
    t = Attach(LitTable(("item",), [(2,), (1,)]), "c", 5)
    rank = RowRank(t, "pos", ("c", "item"))
    replacement = R.rule_8_rank_drop_const_order(rank, ctx_for(serial(rank)))
    assert isinstance(replacement, RowRank)
    assert replacement.order == ("item",)


def test_rule_8_all_const_order_becomes_attach():
    t = Attach(LitTable(("item",), [(2,), (1,)]), "c", 5)
    rank = RowRank(t, "pos", ("c",))
    replacement = R.rule_8_rank_drop_const_order(rank, ctx_for(serial(rank)))
    assert isinstance(replacement, Attach)
    assert replacement.value == 1


def test_rule_9_single_column_rank_to_projection():
    t = LitTable(("item",), [(30,), (10,)])
    rank = RowRank(t, "pos", ("item",))
    replacement = R.rule_9_rank_single_to_project(rank, ctx_for(serial(rank)))
    assert isinstance(replacement, Project)
    # order-isomorphic: serializing by the copy gives the same order
    assert [r[1] for r in evaluate(Serialize(replacement)).rows] == [10, 30]


def test_rule_10_pulls_rank_above_select():
    t = LitTable(("item", "f"), [(1, 0), (2, 1)])
    rank = RowRank(t, "pos", ("item",))
    select = Select(rank, Comparison("=", col("f"), lit(1)))
    replacement = R.rule_10_rank_pullup_unary(select, ctx_for(serial(select)))
    assert isinstance(replacement, RowRank)
    assert isinstance(replacement.child, Select)


def test_rule_10_blocked_when_predicate_uses_rank():
    t = LitTable(("item",), [(1,), (2,)])
    rank = RowRank(t, "pos", ("item",))
    select = Select(rank, Comparison("=", col("pos"), lit(1)))
    assert R.rule_10_rank_pullup_unary(select, ctx_for(serial(select))) is None


def test_rule_12_pulls_rank_above_join():
    left = RowRank(LitTable(("item",), [(1,), (2,)]), "pos", ("item",))
    right = LitTable(("b",), [(1,), (2,)])
    join = Join(left, right, Comparison("=", col("item"), col("b")))
    replacement = R.rule_12_rank_pullup_join(join, ctx_for(serial(join)))
    assert isinstance(replacement, RowRank)
    assert isinstance(replacement.child, Join)


def test_rule_13_splices_rank_criteria():
    t = LitTable(("a", "b"), [(1, 2), (2, 1)])
    inner = RowRank(t, "r1", ("a", "b"))
    outer = RowRank(inner, "pos", ("r1",))
    replacement = R.rule_13_rank_splice(outer, ctx_for(serial(Project(
        outer, [("item", "a"), ("pos", "pos")]
    ))))
    assert isinstance(replacement, RowRank)
    assert replacement.order == ("a", "b")


def test_rule_14_removes_redundant_distinct():
    t = LitTable(("item", "pos"), [(1, 1), (1, 1)])
    inner = Distinct(t)
    outer = Distinct(inner)
    root = serial(outer)
    assert R.rule_14_distinct_redundant(inner, ctx_for(root)) is t


def test_rule_15_drops_const_columns_below_distinct():
    t = Attach(LitTable(("item",), [(1,), (1,)]), "c", 9)
    d = Distinct(t)
    root = serial(Attach(Project(d, [("item", "item")]), "pos", 1))
    replacement = R.rule_15_distinct_drop_const(d, ctx_for(root))
    assert isinstance(replacement, Distinct)
    assert replacement.columns == ("item",)


def test_rule_17_pushes_join_below_select():
    t = LitTable(("a", "f"), [(1, 0), (2, 1)])
    select = Select(t, Comparison("=", col("f"), lit(1)))
    other = LitTable(("b",), [(2,)])
    join = Join(select, other, Comparison("=", col("a"), col("b")))
    replacement = R.rule_17_push_join_through_unary(
        join, ctx_for(serial(Project(join, [("item", "a"), ("pos", "b")])))
    )
    assert isinstance(replacement, Select)
    assert isinstance(replacement.child, Join)
    assert evaluate(replacement).rows == [(2, 1, 2)]


def test_rule_17_pushes_join_below_renaming_projection():
    t = LitTable(("x",), [(1,), (2,)])
    p = Project(t, [("a", "x")])
    other = LitTable(("b",), [(2,)])
    join = Join(p, other, Comparison("=", col("a"), col("b")))
    replacement = R.rule_17_push_join_through_unary(
        join, ctx_for(serial(Project(join, [("item", "a"), ("pos", "b")])))
    )
    assert isinstance(replacement, Project)
    assert evaluate(replacement).rows == [(2, 2)]


def test_rule_19_collapses_key_selfjoin_over_shared_node():
    base = RowId(LitTable(("v",), [(10,), (20,)]), "k")
    left = Project(base, [("a", "k"), ("v1", "v")])
    right = Project(base, [("b", "k"), ("v2", "v")])
    join = Join(left, right, Comparison("=", col("a"), col("b")))
    root = serial(Project(join, [("item", "v1"), ("pos", "v2")]))
    replacement = R.rule_19_collapse_key_selfjoin(join, ctx_for(root))
    assert isinstance(replacement, Project)
    assert replacement.child is base
    assert sorted(evaluate(replacement).rows) == [
        (1, 10, 1, 10),
        (2, 20, 2, 20),
    ]


def test_rule_20_provenance_selfjoin_resurrects_columns():
    base = LitTable(("k", "w"), [(1, "x"), (2, "y")])
    # left: a copy chain of k that dropped w
    left = Select(Project(base, [("a", "k")]), Comparison(">", col("a"), lit(0)))
    right = Project(base, [("b", "k"), ("w2", "w")])
    join = Join(left, right, Comparison("=", col("a"), col("b")))
    root = serial(Project(join, [("item", "a"), ("pos", "w2")]))
    expected = sorted(evaluate(join).rows)  # before in-place widening
    original_cols = join.columns
    replacement = R.rule_20_provenance_selfjoin(join, ctx_for(root))
    assert replacement is not None
    # the replacement supplies at least the original join's columns
    out = evaluate(replacement)
    indices = [out.columns.index(c) for c in original_cols]
    projected = sorted(tuple(r[i] for i in indices) for r in out.rows)
    assert projected == expected


def test_rule_21_translates_rowid_correlation():
    base = RowId(LitTable(("u", "x"), [(1, "p"), (2, "q")]), "k")
    left = Project(base, [("a", "k"), ("lx", "x")])
    right = Project(base, [("b", "k"), ("rx", "x")])
    join = Join(left, right, Comparison("=", col("a"), col("b")))
    root = serial(Project(join, [("item", "lx"), ("pos", "rx")]))
    expected = sorted(
        (r[join.columns.index("lx")], r[join.columns.index("rx")])
        for r in evaluate(join).rows
    )
    replacement = R.rule_21_rowid_join_translation(join, ctx_for(root))
    assert isinstance(replacement, Join)
    assert "k" not in repr(replacement.pred)
    out = evaluate(replacement)
    got = sorted(
        (r[out.columns.index("lx")], r[out.columns.index("rx")])
        for r in out.rows
    )
    assert got == expected
