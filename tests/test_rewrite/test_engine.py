"""Isolation engine driver tests: termination, phases, ablations,
join-graph detection."""

import pytest

from repro.algebra import count_ops, run_plan
from repro.compiler import compile_core
from repro.infoset import DocumentStore
from repro.rewrite import IsolationEngine, extract_join_graph, is_join_graph, isolate
from repro.rewrite.engine import ALL_RULES
from repro.xquery import normalize, parse_xquery

XML = '<r><a id="1"><b>5</b></a><a id="2"><b>7</b></a><c/></r>'


@pytest.fixture()
def store():
    s = DocumentStore()
    s.load(XML, "r.xml")
    return s


def compile_q(store, text):
    return compile_core(normalize(parse_xquery(text)), store)


QUERIES = [
    'doc("r.xml")//a',
    'doc("r.xml")//a[b]',
    'doc("r.xml")//a[b > 6]',
    'doc("r.xml")//a[@id = "1"]/b',
    'for $x in doc("r.xml")//a return $x/b',
    'for $x in doc("r.xml")//a for $y in $x/b return $y',
    'for $x in doc("r.xml")//a where $x/@id = "2" return $x',
]


@pytest.mark.parametrize("query", QUERIES)
def test_isolation_terminates_and_reaches_join_graph(store, query):
    plan = compile_q(store, query)
    reference = run_plan(plan)
    isolated, stats = isolate(compile_q(store, query))
    assert run_plan(isolated) == reference
    assert is_join_graph(isolated), query
    assert stats.steps < 2_000


def test_stats_collects_applications(store):
    _, stats = isolate(compile_q(store, 'doc("r.xml")//a[b]'))
    assert stats.total() == stats.steps > 0
    assert stats.total("16") >= 1


def test_engine_respects_disabled_rules(store):
    engine = IsolationEngine(disabled=set(ALL_RULES))
    plan = compile_q(store, 'doc("r.xml")//a[b]')
    before = count_ops(plan)
    isolated, stats = engine.isolate(plan)
    assert stats.total() == 0
    assert count_ops(isolated) == before  # nothing happened


def test_max_steps_budget(store):
    from repro.errors import RewriteError

    engine = IsolationEngine(max_steps=1)
    with pytest.raises(RewriteError):
        engine.isolate(compile_q(store, 'doc("r.xml")//a[b]'))


def test_extract_join_graph_split(store):
    isolated, _ = isolate(compile_q(store, 'doc("r.xml")//a[b]'))
    split = extract_join_graph(isolated)
    assert split.root is isolated
    assert split.join_count >= 1
    assert split.doc_references >= 2


def test_all_rule_names_unique():
    assert len(ALL_RULES) == len(set(ALL_RULES))


def test_idempotent_isolation(store):
    """Isolating an already isolated plan changes nothing material."""
    isolated, _ = isolate(compile_q(store, 'doc("r.xml")//a[b]'))
    reference = run_plan(isolated)
    again, stats = isolate(isolated)
    assert run_plan(again) == reference
    assert is_join_graph(again)
