"""Differential & property-based testing of join graph isolation.

The reference interpreter on the *stacked* plan defines the semantics;
isolation and both SQL paths must agree on randomly generated queries
over randomly generated documents — the strongest invariant in this
repository (isolation preserves result sequence, order and duplicate
semantics).

Isolation runs with the :class:`~repro.analysis.PlanSanitizer` active
(per-step invariant checking *and* per-step re-interpretation), so a
failure names the individual Fig. 5 rule that broke the plan instead
of merely reporting a wrong final result.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import PlanSanitizer
from repro.compiler import compile_core
from repro.algebra import run_plan
from repro.infoset import DocumentStore
from repro.rewrite import isolate
from repro.sql import SQLiteBackend, generate_join_graph_sql, generate_stacked_sql
from repro.xquery import normalize, parse_xquery

# -- random documents ---------------------------------------------------------

TAGS = ("a", "b", "c", "d")
ATTRS = ("id", "ref")


def random_xml(rng: random.Random, max_nodes: int = 40) -> str:
    budget = [rng.randint(5, max_nodes)]

    def element(depth: int) -> str:
        budget[0] -= 1
        tag = rng.choice(TAGS)
        attrs = ""
        if rng.random() < 0.4:
            attrs = f' {rng.choice(ATTRS)}="{rng.randint(0, 3)}"'
        children: list[str] = []
        while budget[0] > 0 and rng.random() < (0.7 if depth < 4 else 0.2):
            if rng.random() < 0.35:
                budget[0] -= 1
                children.append(str(rng.randint(0, 9)))
            else:
                children.append(element(depth + 1))
        return f"<{tag}{attrs}>{''.join(children)}</{tag}>"

    return element(0)


# -- random queries -----------------------------------------------------------

AXES = (
    "child",
    "descendant",
    "descendant-or-self",
    "self",
    "parent",
    "ancestor",
    "ancestor-or-self",
    "following",
    "preceding",
    "following-sibling",
    "preceding-sibling",
)


def random_query(rng: random.Random) -> str:
    def path(base: str, depth: int) -> str:
        steps = rng.randint(1, 3)
        out = base
        for _ in range(steps):
            axis = rng.choice(AXES)
            test = rng.choice(TAGS + ("*", "node()", "text()"))
            out += f"/{axis}::{test}"
            if rng.random() < 0.3 and depth < 2:
                out += f"[{predicate(rng, depth + 1)}]"
        return out

    def predicate(rng: random.Random, depth: int) -> str:
        kind = rng.random()
        if kind < 0.4:
            return path("", depth).lstrip("/") or "b"
        if kind < 0.8:
            op = rng.choice(("=", "!=", "<", "<=", ">", ">="))
            literal = rng.choice(('"1"', '"2"', "1", "2.5"))
            return f"{rng.choice(TAGS)} {op} {literal}"
        return f"@{rng.choice(ATTRS)} = \"{rng.randint(0, 3)}\""

    shape = rng.random()
    if shape < 0.5:
        return path('doc("t.xml")', 0)
    if shape < 0.8:
        inner = path('doc("t.xml")', 0)
        body = path("$x", 1)
        return f"for $x in {inner} return {body}"
    inner = path('doc("t.xml")', 0)
    cond = rng.choice((f"$x/{rng.choice(TAGS)}", f"$x/@id = \"1\""))
    return f"for $x in {inner} return if ({cond}) then $x else ()"


# -- the differential property ------------------------------------------------


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_isolation_and_sql_preserve_semantics(seed: int):
    rng = random.Random(seed)
    store = DocumentStore()
    store.load(random_xml(rng), "t.xml")
    query = random_query(rng)
    core = normalize(parse_xquery(query))

    stacked = compile_core(core, store)
    reference = run_plan(stacked)

    isolated, _ = isolate(
        compile_core(core, store), sanitizer=PlanSanitizer(interpret=True)
    )
    assert run_plan(isolated) == reference, query

    backend = SQLiteBackend(store.table)
    assert backend.run(generate_stacked_sql(stacked)) == reference, query
    assert backend.run(generate_join_graph_sql(isolated)) == reference, query
    backend.close()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_planner_engine_agrees(seed: int):
    from repro.planner import JoinGraphPlanner
    from repro.sql import flatten_query

    rng = random.Random(seed)
    store = DocumentStore()
    store.load(random_xml(rng), "t.xml")
    query = random_query(rng)
    core = normalize(parse_xquery(query))
    reference = run_plan(compile_core(core, store))

    isolated, _ = isolate(compile_core(core, store))
    flat = flatten_query(isolated)
    plan = JoinGraphPlanner(store.table).plan(flat)
    # the planner returns items ordered by the same criteria
    assert plan.execute() == reference, query


FIXED_QUERIES = [
    'doc("t.xml")/descendant::a/child::b',
    'doc("t.xml")/descendant::b[c]',
    'doc("t.xml")/descendant::a[b > 1]/child::*',
    'doc("t.xml")/descendant::c/parent::*',
    'doc("t.xml")/descendant::b/following-sibling::*',
    'doc("t.xml")/descendant::a/ancestor-or-self::a',
    'for $x in doc("t.xml")/descendant::a return $x/child::text()',
    'for $x in doc("t.xml")//a for $y in $x//b return $y',
    'for $x in doc("t.xml")//a where $x/@id = "1" return $x/child::b',
    'doc("t.xml")//a[@id = "1"][b]',
    'for $x in doc("t.xml")//b where $x/preceding::c return $x',
]


@pytest.mark.parametrize("query", FIXED_QUERIES)
def test_fixed_query_corpus(query: str):
    rng = random.Random(1234)
    store = DocumentStore()
    store.load(random_xml(rng, max_nodes=60), "t.xml")
    core = normalize(parse_xquery(query))
    stacked = compile_core(core, store)
    reference = run_plan(stacked)
    isolated, _ = isolate(
        compile_core(core, store), sanitizer=PlanSanitizer(interpret=True)
    )
    assert run_plan(isolated) == reference
    with SQLiteBackend(store.table) as backend:
        assert backend.run(generate_join_graph_sql(isolated)) == reference
