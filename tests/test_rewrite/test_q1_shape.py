"""Paper Figs. 4 & 7: the initial stacked plan for Q1 versus the
isolated join graph — shape assertions on both."""

import pytest

from repro.algebra import count_ops, run_plan
from repro.algebra.dagutils import all_nodes
from repro.algebra.ops import Distinct, DocScan, Join, RowId, RowRank, Select
from repro.compiler import compile_core
from repro.rewrite import extract_join_graph, is_join_graph, isolate
from repro.xquery import normalize, parse_xquery

Q1 = 'doc("auction.xml")/descendant::open_auction[bidder]'


@pytest.fixture()
def q1_plans(fig2_store):
    core = normalize(parse_xquery(Q1))
    stacked = compile_core(core, fig2_store)
    isolated, stats = isolate(compile_core(core, fig2_store))
    return stacked, isolated, stats


def test_stacked_plan_has_scattered_blocking_operators(q1_plans):
    """Fig. 4: ranks and distincts occur throughout the initial plan."""
    stacked, _, _ = q1_plans
    ops = count_ops(stacked)
    assert ops["RowRank"] >= 4  # Ddo x2, Step x2, For
    assert ops["Distinct"] >= 3  # Ddo x2, If, ...
    assert ops["RowId"] == 1  # the For's #inner
    assert ops["DocScan"] == 1  # single shared doc leaf


def test_isolated_plan_matches_fig7(q1_plans):
    """Fig. 7: single tail δ, no rank/row-id, two axis joins over
    three doc references."""
    _, isolated, _ = q1_plans
    ops = count_ops(isolated)
    assert ops["Distinct"] == 1
    assert ops.get("RowId", 0) == 0
    assert ops.get("RowRank", 0) == 0
    assert ops["Join"] == 2
    assert ops["DocScan"] == 1
    assert is_join_graph(isolated)


def test_isolation_preserves_result(q1_plans):
    stacked, isolated, _ = q1_plans
    assert run_plan(stacked) == run_plan(isolated) == [1]


def test_tail_graph_separation(q1_plans):
    """The δ sits in the tail; the graph region holds only joins,
    selections and projections over the shared doc leaf."""
    _, isolated, _ = q1_plans
    split = extract_join_graph(isolated)
    assert any(isinstance(op, Distinct) for op in split.tail)
    graph_nodes = all_nodes(split.graph_root)
    assert not any(isinstance(n, (Distinct, RowRank, RowId)) for n in graph_nodes)
    assert sum(1 for n in graph_nodes if isinstance(n, DocScan)) == 1
    assert split.doc_references == 3  # doc node, open_auction, bidder


def test_node_tests_remain_as_selections(q1_plans):
    """The three σ(doc) legs carry the kind/name tests of Fig. 7."""
    _, isolated, _ = q1_plans
    split = extract_join_graph(isolated)
    tests = set()
    for node in all_nodes(split.graph_root):
        if isinstance(node, Select):
            rendered = repr(node.pred)
            for tag in ("auction.xml", "open_auction", "bidder"):
                if f"'{tag}'" in rendered:
                    tests.add(tag)
    assert tests == {"auction.xml", "open_auction", "bidder"}


def test_join_predicates_are_axis_ranges(q1_plans):
    _, isolated, _ = q1_plans
    split = extract_join_graph(isolated)
    joins = [n for n in all_nodes(split.graph_root) if isinstance(n, Join)]
    assert len(joins) == 2
    rendered = " ".join(repr(j.pred) for j in joins)
    assert "pre" in rendered and "size" in rendered
    assert "level" in rendered  # the child axis conjunct


def test_rule_application_counts(q1_plans):
    """Isolation applies the documented rule families."""
    _, _, stats = q1_plans
    assert stats.applications["16"] >= 1  # tail δ introduced
    assert stats.applications["20"] >= 1  # key self-joins collapsed
    assert stats.applications["14"] >= 1  # stacked δs removed
    assert stats.cycles_broken == 0
