"""Paper Section 6 ("Work in flux"): tall stacked plans with scattered
ρ operators are also an artifact of complex SQL/OLAP compilation
(RANK() family) — the Fig. 5 rewriting procedure benefits that domain
too.

These tests feed the isolation engine algebra plans built *directly*
(no XQuery front-end involved), shaped like OLAP rank pipelines, and
check that the rank rules consolidate every ρ into a single tail
operator while preserving results.
"""

from repro.algebra import (
    Attach,
    Comparison,
    Distinct,
    Join,
    LitTable,
    Project,
    RowRank,
    Select,
    Serialize,
    col,
    count_ops,
    lit,
    run_plan,
)
from repro.rewrite import isolate


def sales_table():
    # region | amount
    rows = [
        ("east", 40),
        ("west", 10),
        ("east", 25),
        ("north", 70),
        ("west", 55),
        ("north", 5),
    ]
    return LitTable(("region", "amount"), rows)


def test_stacked_ranks_consolidate_to_single_tail_rank():
    """RANK over RANK over σ over RANK — the rule (10)–(13) pipeline
    splices them into one ordering."""
    base = sales_table()
    r1 = RowRank(base, "r1", ("amount",))
    filtered = Select(r1, Comparison(">", col("amount"), lit(8)))
    r2 = RowRank(filtered, "r2", ("r1",))
    r3 = RowRank(r2, "pos", ("r2",))
    plan = Serialize(Project(r3, [("item", "amount"), ("pos", "pos")]))

    reference = run_plan(plan)
    isolated, stats = isolate(
        Serialize(
            Project(
                RowRank(
                    RowRank(
                        Select(
                            RowRank(sales_table(), "r1", ("amount",)),
                            Comparison(">", col("amount"), lit(8)),
                        ),
                        "r2",
                        ("r1",),
                    ),
                    "pos",
                    ("r2",),
                ),
                [("item", "amount"), ("pos", "pos")],
            )
        )
    )
    assert run_plan(isolated) == reference
    assert count_ops(isolated).get("RowRank", 0) <= 1
    assert stats.total("13", "9", "5") >= 2  # splicing/simplification fired


def test_rank_pulled_above_join():
    """An OLAP-style rank below a join migrates to the tail
    (rule (12)), unblocking the join for the back-end planner."""
    left = RowRank(sales_table(), "pos", ("amount",))
    regions = LitTable(("name", "code"), [("east", 1), ("west", 2), ("north", 3)])
    joined = Join(left, regions, Comparison("=", col("region"), col("name")))
    plan = Serialize(Project(joined, [("item", "code"), ("pos", "pos")]))

    reference = run_plan(plan)
    isolated, _ = isolate(plan)
    assert run_plan(isolated) == reference
    # no rank below any join anymore
    from repro.algebra.dagutils import all_nodes
    from repro.algebra.ops import Join as JoinOp, RowRank as RankOp

    for node in all_nodes(isolated):
        if isinstance(node, JoinOp):
            below = all_nodes(node)
            assert not any(isinstance(n, RankOp) for n in below)


def test_const_rank_criteria_dropped():
    base = Attach(sales_table(), "grp", 1)
    ranked = RowRank(base, "pos", ("grp", "amount"))
    plan = Serialize(Project(ranked, [("item", "amount"), ("pos", "pos")]))
    reference = run_plan(plan)
    isolated, stats = isolate(plan)
    assert run_plan(isolated) == reference
    assert stats.applications["8"] >= 1  # constant column left the criteria


def test_duplicate_elimination_with_ranks():
    base = sales_table()
    deduped = Distinct(Project(base, [("region", "region")]))
    ranked = RowRank(deduped, "pos", ("region",))
    plan = Serialize(Project(ranked, [("item", "region"), ("pos", "pos")]))
    reference = run_plan(plan)
    isolated, _ = isolate(plan)
    assert run_plan(isolated) == reference
    assert count_ops(isolated)["Distinct"] <= 1
