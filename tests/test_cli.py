"""CLI tests (driving ``repro.cli.main`` in-process)."""

import pytest

from repro.cli import main

AUCTION = (
    '<open_auction id="1"><initial>15</initial>'
    "<bidder><time>18:43</time><increase>4.20</increase></bidder>"
    "</open_auction>"
)


@pytest.fixture()
def doc(tmp_path):
    path = tmp_path / "auction.xml"
    path.write_text(AUCTION)
    return str(path)


def run(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_query_serializes_result(doc, capsys):
    out = run(capsys, 'doc("auction.xml")//time', "--doc", doc)
    assert out.strip() == "<time>18:43</time>"


def test_items_flag(doc, capsys):
    out = run(capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--items")
    assert out.strip() == "5"


def test_sql_flag(doc, capsys):
    out = run(capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--sql")
    assert out.startswith("SELECT DISTINCT")
    assert "FROM doc AS d1" in out


def test_stacked_sql_flag(doc, capsys):
    out = run(capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--stacked-sql")
    assert out.startswith("WITH ")


def test_explain_flag(doc, capsys):
    out = run(capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--explain")
    assert "IXSCAN" in out and "continuations" in out


def test_plan_flag(doc, capsys):
    out = run(capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--plan")
    assert "SERIALIZE" in out and "DOC" in out


def test_engine_choices(doc, capsys):
    for engine in ("interpreter", "stacked-sql", "planner"):
        out = run(
            capsys,
            'doc("auction.xml")//bidder',
            "--doc",
            doc,
            "--items",
            "--engine",
            engine,
        )
        assert out.strip() == "5", engine


def test_custom_uri(doc, capsys):
    out = run(capsys, 'doc("a")//time', "--doc", f"{doc}=a", "--items")
    assert out.strip() == "6"


def test_generate_xmark(capsys):
    out = run(capsys, "--generate", "xmark", "--factor", "0.001")
    assert out.startswith("<site>")


def test_generate_dblp(capsys):
    out = run(capsys, "--generate", "dblp", "--factor", "0.0005")
    assert "<dblp>" in out


def test_error_exit_code(doc, capsys):
    assert main(["for $x in", "--doc", doc]) == 1
    assert "error:" in capsys.readouterr().err


def test_missing_doc_is_an_error(capsys):
    with pytest.raises(SystemExit):
        main(["//a"])
