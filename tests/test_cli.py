"""CLI tests (driving ``repro.cli.main`` in-process)."""

import json

import pytest

from repro.cli import main

AUCTION = (
    '<open_auction id="1"><initial>15</initial>'
    "<bidder><time>18:43</time><increase>4.20</increase></bidder>"
    "</open_auction>"
)


@pytest.fixture()
def doc(tmp_path):
    path = tmp_path / "auction.xml"
    path.write_text(AUCTION)
    return str(path)


def run(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_query_serializes_result(doc, capsys):
    out = run(capsys, 'doc("auction.xml")//time', "--doc", doc)
    assert out.strip() == "<time>18:43</time>"


def test_items_flag(doc, capsys):
    out = run(capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--items")
    assert out.strip() == "5"


def test_sql_flag(doc, capsys):
    out = run(capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--sql")
    assert out.startswith("SELECT DISTINCT")
    assert "FROM doc AS d1" in out


def test_stacked_sql_flag(doc, capsys):
    out = run(capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--stacked-sql")
    assert out.startswith("WITH ")


def test_explain_flag(doc, capsys):
    out = run(capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--explain")
    assert "IXSCAN" in out and "continuations" in out


def test_plan_flag(doc, capsys):
    out = run(capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--plan")
    assert "SERIALIZE" in out and "DOC" in out


def test_engine_choices(doc, capsys):
    for engine in ("interpreter", "stacked-sql", "planner"):
        out = run(
            capsys,
            'doc("auction.xml")//bidder',
            "--doc",
            doc,
            "--items",
            "--engine",
            engine,
        )
        assert out.strip() == "5", engine


def test_custom_uri(doc, capsys):
    out = run(capsys, 'doc("a")//time', "--doc", f"{doc}=a", "--items")
    assert out.strip() == "6"


def test_generate_xmark(capsys):
    out = run(capsys, "--generate", "xmark", "--factor", "0.001")
    assert out.startswith("<site>")


def test_generate_dblp(capsys):
    out = run(capsys, "--generate", "dblp", "--factor", "0.0005")
    assert "<dblp>" in out


def test_trace_flag_writes_valid_chrome_trace(doc, capsys, tmp_path):
    from repro.obs import validate_chrome_trace

    trace_path = tmp_path / "trace.json"
    out = run(
        capsys,
        'doc("auction.xml")//bidder',
        "--doc",
        doc,
        "--items",
        "--trace",
        str(trace_path),
    )
    assert out.strip() == "5"
    trace = json.loads(trace_path.read_text())
    assert validate_chrome_trace(trace) == []
    names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert {"compile", "parse", "normalize", "looplift", "isolate",
            "execute", "sql.run"} <= names
    assert any(n.startswith("isolate.phase:") for n in names)


def test_metrics_flag_dumps_to_stdout(doc, capsys):
    out = run(
        capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--items",
        "--metrics",
    )
    lines = out.strip().splitlines()
    assert lines[0] == "5"
    metrics = json.loads("\n".join(lines[1:]))
    assert metrics["counters"]["pipeline.compiles"] == 1
    assert any(
        k.startswith("rewrite.rule_fired.") for k in metrics["counters"]
    )
    assert any(k.startswith("planner.qerror.") for k in metrics["gauges"])


def test_metrics_flag_writes_file(doc, capsys, tmp_path):
    metrics_path = tmp_path / "metrics.json"
    run(
        capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--items",
        "--metrics", str(metrics_path),
    )
    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"]["sql.statements"] >= 1


def test_observation_does_not_leak_global_state(doc, capsys):
    from repro.obs import get_metrics, get_tracer

    before_tracer, before_metrics = get_tracer(), get_metrics()
    run(capsys, 'doc("auction.xml")//bidder', "--doc", doc, "--items",
        "--metrics")
    assert get_tracer() is before_tracer
    assert get_metrics() is before_metrics


def test_obs_subcommand_prints_summary(doc, capsys, tmp_path):
    from repro.obs import validate_chrome_trace

    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    out = run(
        capsys,
        "obs",
        'doc("auction.xml")//bidder',
        "--doc",
        doc,
        "--checked",
        "--trace",
        str(trace_path),
        "--metrics",
        str(metrics_path),
    )
    assert "-- 1 item(s) [joingraph-sql]" in out
    assert "== spans (where the time went) ==" in out
    assert "== rewrite rules (fires per rule) ==" in out
    assert "== sql back-end ==" in out
    assert "== planner estimate audit (q-error) ==" in out
    assert "== analysis health" in out
    assert validate_chrome_trace(json.loads(trace_path.read_text())) == []
    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"]["pipeline.compiles"] >= 1


def test_obs_subcommand_requires_doc(capsys):
    with pytest.raises(SystemExit):
        main(["obs", "//a"])


def test_error_exit_code(doc, capsys):
    assert main(["for $x in", "--doc", doc]) == 1
    assert "error:" in capsys.readouterr().err


def test_missing_doc_is_an_error(capsys):
    with pytest.raises(SystemExit):
        main(["//a"])


def test_obs_subcommand_shows_service_section(doc, capsys):
    out = run(capsys, "obs", 'doc("auction.xml")//bidder', "--doc", doc)
    assert "== service layer (compiled-plan cache + pool) ==" in out
    assert "service.cache.hits" in out
    assert "service.cache.misses" in out
    assert "query latency" in out


def test_serve_bench_subcommand(capsys, tmp_path):
    out_path = tmp_path / "BENCH_service.json"
    out = run(
        capsys,
        "serve-bench",
        "--quick",
        "--factor", "0.001",
        "--repeat", "2",
        "--workers", "1,2",
        "--out", str(out_path),
    )
    assert "uncached baseline" in out
    assert "speedup" in out
    report = json.loads(out_path.read_text())
    assert report["schema"] == "repro.service.bench/v4"
    assert report["uncached_baseline"]["queries_per_second"] > 0
    assert report["cached"]["cache"]["hits"] > 0
    assert [p["workers"] for p in report["scaling"]] == [1, 2]


def test_serve_bench_faults_subcommand(capsys, tmp_path):
    out_path = tmp_path / "chaos.json"
    out = run(
        capsys,
        "serve-bench",
        "--faults",
        "--fault-rate", "0.15",
        "--fault-seed", "7",
        "--factor", "0.002",
        "--threads", "4",
        "--queries-per-thread", "5",
        "--deadline", "1.0",
        "--out", str(out_path),
    )
    assert "chaos campaign" in out
    assert "contract" in out and "HOLDS" in out
    report = json.loads(out_path.read_text())
    assert report["schema"] == "repro.faults.campaign/v3"
    assert report["mode"] == "single"
    assert report["config"]["seed"] == 7
    assert report["contract"]["holds"] is True
    assert report["faults"]["injected_total"] == report["faults"]["handled_total"]


def test_serve_bench_soak_subcommand(capsys, tmp_path):
    out_path = tmp_path / "soak.json"
    out = run(
        capsys,
        "serve-bench",
        "--soak",
        "--quick",
        "--duration", "1.0",
        "--load-points", "1.0",
        "--documents", "2",
        "--factor", "0.002",
        "--faults",
        "--fault-rate", "0.1",
        "--out", str(out_path),
    )
    assert "soak [repro.bench.soak/v1]" in out
    assert "fairness" in out and "knee" in out
    report = json.loads(out_path.read_text())
    assert report["schema"] == "repro.bench.soak/v1"
    assert len(report["tenants"]) == 3
    assert report["faults"]["enabled"] is True
    assert report["gates"]["passed"] is True


def test_serve_bench_soak_excludes_collection():
    with pytest.raises(SystemExit):
        main(["serve-bench", "--soak", "--collection"])


def test_executor_report_tolerates_worker_mid_restart():
    """Regression: a worker restarting while `repro obs` cut its
    snapshot produced a row with pid None / missing counters, and the
    report crashed on direct key access."""
    from repro.cli import _executor_report

    stats = {
        "executor": "process",
        "procpool": {
            "workers_per_shard": 1,
            "workers": [
                # mid-restart: no pid, counter keys absent entirely
                {"worker": "s0w0", "pid": None, "alive": False},
                {
                    "worker": "s1w0", "pid": 7, "alive": True,
                    "requests": 2, "merges": 1, "plans_shipped": 3,
                    "restarts": 0,
                },
            ],
        },
    }
    report = _executor_report(stats)
    assert "s0w0: pid - alive=False" in report
    assert "s1w0: pid 7 alive=True" in report
    assert "requests 0" in report  # absent counters render as zeros
