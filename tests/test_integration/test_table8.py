"""Paper Table 8 / Section 4 queries end-to-end on the XMark and DBLP
workloads: all engines must agree on every query."""

from collections import Counter

import pytest

from repro.infoset.encoding import node_pre_map
from repro.pipeline import XQueryProcessor
from repro.purexml import PureXMLEngine
from repro.workloads import (
    DBLPConfig,
    PAPER_QUERIES,
    XMarkConfig,
    generate_dblp,
    generate_xmark,
)
from repro.infoset import DocumentStore


@pytest.fixture(scope="module")
def setup():
    xmark_doc = generate_xmark(XMarkConfig(factor=0.003))
    dblp_doc = generate_dblp(DBLPConfig(factor=0.0008))
    stores = {"xmark": DocumentStore(), "dblp": DocumentStore()}
    stores["xmark"].load_tree(xmark_doc)
    stores["dblp"].load_tree(dblp_doc)
    return {
        "stores": stores,
        "processors": {
            "xmark": XQueryProcessor(stores["xmark"], default_doc="auction.xml"),
            "dblp": XQueryProcessor(stores["dblp"], default_doc="dblp.xml"),
        },
        "natives": {
            "xmark": PureXMLEngine({"auction.xml": xmark_doc}),
            "dblp": PureXMLEngine({"dblp.xml": dblp_doc}),
        },
        "pre_maps": {
            "xmark": node_pre_map(xmark_doc),
            "dblp": node_pre_map(dblp_doc),
        },
    }


@pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4", "Q5"])
def test_relational_engines_agree(setup, name):
    query = PAPER_QUERIES[name]
    processor = setup["processors"][query.document]
    compiled = processor.compile(query.text)
    reference = processor.execute(compiled, engine="interpreter")
    for engine in ("isolated-interpreter", "stacked-sql", "joingraph-sql"):
        assert processor.execute(compiled, engine=engine) == reference, engine


@pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4", "Q5"])
def test_native_engine_agrees(setup, name):
    query = PAPER_QUERIES[name]
    processor = setup["processors"][query.document]
    native = setup["natives"][query.document]
    pre_map = setup["pre_maps"][query.document]
    reference = Counter(
        processor.execute(processor.compile(query.text), engine="joingraph-sql")
    )
    result = Counter(pre_map[id(n)] for n in native.run(query.text))
    assert result == reference


def test_q6_tuple_query(setup):
    query = PAPER_QUERIES["Q6"]
    processor = setup["processors"]["dblp"]
    components = processor.compile_tuple(query.text)
    assert len(components) == 3  # title, author, year
    sizes = set()
    for component in components:
        reference = processor.execute(component, engine="interpreter")
        assert processor.execute(component, engine="joingraph-sql") == reference
        sizes.add(len(reference))
    # every pre-1994 thesis contributes one title/author/year each
    assert len(sizes) == 1 and sizes.pop() > 0


def test_q3_point_lookup_result(setup):
    processor = setup["processors"]["xmark"]
    result = processor.execute(processor.compile(PAPER_QUERIES["Q3"].text))
    assert len(result) == 1  # person0's single name text node


def test_q5_vldb_lookup_result(setup):
    processor = setup["processors"]["dblp"]
    result = processor.execute(processor.compile(PAPER_QUERIES["Q5"].text))
    assert len(result) == 1
    serialized = processor.serialize(result)
    assert "VLDB 2001" in serialized


def test_serialize_step_wrapper(setup):
    """The explicit serialization point (Section 4): appending
    descendant-or-self::node() yields every node of each result
    subtree."""
    store = setup["stores"]["xmark"]
    plain = XQueryProcessor(store, default_doc="auction.xml")
    wrapped = XQueryProcessor(
        store, default_doc="auction.xml", serialize_step=True
    )
    roots = plain.execute(plain.compile(PAPER_QUERIES["Q1"].text))
    expanded = wrapped.execute(wrapped.compile(PAPER_QUERIES["Q1"].text))
    table = store.table
    expected = sum(1 + _non_attr_subtree(table, r) for r in roots)
    assert len(expanded) == expected


def _non_attr_subtree(table, pre: int) -> int:
    end = pre + table.size[pre]
    return sum(1 for p in range(pre + 1, end + 1) if table.kind[p] != 2)
