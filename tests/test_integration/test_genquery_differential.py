"""Differential property test over the grammar-based generator: the
reference interpreter, the isolated-plan interpreter, both SQL shapes,
and the physical planner must agree on every generated query.

The sample size is environment-tunable: local runs default to a quick
sweep, CI's chaos-differential job sets ``REPRO_GENQUERY_COUNT=200``.
Every failing example reproduces from the single generator seed that
hypothesis reports (``python tests/genquery.py <seed>`` prints the
document and queries for a seed).
"""

from __future__ import annotations

import os
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.genquery import DEFAULT_URI, random_document, random_query
from repro.infoset import DocumentStore
from repro.pipeline import XQueryProcessor
from repro.planner import JoinGraphPlanner
from repro.sql import flatten_query

#: CI sets 200; the local default keeps the sweep in tens of seconds
EXAMPLES = int(os.environ.get("REPRO_GENQUERY_COUNT", "60"))

ENGINES = ("isolated-interpreter", "stacked-sql", "joingraph-sql")


def run_differential(seed: int) -> None:
    rng = random.Random(seed)
    xml = random_document(rng)
    query = random_query(rng)

    store = DocumentStore()
    store.load(xml, DEFAULT_URI)
    processor = XQueryProcessor(store, default_doc=DEFAULT_URI)

    compiled = processor.compile(query)
    reference = processor.execute(compiled, engine="interpreter")

    for engine in ENGINES:
        assert processor.execute(compiled, engine=engine) == reference, (
            f"{engine} disagrees on seed {seed}: {query}"
        )

    planned = JoinGraphPlanner(store.table).plan(
        flatten_query(compiled.isolated_plan)
    )
    assert planned.execute() == reference, (
        f"planner disagrees on seed {seed}: {query}"
    )


@settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 1_000_000))
def test_generated_queries_agree_across_engines(seed: int):
    run_differential(seed)


def test_known_seeds_smoke():
    """A pinned handful of seeds so the sweep never silently shrinks
    to trivial examples (hypothesis may cluster near small ints)."""
    for seed in (0, 1, 5, 17, 100, 2024):
        run_differential(seed)
