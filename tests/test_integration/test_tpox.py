"""TPoX workload integration: all engines agree on the query-section
workloads expressible in the fragment (paper [17])."""

import pytest

from repro.infoset import DocumentStore
from repro.pipeline import XQueryProcessor
from repro.workloads.tpox import TPOX_QUERIES, TPoXConfig, generate_tpox


@pytest.fixture(scope="module")
def processor():
    store = DocumentStore()
    for uri, document in generate_tpox(TPoXConfig(factor=0.0006)).items():
        store.load_tree(document)
    return XQueryProcessor(store, default_doc="custacc.xml")


@pytest.mark.parametrize("name", sorted(TPOX_QUERIES))
def test_engines_agree(processor, name):
    query = TPOX_QUERIES[name]
    compiled = processor.compile(query.text)
    reference = processor.execute(compiled, engine="interpreter")
    assert processor.execute(compiled, engine="joingraph-sql") == reference
    assert processor.execute(compiled, engine="stacked-sql") == reference


@pytest.mark.parametrize("name", sorted(TPOX_QUERIES))
def test_planner_agrees(processor, name):
    from repro.planner import JoinGraphPlanner
    from repro.sql import flatten_query

    query = TPOX_QUERIES[name]
    compiled = processor.compile(query.text)
    reference = processor.execute(compiled, engine="interpreter")
    planner = JoinGraphPlanner(processor.store.table)
    assert planner.plan(flatten_query(compiled.isolated_plan)).execute() == reference


def test_point_lookups_hit(processor):
    assert len(processor.execute(TPOX_QUERIES["T1"].text)) == 1
    assert len(processor.execute(TPOX_QUERIES["T2"].text)) == 1


def test_range_scan_nonempty(processor):
    assert processor.execute(TPOX_QUERIES["T3"].text)


def test_cross_document_joins_nonempty(processor):
    assert processor.execute(TPOX_QUERIES["T4"].text)
    assert processor.execute(TPOX_QUERIES["T5"].text)


def test_three_collections_hosted_together(processor):
    table = processor.store.table
    uris = set(table.doc_uris)
    assert uris == {"custacc.xml", "order.xml", "security.xml"}
