"""Differential property test for the view tier: every view-tier
answer must be **byte-identical** — same item ranks, same serialized
XML — to the full compile + execution it replaced.

Each example seeds a random document and a ``(broad, narrow)``
containment pair from the generator (narrow = broad plus one extra
conjunctive predicate, so ``narrow ⊆ broad`` by construction).  The
broad query is executed past the admission threshold so its result
materializes as a view; if the narrow query is then served from the
view tier (the containment analyzer must still *prove* the
containment — NOT_SHOWN pairs simply fall back to a cold compile,
which is also checked), the answer is compared against a bare
:class:`XQueryProcessor` that recompiles from scratch.

Sample size is environment-tunable: CI's bench-smoke job sets
``REPRO_VIEW_COUNT``; the local default keeps the sweep quick.
"""

from __future__ import annotations

import os
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.infoset import DocumentStore
from repro.pipeline import XQueryProcessor
from repro.service import QueryService
from tests.genquery import DEFAULT_URI, QueryGenerator, random_document

#: CI sets this higher; the local default keeps the sweep in seconds
EXAMPLES = int(os.environ.get("REPRO_VIEW_COUNT", "40"))


def run_view_differential(seed: int) -> None:
    rng = random.Random(seed)
    xml = random_document(rng)
    broad, narrow = QueryGenerator(rng).contained_pair()

    store = DocumentStore()
    store.load(xml, DEFAULT_URI)
    bare = XQueryProcessor(store=store, default_doc=DEFAULT_URI)
    with QueryService(
        store=store,
        default_doc=DEFAULT_URI,
        workers=1,
        view_admit_after=1,
    ) as service:
        service.execute(broad)  # admits the view on the first execution
        served = service.execute(narrow)
        outcome = service.flight.records()[-1].cache

    expected = bare.execute(narrow, engine="joingraph-sql")
    assert list(served) == list(expected), (
        f"view tier diverges on seed {seed}: {narrow!r} "
        f"(cache outcome {outcome!r})"
    )
    assert bare.serialize(served) == bare.serialize(expected), (
        f"view-tier serialization diverges on seed {seed}: {narrow!r}"
    )


@settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 1_000_000))
def test_view_answers_are_byte_identical(seed: int):
    run_view_differential(seed)


def test_known_seeds_exercise_the_view_tier():
    """Pinned seeds where the pair provably lands in the fragment and
    the narrow query is actually served from the view tier — so the
    sweep never silently degrades to cold compiles everywhere."""
    view_served = 0
    for seed in range(30):
        rng = random.Random(seed)
        xml = random_document(rng)
        broad, narrow = QueryGenerator(rng).contained_pair()
        store = DocumentStore()
        store.load(xml, DEFAULT_URI)
        with QueryService(
            store=store,
            default_doc=DEFAULT_URI,
            workers=1,
            view_admit_after=1,
        ) as service:
            service.execute(broad)
            service.execute(narrow)
            if service.flight.records()[-1].cache == "view":
                view_served += 1
    assert view_served >= 10, (
        f"only {view_served}/30 pinned pairs were view-served — the "
        "generator or the admission path regressed"
    )
