"""Soundness gate for the containment analyzer: every *claim* the
analyzer makes about generated query pairs must be confirmed by the
engines, byte for byte.

Two claim shapes are checked over seeded generator pairs:

* ``equivalent(p, q).holds`` — the engine results for ``p`` and ``q``
  must be identical sequences (all engines, not just the reference).
* ``contains(p, q)`` verdict ``contains`` — ``q``'s result items must
  be a subset of ``p``'s on every generated document.

The analyzer is allowed to say ``not-shown`` or ``outside-fragment``
as often as it likes (incompleteness is fine); a single false positive
fails the gate.  The sample size is environment-tunable like the
genquery differential: CI's containment-soundness job sets
``REPRO_CONTAINMENT_COUNT``, local runs default to a quick sweep.
"""

from __future__ import annotations

import os
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.genquery import DEFAULT_URI, QueryGenerator, random_document
from repro.analysis.containment import contains, equivalent
from repro.infoset import DocumentStore
from repro.pipeline import XQueryProcessor
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_xquery

#: CI sets a few hundred; the local default keeps the sweep quick.
#: Each seed checks two pairs (pattern-fragment and general grammar),
#: so 150 seeds = 300 pairs.
EXAMPLES = int(os.environ.get("REPRO_CONTAINMENT_COUNT", "40"))

ENGINES = ("interpreter", "isolated-interpreter", "stacked-sql", "joingraph-sql")


def _core(query: str):
    return normalize(parse_xquery(query), default_doc=DEFAULT_URI)


def run_pair_soundness(seed: int) -> None:
    rng = random.Random(seed)
    xml = random_document(rng)
    store = DocumentStore()
    store.load(xml, DEFAULT_URI)
    processor = XQueryProcessor(store, default_doc=DEFAULT_URI)

    gen = QueryGenerator(rng)
    for pattern_mode in (True, False):
        query, variant = gen.equivalent_pair(pattern=pattern_mode)
        res = equivalent(_core(query), _core(variant))
        if not res.holds:
            continue  # incompleteness is allowed; false claims are not
        for engine in ENGINES:
            left = processor.execute(processor.compile(query), engine=engine)
            right = processor.execute(processor.compile(variant), engine=engine)
            assert left == right, (
                f"false equivalence claim on seed {seed} ({engine}):"
                f"\n  {query}\n  {variant}"
            )


def run_containment_soundness(seed: int) -> None:
    rng = random.Random(seed)
    xml = random_document(rng)
    store = DocumentStore()
    store.load(xml, DEFAULT_URI)
    processor = XQueryProcessor(store, default_doc=DEFAULT_URI)

    gen = QueryGenerator(rng)
    p_query = gen.pattern_query()
    q_query = gen.pattern_query()
    res = contains(_core(p_query), _core(q_query))
    if res.verdict != "contains":
        return
    p_items = processor.execute(processor.compile(p_query)).items
    q_items = processor.execute(processor.compile(q_query)).items
    assert set(q_items) <= set(p_items), (
        f"false containment claim on seed {seed}:"
        f"\n  p: {p_query}\n  q: {q_query}"
    )


@settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 1_000_000))
def test_equivalence_claims_hold_on_engines(seed: int):
    run_pair_soundness(seed)


@settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 1_000_000))
def test_containment_claims_hold_on_engines(seed: int):
    run_containment_soundness(seed)


def test_known_seeds_smoke():
    """Pinned seeds so the sweep never silently shrinks to trivia."""
    for seed in (0, 1, 5, 17, 100, 2024):
        run_pair_soundness(seed)
        run_containment_soundness(seed)


def test_pattern_pairs_are_frequently_proven():
    """The analyzer must actually *prove* a healthy share of the
    pattern-fragment variants — otherwise the soundness sweep above
    vacuously passes by never making a claim."""
    proven = total = 0
    for seed in range(120):
        gen = QueryGenerator(random.Random(seed))
        query, variant = gen.equivalent_pair(pattern=True)
        total += 1
        if equivalent(_core(query), _core(variant)).holds:
            proven += 1
    assert proven >= total // 2, f"only {proven}/{total} pairs proven"
