"""Five-way engine fuzzer: interpreter (ground truth), isolated
interpreter, both SQL shapes, the physical planner AND the native
XSCAN engine must agree on random queries over random documents.

Queries are drawn from the shape family every engine supports (the
native engine covers the abbreviated-syntax fragment)."""

from __future__ import annotations

import random
from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.infoset import DocumentStore
from repro.infoset.encoding import node_pre_map
from repro.pipeline import XQueryProcessor
from repro.planner import JoinGraphPlanner
from repro.purexml import PureXMLEngine
from repro.sql import flatten_query
from repro.xmltree.parser import parse_document

TAGS = ("a", "b", "c")


def random_xml(rng: random.Random, max_nodes: int = 36) -> str:
    budget = [rng.randint(6, max_nodes)]

    def element(depth: int) -> str:
        budget[0] -= 1
        tag = rng.choice(TAGS)
        attrs = f' id="{rng.randint(0, 4)}"' if rng.random() < 0.35 else ""
        children: list[str] = []
        while budget[0] > 0 and rng.random() < (0.7 if depth < 4 else 0.2):
            if rng.random() < 0.3:
                budget[0] -= 1
                children.append(str(rng.randint(0, 9)))
            else:
                children.append(element(depth + 1))
        return f"<{tag}{attrs}>{''.join(children)}</{tag}>"

    return element(0)


def random_query(rng: random.Random) -> str:
    """Queries inside the intersection of all engines' dialects:
    child/descendant/attribute steps, value predicates, nested fors."""

    def steps(base: str, count: int) -> str:
        out = base
        for _ in range(count):
            kind = rng.random()
            if kind < 0.5:
                out += f"/{rng.choice(TAGS + ('*',))}"
            elif kind < 0.8:
                out += f"//{rng.choice(TAGS)}"
            else:
                out += f"/{rng.choice(TAGS)}[{predicate()}]"
        return out

    def predicate() -> str:
        kind = rng.random()
        if kind < 0.4:
            return rng.choice(TAGS)
        if kind < 0.7:
            op = rng.choice(("=", "<", ">"))
            return f"{rng.choice(TAGS)} {op} {rng.randint(0, 9)}"
        return f'@id = "{rng.randint(0, 4)}"'

    doc_call = 'doc("f.xml")'
    shape = rng.random()
    if shape < 0.55:
        return steps(doc_call, rng.randint(1, 3))
    if shape < 0.85:
        inner = steps(doc_call, rng.randint(1, 2))
        body = steps("$x", rng.randint(1, 2))
        return f"for $x in {inner} return {body}"
    inner = steps(doc_call, 1)
    condition = f"$x/{predicate()}" if rng.random() < 0.5 else (
        f"$x/{rng.choice(TAGS)} = {rng.randint(0, 9)}"
    )
    return f"for $x in {inner} where {condition} return $x"


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_all_engines_agree(seed: int):
    rng = random.Random(seed)
    xml = random_xml(rng)
    query = random_query(rng)

    document = parse_document(xml, uri="f.xml")
    store = DocumentStore()
    store.load_tree(document)
    processor = XQueryProcessor(store, default_doc="f.xml")
    pre_map = node_pre_map(document)

    compiled = processor.compile(query)
    reference = processor.execute(compiled, engine="interpreter")
    multiset = Counter(reference)

    assert processor.execute(compiled, engine="isolated-interpreter") == reference, query
    assert processor.execute(compiled, engine="stacked-sql") == reference, query
    assert processor.execute(compiled, engine="joingraph-sql") == reference, query

    plan = JoinGraphPlanner(store.table).plan(
        flatten_query(compiled.isolated_plan)
    )
    assert plan.execute() == reference, query

    native = PureXMLEngine({"f.xml": document})
    native_result = Counter(pre_map[id(n)] for n in native.run(query))
    assert native_result == multiset, query
