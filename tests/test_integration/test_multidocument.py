"""Multiple documents in one store: one shared ``doc`` table hosting
several trees (paper Section 2.1 — DOC rows distinguished by URI),
including cross-document value joins."""

import pytest

from repro.infoset import DocumentStore
from repro.pipeline import XQueryProcessor

ORDERS = """\
<orders>
  <order item="i1" qty="2"/>
  <order item="i3" qty="1"/>
  <order item="i1" qty="5"/>
</orders>
"""

CATALOG = """\
<catalog>
  <product id="i1"><label>Widget</label></product>
  <product id="i2"><label>Gadget</label></product>
  <product id="i3"><label>Sprocket</label></product>
</catalog>
"""


@pytest.fixture()
def processor():
    store = DocumentStore()
    store.load(ORDERS, "orders.xml")
    store.load(CATALOG, "catalog.xml")
    return XQueryProcessor(store=store)


def test_doc_rows_distinguished_by_uri(processor):
    table = processor.store.table
    doc_rows = [p for p in range(len(table)) if table.kind[p] == 0]
    assert len(doc_rows) == 2
    assert {table.name[p] for p in doc_rows} == {"orders.xml", "catalog.xml"}


def test_each_document_queryable(processor):
    assert len(processor.execute('doc("orders.xml")//order')) == 3
    assert len(processor.execute('doc("catalog.xml")//product')) == 3


def test_steps_stay_within_their_document(processor):
    """A descendant step from one document's root never leaks into the
    other tree (disjoint pre ranges)."""
    orders = processor.execute('doc("orders.xml")/descendant::*')
    products = processor.execute('doc("catalog.xml")/descendant::*')
    assert not set(orders) & set(products)


def test_cross_document_value_join(processor):
    query = """
        for $o in doc("orders.xml")//order,
            $p in doc("catalog.xml")//product
        where $o/@item = $p/@id
        return $p/label
    """
    compiled = processor.compile(query)
    reference = processor.execute(compiled, engine="interpreter")
    assert processor.execute(compiled, engine="joingraph-sql") == reference
    labels = processor.serialize(reference)
    # two orders for i1 (duplicates retained), one for i3
    assert labels.count("Widget") == 2
    assert labels.count("Sprocket") == 1
    assert "Gadget" not in labels


def test_cross_document_join_is_single_block(processor):
    query = (
        'for $o in doc("orders.xml")//order, '
        '$p in doc("catalog.xml")//product '
        "where $o/@item = $p/@id return $p"
    )
    sql = processor.compile(query).joingraph_sql
    assert sql.text.count("SELECT") == 1
    assert "'orders.xml'" in sql.text and "'catalog.xml'" in sql.text


def test_duplicate_uri_rejected(processor):
    from repro.errors import DocumentError

    with pytest.raises(DocumentError):
        processor.load("<x/>", "orders.xml")
