"""Extended XMark query catalog: every query runs on every engine and
all engines agree (the paper's 'subsumes the XMark benchmark' claim
for the in-fragment queries)."""

from collections import Counter

import pytest

from repro.infoset import DocumentStore
from repro.infoset.encoding import node_pre_map
from repro.pipeline import XQueryProcessor
from repro.planner import JoinGraphPlanner
from repro.purexml import PureXMLEngine
from repro.sql import flatten_query
from repro.workloads import XMarkConfig, generate_xmark
from repro.workloads.xmark_queries import XMARK_QUERIES


@pytest.fixture(scope="module")
def env():
    document = generate_xmark(XMarkConfig(factor=0.004))
    store = DocumentStore()
    store.load_tree(document)
    return {
        "document": document,
        "store": store,
        "processor": XQueryProcessor(store, default_doc="auction.xml"),
        "planner": JoinGraphPlanner(store.table),
        "native": PureXMLEngine({"auction.xml": document}),
        "pre_map": node_pre_map(document),
    }


@pytest.mark.parametrize("name", sorted(XMARK_QUERIES))
def test_all_relational_engines_agree(env, name):
    query = XMARK_QUERIES[name]
    processor = env["processor"]
    compiled = processor.compile(query.text)
    reference = processor.execute(compiled, engine="interpreter")
    assert processor.execute(compiled, engine="joingraph-sql") == reference
    assert processor.execute(compiled, engine="stacked-sql") == reference
    plan = env["planner"].plan(flatten_query(compiled.isolated_plan))
    assert plan.execute() == reference


@pytest.mark.parametrize("name", sorted(XMARK_QUERIES))
def test_native_engine_agrees(env, name):
    query = XMARK_QUERIES[name]
    processor = env["processor"]
    reference = Counter(
        processor.execute(processor.compile(query.text), engine="interpreter")
    )
    result = Counter(
        env["pre_map"][id(n)] for n in env["native"].run(query.text)
    )
    assert result == reference


@pytest.mark.parametrize("name", sorted(XMARK_QUERIES))
def test_queries_return_nonempty_witnesses(env, name):
    """The generators must actually exercise each query's path."""
    query = XMARK_QUERIES[name]
    processor = env["processor"]
    result = processor.execute(processor.compile(query.text))
    assert result, f"{name} found no witnesses — generator gap?"
