"""Grammar-based random query generation for the workhorse fragment.

``tests/genquery.py`` is the shared query/document generator behind
the differential property tests (``test_genquery_differential.py``).
It walks the surface grammar of ``docs/fragment.md`` — FLWOR with
multiple ``for`` clauses and ``where``, conditionals, reverse and
sibling axes, kind tests, conjunctive predicates, general and value
comparisons — and emits query strings guaranteed to *parse*; whether
every engine agrees on them is exactly what the differential test
checks.

Everything is driven by an explicit ``random.Random``: the same seed
yields the same document and query text, so any failing example is
reproducible from the one integer that hypothesis (or a CI log)
prints.  A per-query *size budget* bounds the number of steps and
comparisons: every ``doc()``-rooted comparand joins against the whole
document, and unbounded nesting generates queries whose SQL join
graphs take minutes on pathological seeds.

*Equivalent-pair mode* (PR 6) feeds the containment-analyzer soundness
gate: :func:`variant_of` respells a query into a semantically
equivalent variant — predicates reordered and duplicated, abbreviations
expanded to explicit ``child::``/``attribute::`` axes, redundant
``self::node()`` steps inserted, comments injected — and
:meth:`QueryGenerator.equivalent_pair` pairs a random query with such a
variant.  :meth:`QueryGenerator.pattern_query` draws from the
downward-only tree-pattern sub-grammar, so most generated pairs fall
*inside* the analyzer's fragment and actually exercise its EQUIVALENT
verdict (general queries mostly land on OUTSIDE_FRAGMENT, which claims
nothing and therefore tests nothing).

``let`` clauses are generated only with ``allow_let=True``: certain
let-shapes currently die in join-graph codegen ("operator DISTINCT is
not join-graph material") — a pre-existing isolation limitation, so
the differential sweep excludes the construct rather than report it
over and over.

Grammar v3 adds *collection-source mode*: pass ``collection=(uri, …)``
(the member URIs of a multi-document corpus) and generated queries may
root at ``collection()``, a ``collection("glob")`` subset, or a
``doc()`` reference to any member.  The mode is strictly additive —
with ``collection=None`` (the default) the generator draws the exact
same random sequence as grammar v2, so existing seed-cited repros stay
reproducible.

Deliberately outside the generator (rejected by the front end, see
``docs/fragment.md``): positional predicates, arithmetic, ``or`` /
``not``, aggregation, element construction, ``order by``.
"""

from __future__ import annotations

import random

__all__ = [
    "DEFAULT_URI",
    "GRAMMAR_VERSION",
    "QueryGenerator",
    "random_document",
    "random_query",
    "variant_of",
]

#: bump when the grammar changes shape — reports citing a seed are only
#: reproducible against the same grammar version
GRAMMAR_VERSION = 3

DEFAULT_URI = "g.xml"

TAGS = ("a", "b", "c", "d")

#: forward/reverse/sibling axes the fragment supports, weighted toward
#: the shapes real workloads use (child/descendant dominate)
_AXES = (
    ("child", 8),
    ("descendant", 4),
    ("self", 1),
    ("parent", 2),
    ("ancestor", 1),
    ("ancestor-or-self", 1),
    ("descendant-or-self", 1),
    ("following-sibling", 2),
    ("preceding-sibling", 2),
)

_COMPARATORS = ("=", "!=", "<", "<=", ">", ">=")


def random_document(rng: random.Random, max_nodes: int = 40) -> str:
    """A random element tree over ``TAGS`` with id attributes and
    short numeric text — small enough to interpret quickly, varied
    enough that axes/predicates discriminate."""
    budget = [rng.randint(8, max_nodes)]

    def element(depth: int) -> str:
        budget[0] -= 1
        tag = rng.choice(TAGS)
        attrs = ""
        if rng.random() < 0.4:
            attrs += f' id="{rng.randint(0, 4)}"'
        if rng.random() < 0.15:
            attrs += f' key="k{rng.randint(0, 2)}"'
        children: list[str] = []
        while budget[0] > 0 and rng.random() < (0.75 if depth < 4 else 0.25):
            if rng.random() < 0.35:
                budget[0] -= 1
                children.append(str(rng.randint(0, 9)))
            else:
                children.append(element(depth + 1))
        return f"<{tag}{attrs}>{''.join(children)}</{tag}>"

    return element(0)


class QueryGenerator:
    """One random query per :meth:`query` call, drawn from the
    fragment grammar.  ``size_budget`` bounds steps + comparisons per
    query (compile time and SQL join width are both roughly linear in
    it).  Construction is cheap; generators are not thread-safe (hand
    each thread its own)."""

    def __init__(
        self,
        rng: random.Random,
        uri: str = DEFAULT_URI,
        size_budget: int = 12,
        allow_let: bool = False,
        collection: tuple[str, ...] | None = None,
    ):
        self.rng = rng
        self.uri = uri
        self.size_budget = size_budget
        self.allow_let = allow_let
        #: member URIs of the corpus; enables collection-source mode
        self.collection = tuple(collection) if collection is not None else None
        self._fresh = 0
        self._budget = 0

    # -- budget ---------------------------------------------------------

    def _spend(self, cost: int = 1) -> bool:
        """Charge ``cost`` against the query budget; False once spent
        (callers degrade to their cheapest production)."""
        if self._budget < cost:
            return False
        self._budget -= cost
        return True

    # -- terminals ------------------------------------------------------

    def _tag(self) -> str:
        return self.rng.choice(TAGS)

    def _node_test(self) -> str:
        roll = self.rng.random()
        if roll < 0.70:
            return self._tag()
        if roll < 0.85:
            return "*"
        if roll < 0.95:
            return "text()"
        return "node()"

    def _axis(self) -> str:
        total = sum(weight for _, weight in _AXES)
        roll = self.rng.uniform(0, total)
        for axis, weight in _AXES:
            roll -= weight
            if roll <= 0:
                return axis
        return "child"

    def _var(self, bound: list[str]) -> str:
        return self.rng.choice(bound)

    def _fresh_var(self) -> str:
        self._fresh += 1
        return f"$v{self._fresh}"

    # -- steps and paths ------------------------------------------------

    def _step(self, depth: int) -> str:
        if not self._spend():
            return f"/{self._tag()}"
        axis = self._axis()
        if axis == "child":
            text = f"/{self._node_test()}"
        elif axis == "descendant":
            text = f"//{self._tag()}"
        else:
            test = self._tag() if axis != "self" else self._node_test()
            text = f"/{axis}::{test}"
        if depth > 0 and self.rng.random() < 0.25:
            text += f"[{self._predicate(depth - 1)}]"
        return text

    def _initial_step(self) -> str:
        """The first step off the document node: reverse/sibling axes
        are always empty there, so start with a step that actually
        lands in the tree — the rest of the path can then explore any
        axis from real context nodes."""
        self._spend()
        roll = self.rng.random()
        if roll < 0.6:
            return f"//{self._tag()}"
        if roll < 0.8:
            return "/*"
        return f"//{self.rng.choice(('*', 'node()'))}"

    def path(self, base: str, length: int, depth: int = 2) -> str:
        steps: list[str] = []
        if base.startswith(("doc(", "collection(")) and length > 0:
            steps.append(self._initial_step())
            length -= 1
        steps.extend(self._step(depth) for _ in range(length))
        return base + "".join(steps)

    def _source(self, bound: list[str]) -> str:
        # prefer bound variables: every doc()-rooted subexpression is
        # another full-document join in the generated SQL
        if bound and self.rng.random() < 0.75:
            return self._var(bound)
        if self.collection is None:
            return f'doc("{self.uri}")'
        roll = self.rng.random()
        if roll < 0.35:
            return "collection()"
        if roll < 0.6:
            return f'collection("{self._collection_glob()}")'
        return f'doc("{self.rng.choice(self.collection)}")'

    def _collection_glob(self) -> str:
        """A glob matching all, one, or a prefix-subset of the corpus."""
        assert self.collection is not None
        roll = self.rng.random()
        if roll < 0.3:
            return "*"
        member = self.rng.choice(self.collection)
        if roll < 0.6:
            return member
        return member[: self.rng.randint(1, len(member))] + "*"

    # -- predicates and conditions --------------------------------------

    def _comparand(self) -> str:
        if self.rng.random() < 0.6:
            return str(self.rng.randint(0, 9))
        return f'"{self.rng.randint(0, 9)}"'

    def _comparison(self, depth: int, bound: list[str]) -> str:
        # single-step comparands, charged double: comparisons dominate
        # both compile time and join-graph width
        self._spend(2)
        left = self.path(self._source(bound), 1, depth)
        op = self.rng.choice(_COMPARATORS)
        if self.rng.random() < 0.8 or not self._spend(2):
            return f"{left} {op} {self._comparand()}"
        right = self.path(self._source(bound), 1, depth)
        return f"{left} {op} {right}"

    def _predicate(self, depth: int) -> str:
        roll = self.rng.random()
        if roll < 0.35:
            relative = self.path("", self.rng.randint(1, 2), depth).lstrip("/")
            return relative or self._tag()
        if roll < 0.55:
            return f'@id = "{self.rng.randint(0, 4)}"'
        if roll < 0.9 or depth <= 0 or not self._spend(2):
            return self._comparison(depth, [])
        return (
            f"{self._predicate(depth - 1)} and {self._predicate(depth - 1)}"
        )

    def _condition(self, depth: int, bound: list[str]) -> str:
        condition = self._comparison(depth, bound)
        if self.rng.random() < 0.25 and self._spend(2):
            condition += f" and {self._comparison(depth - 1, bound)}"
        return condition

    # -- expressions ----------------------------------------------------

    def _flwor(self, depth: int, bound: list[str]) -> str:
        bound = list(bound)
        clauses: list[str] = []
        for _ in range(self.rng.randint(1, 2)):
            var = self._fresh_var()
            source = self.path(
                self._source(bound), self.rng.randint(1, 2), depth
            )
            clauses.append(f"for {var} in {source}")
            bound.append(var)
        if self.allow_let and self.rng.random() < 0.3:
            var = self._fresh_var()
            source = self.path(self._var(bound), 1, depth)
            clauses.append(f"let {var} := {source}")
            bound.append(var)
        if self.rng.random() < 0.4:
            clauses.append(f"where {self._condition(depth, bound)}")
        return " ".join(clauses) + f" return {self._tail(depth, bound)}"

    def _tail(self, depth: int, bound: list[str]) -> str:
        roll = self.rng.random()
        if depth > 0 and roll < 0.15 and self._spend(4):
            return self._flwor(depth - 1, bound)
        if depth > 0 and roll < 0.3:
            # the workhorse fragment requires the else branch to be ()
            condition = self._condition(depth - 1, bound)
            then = self.path(self._var(bound), self.rng.randint(0, 1), depth)
            return f"if ({condition}) then {then} else ()"
        return self.path(self._var(bound), self.rng.randint(0, 2), depth)

    def query(self) -> str:
        """One random query over ``doc(uri)`` (or, in collection-source
        mode, over the corpus)."""
        self._budget = self.size_budget
        if self.rng.random() < 0.45:
            # _source([]) draws nothing in default mode (empty `bound`
            # short-circuits), keeping the v2 random sequence intact
            return self.path(self._source([]), self.rng.randint(1, 4))
        return self._flwor(2, [])

    # -- equivalent-pair mode -------------------------------------------

    def _pattern_step(self, depth: int) -> str:
        """One downward-only step (tree-pattern sub-grammar)."""
        if not self._spend():
            return f"/{self._tag()}"
        roll = self.rng.random()
        if roll < 0.5:
            text = f"/{self._node_test()}"
        elif roll < 0.85:
            text = f"//{self._tag()}"
        else:
            text = "/descendant-or-self::node()"
        if depth > 0 and self.rng.random() < 0.35:
            text += f"[{self._pattern_predicate(depth - 1)}]"
        return text

    def _pattern_predicate(self, depth: int) -> str:
        roll = self.rng.random()
        if roll < 0.35:
            text = self._tag()
            if depth > 0 and self.rng.random() < 0.4:
                text += self._pattern_step(depth - 1)
            return text
        if roll < 0.6:
            attr = self.rng.choice(("id", "key"))
            value = (
                str(self.rng.randint(0, 4))
                if attr == "id"
                else f"k{self.rng.randint(0, 2)}"
            )
            return f'@{attr} = "{value}"'
        if roll < 0.9 or depth <= 0 or not self._spend(2):
            op = self.rng.choice(_COMPARATORS)
            return f"{self._tag()} {op} {self.rng.randint(0, 9)}"
        return (
            f"{self._pattern_predicate(depth - 1)} and "
            f"{self._pattern_predicate(depth - 1)}"
        )

    def pattern_query(self) -> str:
        """One random query from the downward-only sub-grammar the
        containment analyzer's tree-pattern fragment covers: a
        ``doc()``-rooted path of child / descendant /
        descendant-or-self steps with conjunctive downward predicates,
        optionally ending in an attribute step."""
        self._budget = self.size_budget
        text = f'doc("{self.uri}")'
        for _ in range(self.rng.randint(1, 3)):
            text += self._pattern_step(2)
        if self.rng.random() < 0.25:
            text += f"/@{self.rng.choice(('id', 'key'))}"
        return text

    def contained_pair(self) -> tuple[str, str]:
        """A ``(broad, narrow)`` pair where *narrow*'s result is a
        subset of *broad*'s **by construction**: narrow is broad plus
        one extra conjunctive predicate on its final step.  Both sides
        are drawn from the tree-pattern sub-grammar — no trailing
        attribute step, so the predicate attaches to an
        element-selecting step — which is what lets the containment
        analyzer actually *prove* the containment the view-tier tests
        feed it (the extra branch only restricts, never extends)."""
        self._budget = self.size_budget
        broad = f'doc("{self.uri}")'
        for _ in range(self.rng.randint(1, 3)):
            broad += self._pattern_step(2)
        narrow = f"{broad}[{self._pattern_predicate(1)}]"
        return broad, narrow

    def equivalent_pair(self, pattern: bool = True) -> tuple[str, str]:
        """A ``(query, variant)`` pair that is semantically equivalent
        *by construction* (see :func:`variant_of`); with
        ``pattern=True`` the base query is drawn from the tree-pattern
        sub-grammar so the analyzer can actually prove the equivalence
        it is being tested on."""
        query = self.pattern_query() if pattern else self.query()
        return query, variant_of(query, self.rng)


def random_query(rng: random.Random, uri: str = DEFAULT_URI, **kwargs) -> str:
    """Convenience wrapper: one query from a fresh generator."""
    return QueryGenerator(rng, uri=uri, **kwargs).query()


def variant_of(query: str, rng: random.Random) -> str:
    """A differently-spelled, semantically equivalent variant of
    ``query``.

    Every applied transformation preserves the result sequence on
    every store: predicate order and multiplicity are irrelevant in a
    fragment without positional predicates, a ``self::node()`` step is
    the identity on any node sequence, explicit-axis respelling
    (``child::a`` for ``a``, ``attribute::id`` for ``@id``) is purely
    lexical, and comments never reach the parser.  The variant text is
    re-parsed before being returned; if the AST printer produced
    something unparsable (e.g. the ``(/)`` root marker), the variant
    degrades to a comment-decorated copy of the input — still
    equivalent, just less adventurous.
    """
    from repro.xquery import ast
    from repro.xquery.parser import parse_xquery

    def respell(node: object) -> None:
        if isinstance(node, ast.StepExpr):
            respell(node.input)
            for predicate in node.predicates:
                respell(predicate.expr)
            if len(node.predicates) > 1 and rng.random() < 0.6:
                rng.shuffle(node.predicates)
            if node.predicates and rng.random() < 0.25:
                node.predicates.append(rng.choice(node.predicates))
            if rng.random() < 0.2 and not isinstance(
                node.input, ast.PathRoot
            ):
                node.input = ast.StepExpr(
                    node.input, "self", ast.NodeTest(kind="node")
                )
        elif isinstance(node, ast.FLWOR):
            for clause in node.clauses:
                respell(
                    clause.sequence
                    if isinstance(clause, ast.ForClause)
                    else clause.value
                )
            if node.where is not None:
                respell(node.where)
            respell(node.ret)
        elif isinstance(node, ast.IfExpr):
            respell(node.cond)
            respell(node.then)
            respell(node.orelse)
        elif isinstance(node, ast.Comparison):
            respell(node.left)
            respell(node.right)
        elif isinstance(node, ast.AndExpr):
            for part in node.parts:
                respell(part)
            if len(node.parts) > 1 and rng.random() < 0.6:
                rng.shuffle(node.parts)
        elif isinstance(node, ast.SequenceExpr):
            for item in node.items:
                respell(item)
        elif isinstance(node, ast.Predicate):
            respell(node.expr)

    try:
        tree = parse_xquery(query)
        respell(tree)
        text = str(tree)
        parse_xquery(text)  # printer round-trip guard
    except Exception:
        text = query
    if rng.random() < 0.4:
        text = f"(: equivalent respelling :) {text}"
    if rng.random() < 0.3:
        text = f"{text}\n(: :)"
    return text


if __name__ == "__main__":  # pragma: no cover - manual inspection aid
    import sys

    argv = [a for a in sys.argv[1:] if a != "--pairs"]
    pairs = "--pairs" in sys.argv[1:]
    seed = int(argv[0]) if argv else 0
    rng = random.Random(seed)
    print(random_document(rng))
    if pairs:
        generator = QueryGenerator(rng)
        for mode in (True, False):
            query, variant = generator.equivalent_pair(pattern=mode)
            print(query)
            print(variant)
            print()
    else:
        for _ in range(10):
            print(random_query(rng))
