"""The open-loop soak harness: schedules, chaos ledger, differential
byte-identity, and the report gates.

Satellite 4's contract lives here: a quick soak under fault injection
must (a) sample responses and prove them byte-identical to a serial
re-execution, and (b) balance the *per-tenant* chaos ledger —
``injected == retried + degraded + surfaced`` for every tenant, not
just in aggregate.
"""

from __future__ import annotations

import random

import pytest

from repro.workloads.soak import (
    DEFAULT_TENANTS,
    SoakConfig,
    TenantProfile,
    _fairness_index,
    _find_knee,
    _schedule,
    format_soak_report,
    run_soak,
)


def quick_config(**kwargs) -> SoakConfig:
    defaults = dict(
        duration_s=1.5,
        documents=2,
        factor=0.002,
        load_points=(1.0, 2.0),
        differential_rate=0.25,
        max_differential_samples=16,
    )
    defaults.update(kwargs)
    return SoakConfig(**defaults)


# -- building blocks -------------------------------------------------------


def test_default_tenants_are_three_distinct_personas():
    assert len(DEFAULT_TENANTS) >= 3
    names = [profile.name for profile in DEFAULT_TENANTS]
    assert len(set(names)) == len(names)
    mixes = [frozenset(profile.queries.values()) for profile in DEFAULT_TENANTS]
    assert len(set(mixes)) == len(mixes), "query mixes must be distinct"


def test_schedule_is_poisson_open_loop_and_deterministic():
    profile = DEFAULT_TENANTS[0]
    first = _schedule(profile, 1.0, 10.0, random.Random(7))
    again = _schedule(profile, 1.0, 10.0, random.Random(7))
    assert first == again, "schedules must be reproducible from the seed"
    times = [when for when, _ in first]
    assert times == sorted(times)
    assert all(0 <= when < 10.0 for when in times)
    # the mean arrival count tracks rate * duration (Poisson, so give
    # it wide slack)
    expected = profile.rate_qps * 10.0
    assert 0.5 * expected < len(first) < 1.5 * expected
    # doubling the multiplier roughly doubles the arrivals
    double = _schedule(profile, 2.0, 10.0, random.Random(7))
    assert len(double) > 1.5 * len(first)


def test_fairness_index_bounds():
    assert _fairness_index([]) == 1.0
    assert _fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    skewed = _fairness_index([10.0, 0.0, 0.0])
    assert skewed == pytest.approx(1 / 3)
    assert _fairness_index([0.0, 0.0]) == 1.0


def test_find_knee_takes_last_tracking_point():
    curve = [
        {"multiplier": 0.5, "goodput_qps": 10.0, "goodput_ratio": 1.0},
        {"multiplier": 1.0, "goodput_qps": 19.0, "goodput_ratio": 0.95},
        {"multiplier": 2.0, "goodput_qps": 22.0, "goodput_ratio": 0.55},
    ]
    knee = _find_knee(curve)
    assert knee["multiplier"] == 1.0
    assert _find_knee(curve[2:])["multiplier"] is None


def test_config_validation():
    with pytest.raises(ValueError, match="two tenants"):
        SoakConfig(tenants=(DEFAULT_TENANTS[0],))
    with pytest.raises(ValueError, match="duration"):
        SoakConfig(duration_s=0)
    with pytest.raises(ValueError, match="load_points"):
        SoakConfig(load_points=())
    with pytest.raises(ValueError, match="differential_rate"):
        SoakConfig(differential_rate=1.5)
    quick = SoakConfig().quick()
    assert quick.duration_s <= 2.0 and quick.documents <= 2


# -- the soak under chaos --------------------------------------------------


def test_soak_under_faults_balances_every_tenant_ledger():
    """The per-tenant half of the chaos accounting invariant: faults
    are attributed to the tenant whose execution absorbed them, and
    each tenant's ledger balances independently."""
    report = run_soak(quick_config(fault_rate=0.15, load_points=(1.0,)))
    assert report["faults"]["enabled"] is True
    assert report["faults"]["ledger_balanced"] is True
    total_injected = 0
    for point in report["curve"]:
        for name, tenant in point["per_tenant"].items():
            ledger = tenant["faults"]
            assert ledger["injected"] == (
                ledger["retried"]
                + ledger["degraded"]
                + ledger["surfaced"]
            ), f"tenant {name} ledger out of balance: {ledger}"
            total_injected += ledger["injected"]
    # a 15% rate over hundreds of calls must actually inject; if this
    # fires the attribution plumbing is broken, not the dice
    assert total_injected > 0


def test_soak_differential_gate_is_byte_identical_under_chaos():
    """Satellite 4: sampled storm responses re-executed serially must
    serialize byte-identically — chaos may slow answers, never change
    them."""
    report = run_soak(
        quick_config(
            fault_rate=0.12,
            differential_rate=1.0,
            max_differential_samples=32,
        )
    )
    differential = report["differential"]
    assert differential["sampled"] >= 5
    assert differential["checked"] == differential["sampled"]
    assert differential["mismatches"] == []
    assert report["gates"]["differential_ok"] is True


def test_soak_report_gates_and_format():
    report = run_soak(quick_config(load_points=(0.5, 1.0)))
    assert report["gates"]["passed"] is True
    assert report["knee"]["multiplier"] is not None
    # offered tracks goodput up to the knee within the 10% budget
    for point in report["curve"]:
        if point["multiplier"] <= report["knee"]["multiplier"]:
            assert point["goodput_ratio"] >= 0.9
    rendered = format_soak_report(report)
    assert "knee" in rendered and "fairness" in rendered
    assert "differential" in rendered


def test_soak_custom_tenants_and_conservation():
    tenants = (
        TenantProfile(
            name="a",
            queries={"Q": "collection()//item/name"},
            rate_qps=20.0,
            burst=10.0,
            weight=1.0,
        ),
        TenantProfile(
            name="b",
            queries={"Q": "collection()//person/name"},
            rate_qps=20.0,
            burst=10.0,
            weight=1.0,
        ),
    )
    report = run_soak(quick_config(tenants=tenants, load_points=(1.0,)))
    [point] = report["curve"]
    assert set(point["per_tenant"]) == {"a", "b"}
    for tenant in point["per_tenant"].values():
        # every offered arrival is accounted for exactly once
        assert tenant["offered"] == (
            tenant["ok"]
            + tenant["rejected_quota"]
            + tenant["rejected_overload"]
            + sum(tenant["errors"].values())
        )
