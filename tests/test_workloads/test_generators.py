"""Workload generator tests: determinism, structure, scaling ratios."""

from repro.infoset import DocumentStore
from repro.workloads import (
    DBLPConfig,
    XMarkConfig,
    generate_dblp,
    generate_xmark,
)
from repro.xmltree import serialize
from repro.xmltree.model import ElementNode


def count_tag(root, tag):
    return len(root.find_all(tag))


def test_xmark_deterministic():
    a = serialize(generate_xmark(XMarkConfig(factor=0.002, seed=1)))
    b = serialize(generate_xmark(XMarkConfig(factor=0.002, seed=1)))
    c = serialize(generate_xmark(XMarkConfig(factor=0.002, seed=2)))
    assert a == b
    assert a != c


def test_xmark_entity_ratios():
    """Entity counts follow the XMark scale-1 ratios."""
    config = XMarkConfig(factor=0.01)
    root = generate_xmark(config).root_element
    assert count_tag(root, "item") == config.items
    assert count_tag(root, "category") == config.categories
    assert count_tag(root, "person") == config.persons
    assert count_tag(root, "open_auction") == config.open_auctions
    assert count_tag(root, "closed_auction") == config.closed_auctions
    # ratios as in XMark scale 1 (integer truncation allows slack)
    ratio = config.items / config.closed_auctions
    assert abs(ratio - 21750 / 9750) < 0.1


def test_xmark_referential_integrity():
    """itemref/@item and incategory/@category resolve — the joins of
    Q2 must find partners."""
    root = generate_xmark(XMarkConfig(factor=0.003)).root_element
    item_ids = {i.get_attribute("id") for i in root.find_all("item")}
    category_ids = {c.get_attribute("id") for c in root.find_all("category")}
    for ref in root.find_all("itemref"):
        assert ref.get_attribute("item") in item_ids
    for ref in root.find_all("incategory"):
        assert ref.get_attribute("category") in category_ids


def test_xmark_price_distribution():
    """About 5% of closed-auction prices exceed 500 (the Q2
    selectivity: 'only a fraction')."""
    root = generate_xmark(XMarkConfig(factor=0.02)).root_element
    prices = [float(p.string_value()) for p in root.find_all("price")]
    expensive = sum(1 for p in prices if p > 500)
    assert 0 < expensive < len(prices) * 0.15


def test_xmark_open_auctions_with_and_without_bidders():
    root = generate_xmark(XMarkConfig(factor=0.005)).root_element
    auctions = root.find_all("open_auction")
    with_bidders = [a for a in auctions if a.find_all("bidder")]
    assert 0 < len(with_bidders) < len(auctions)


def test_dblp_deterministic_and_vldb2001_present():
    document = generate_dblp(DBLPConfig(factor=0.0005))
    root = document.root_element
    vldb = [
        e
        for e in root.children
        if isinstance(e, ElementNode)
        and e.get_attribute("key") == "conf/vldb2001"
    ]
    assert len(vldb) == 1
    assert vldb[0].find_all("editor")
    assert "VLDB 2001" in vldb[0].find_all("title")[0].string_value()


def test_dblp_has_pre_1994_theses():
    root = generate_dblp(DBLPConfig(factor=0.001)).root_element
    theses = [
        e for e in root.children
        if isinstance(e, ElementNode) and e.tag == "phdthesis"
    ]
    early = [
        t for t in theses if t.find_all("year")[0].string_value() < "1994"
    ]
    assert theses and early


def test_generated_documents_shred_cleanly():
    store = DocumentStore()
    store.load_tree(generate_xmark(XMarkConfig(factor=0.001)))
    assert len(store.table) > 500
    assert store.table.doc_uris == ["auction.xml"]
