"""Benchmark harness tests (tiny factors so they run quickly)."""

import pytest

from repro.bench import BenchHarness
from repro.bench.harness import ENGINES, format_table9, table9_json


@pytest.fixture(scope="module")
def harness():
    return BenchHarness(xmark_factor=0.002, dblp_factor=0.0005)


def test_engines_enumerated(harness):
    assert set(ENGINES) >= {
        "stacked-sql",
        "joingraph-sql",
        "planner",
        "purexml-whole",
        "purexml-segmented",
    }


@pytest.mark.parametrize(
    "engine",
    ["stacked-sql", "joingraph-sql", "planner", "purexml-whole",
     "purexml-segmented", "interpreter"],
)
def test_every_engine_runs_q1(harness, engine):
    run = harness.run("Q1", engine)
    assert run.correct, engine
    assert run.seconds >= 0


def test_reference_is_interpreter(harness):
    query = harness.query("Q1")
    assert harness.reference(query) == harness.execute("Q1", "interpreter")


def test_tuple_query_supported(harness):
    run = harness.run("Q6", "joingraph-sql")
    assert run.correct


def test_format_table9(harness):
    runs = [harness.run("Q1", "joingraph-sql"), harness.run("Q1", "planner")]
    text = format_table9(runs)
    assert "Q1" in text and "joingraph-sql" in text and "planner" in text


def test_unknown_engine_rejected(harness):
    with pytest.raises(ValueError):
        harness.execute("Q1", "quantum")


def test_run_carries_phase_breakdown(harness):
    run = harness.run("Q2", "joingraph-sql")
    assert run.phases, "expected a per-phase span profile"
    # the execution side is always traced; compile-side spans appear
    # only on cache-cold runs
    assert "execute" in run.phases
    assert all(seconds >= 0 for seconds in run.phases.values())


def test_run_leaves_global_tracer_untouched(harness):
    from repro.obs import get_tracer

    before = get_tracer()
    harness.run("Q1", "interpreter")
    assert get_tracer() is before


def test_table9_json_schema(harness):
    import json

    runs = [harness.run("Q1", "joingraph-sql")]
    doc = table9_json(runs, xmark_factor=0.002)
    assert doc["schema"] == "repro.bench.table9/v3"
    assert doc["shards"] == 1
    assert doc["metadata"] == {"xmark_factor": 0.002}
    [entry] = doc["runs"]
    assert entry["query"] == "Q1"
    assert entry["engine"] == "joingraph-sql"
    assert entry["correct"] is True
    assert isinstance(entry["phases"], dict)
    json.dumps(doc)  # JSON-ready end to end
