"""Benchmark harness tests (tiny factors so they run quickly)."""

import pytest

from repro.bench import BenchHarness
from repro.bench.harness import ENGINES, format_table9


@pytest.fixture(scope="module")
def harness():
    return BenchHarness(xmark_factor=0.002, dblp_factor=0.0005)


def test_engines_enumerated(harness):
    assert set(ENGINES) >= {
        "stacked-sql",
        "joingraph-sql",
        "planner",
        "purexml-whole",
        "purexml-segmented",
    }


@pytest.mark.parametrize(
    "engine",
    ["stacked-sql", "joingraph-sql", "planner", "purexml-whole",
     "purexml-segmented", "interpreter"],
)
def test_every_engine_runs_q1(harness, engine):
    run = harness.run("Q1", engine)
    assert run.correct, engine
    assert run.seconds >= 0


def test_reference_is_interpreter(harness):
    query = harness.query("Q1")
    assert harness.reference(query) == harness.execute("Q1", "interpreter")


def test_tuple_query_supported(harness):
    run = harness.run("Q6", "joingraph-sql")
    assert run.correct


def test_format_table9(harness):
    runs = [harness.run("Q1", "joingraph-sql"), harness.run("Q1", "planner")]
    text = format_table9(runs)
    assert "Q1" in text and "joingraph-sql" in text and "planner" in text


def test_unknown_engine_rejected(harness):
    with pytest.raises(ValueError):
        harness.execute("Q1", "quantum")
