"""Dot-export tests."""

from repro.pipeline import XQueryProcessor
from repro.planner import JoinGraphPlanner
from repro.sql import flatten_query
from repro.viz import algebra_to_dot, physical_to_dot


def test_algebra_dot(fig2_store):
    processor = XQueryProcessor(store=fig2_store)
    compiled = processor.compile('doc("auction.xml")//open_auction[bidder]')
    dot = algebra_to_dot(compiled.isolated_plan, title="q1")
    assert dot.startswith('digraph "q1"')
    assert dot.rstrip().endswith("}")
    assert "SERIALIZE" in dot and "DISTINCT" in dot and "DOC" in dot
    assert "->" in dot


def test_stacked_plan_highlights_blocking_operators(fig2_store):
    processor = XQueryProcessor(store=fig2_store)
    compiled = processor.compile('doc("auction.xml")//open_auction[bidder]')
    dot = algebra_to_dot(compiled.stacked_plan)
    assert dot.count("#ffd9b3") >= 4  # scattered rank/distinct/rowid


def test_physical_dot(fig2_store):
    processor = XQueryProcessor(store=fig2_store)
    compiled = processor.compile('doc("auction.xml")//open_auction[bidder]')
    planner = JoinGraphPlanner(fig2_store.table)
    plan = planner.plan(flatten_query(compiled.isolated_plan))
    dot = physical_to_dot(plan, title="fig10")
    assert "NLJOIN" in dot and "IXSCAN" in dot
    assert dot.count("->") >= 3


def test_quotes_escaped(fig2_store):
    processor = XQueryProcessor(store=fig2_store)
    compiled = processor.compile('doc("auction.xml")//time')
    dot = algebra_to_dot(compiled.isolated_plan)
    assert '\\"' not in dot.splitlines()[0] or True
    # labels with string constants must not break the dot syntax
    for line in dot.splitlines():
        if "label=" in line:
            assert line.count('"') % 2 == 0
