"""Physical operator unit tests (paper Table 7 vocabulary)."""

import pytest

from repro.algebra.expressions import Comparison, Const, Plus, col, lit
from repro.infoset import shred
from repro.planner.indexes import BTreeIndex
from repro.planner.physical import (
    FilterOp,
    HsJoin,
    IxScan,
    NLJoin,
    Probe,
    Return,
    Sort,
    TbScan,
    compile_expr,
)

XML = "<a><b>1</b><b>2</b><c><b>3</b></c></a>"
# 0 doc, 1 a, 2 b, 3 '1', 4 b, 5 '2', 6 c, 7 b, 8 '3'


@pytest.fixture(scope="module")
def table():
    return shred(XML)


@pytest.fixture(scope="module")
def nksp(table):
    return BTreeIndex("nksp", ("name", "kind", "size", "pre"), table)


def test_compile_expr_qualified_columns(table):
    fn = compile_expr(
        Comparison("=", col("d1.name"), Const("b")), table
    )
    assert fn({"d1": 2}) is True
    assert fn({"d1": 6}) is False


def test_compile_expr_arithmetic(table):
    fn = compile_expr(Plus(col("d1.pre"), col("d1.size")), table)
    assert fn({"d1": 6}) == 8  # c spans [6, 8]


def test_compile_expr_rejects_unqualified(table):
    from repro.errors import PlanError

    with pytest.raises(PlanError):
        compile_expr(col("pre"), table)


def test_ixscan_with_postfilter(table, nksp):
    big = compile_expr(Comparison(">", col("d1.pre"), lit(3)), table)
    scan = IxScan(nksp, "d1", {"name": "b", "kind": 1}, postfilter=[big])
    assert sorted(b["d1"] for b in scan.rows()) == [4, 7]


def test_tbscan(table):
    scan = TbScan(table, "d1")
    assert len(list(scan.rows())) == len(table)


def test_nljoin_probe(table, nksp):
    outer = IxScan(nksp, "d1", {"name": "c", "kind": 1})
    low = compile_expr(col("d1.pre"), table)
    high = compile_expr(Plus(col("d1.pre"), col("d1.size")), table)
    probe = Probe(
        nksp, "d2", {"name": "b", "kind": 1}, "pre",
        low, high, False, True, [],
    )
    join = NLJoin(outer, probe)
    rows = list(join.rows())
    assert [(r["d1"], r["d2"]) for r in rows] == [(6, 7)]


def test_nljoin_early_out(table, nksp):
    outer = IxScan(nksp, "d1", {"name": "a", "kind": 1})
    probe = Probe(
        nksp, "d2", {"name": "b", "kind": 1}, None, None, None, True, True, []
    )
    semi = NLJoin(outer, probe, early_out=True)
    rows = list(semi.rows())
    assert len(rows) == 1 and "d2" not in rows[0]


def test_hsjoin(table, nksp):
    left = IxScan(nksp, "d1", {"name": "b", "kind": 1})
    right = IxScan(nksp, "d2", {"name": "b", "kind": 1})
    key1 = compile_expr(col("d1.value"), table)
    key2 = compile_expr(col("d2.value"), table)
    join = HsJoin(left, right, key1, key2)
    rows = list(join.rows())
    assert all(r["d1"] == r["d2"] for r in rows)  # value is unique here
    assert len(rows) == 3


def test_filter_sort_return(table, nksp):
    scan = IxScan(nksp, "d1", {"name": "b", "kind": 1})
    keep = compile_expr(Comparison("<", col("d1.pre"), lit(7)), table)
    filtered = FilterOp(scan, [keep])
    pre_fn = compile_expr(col("d1.pre"), table)
    ordered = Sort(filtered, [pre_fn], None)
    root = Return(ordered, pre_fn)
    assert root.items() == [2, 4]


def test_sort_with_duplicate_elimination(table, nksp):
    scan = IxScan(nksp, "d1", {"name": "b", "kind": 1})
    const_fn = compile_expr(Const(1), table)
    dedup = Sort(scan, [const_fn], [const_fn])
    assert len(list(dedup.rows())) == 1


def test_probe_with_null_bound_yields_nothing(table, nksp):
    outer = TbScan(table, "d1", [compile_expr(
        Comparison("=", col("d1.pre"), lit(3)), table
    )])
    null_fn = compile_expr(col("d1.name"), table)  # text node: name NULL
    probe = Probe(nksp, "d2", {}, "pre", null_fn, None, True, True, [])
    join = NLJoin(outer, probe)
    assert list(join.rows()) == []
