"""Property-based B-tree tests: every scan agrees with a brute-force
filter over the table."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infoset import shred
from repro.planner.indexes import BTreeIndex


def random_doc(rng: random.Random) -> str:
    budget = [rng.randint(5, 40)]

    def element(depth: int) -> str:
        budget[0] -= 1
        tag = rng.choice("abc")
        children = []
        while budget[0] > 0 and rng.random() < (0.6 if depth < 4 else 0.1):
            if rng.random() < 0.4:
                budget[0] -= 1
                children.append(str(rng.randint(0, 20)))
            else:
                children.append(element(depth + 1))
        return f"<{tag}>{''.join(children)}</{tag}>"

    return element(0)


COLUMNS = {
    "pre": lambda t, p: p,
    "size": lambda t, p: t.size[p],
    "level": lambda t, p: t.level[p],
    "kind": lambda t, p: t.kind[p],
    "name": lambda t, p: t.name[p],
    "value": lambda t, p: t.value[p],
}

KEYS = [
    ("name", "kind", "size", "pre", "level"),
    ("name", "level", "kind", "pre"),
    ("value", "name", "level", "kind", "pre"),
    ("pre",),
]


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_scan_equals_bruteforce(seed):
    rng = random.Random(seed)
    table = shred(random_doc(rng), uri="t.xml")
    key = rng.choice(KEYS)
    index = BTreeIndex("ix", key, table)

    # random equality prefix
    prefix_len = rng.randint(0, len(key) - 1)
    sample_pre = rng.randrange(len(table))
    equals = {c: COLUMNS[c](table, sample_pre) for c in key[:prefix_len]}

    # random range on a column behind the prefix
    use_range = rng.random() < 0.7 and prefix_len < len(key)
    range_col = None
    low = high = None
    low_inc = high_inc = True
    if use_range:
        range_col = rng.choice(key[prefix_len:])
        # draw integer bounds (these keys' tail columns are numeric,
        # except value: use string bounds there)
        if range_col == "value":
            low, high = "1", "9"
        else:
            low = rng.randint(0, 10)
            high = low + rng.randint(0, 10)
        low_inc = rng.random() < 0.5
        high_inc = rng.random() < 0.5

    got = sorted(
        index.scan(equals, range_col, low, high, low_inc, high_inc)
    )

    def keep(p: int) -> bool:
        for c, v in equals.items():
            if COLUMNS[c](table, p) != v:
                return False
        if range_col is not None:
            x = COLUMNS[range_col](table, p)
            if x is None:
                return False
            if type(x) is not type(low) and not (
                isinstance(x, (int, float)) and isinstance(low, (int, float))
            ):
                return False
            if low is not None and (x < low or (not low_inc and x == low)):
                return False
            if high is not None and (x > high or (not high_inc and x == high)):
                return False
        return True

    expected = sorted(p for p in range(len(table)) if keep(p))
    assert got == expected, (key, equals, range_col, low, high, low_inc, high_inc)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_estimated_entries_exact(seed):
    rng = random.Random(seed)
    table = shred(random_doc(rng), uri="t.xml")
    index = BTreeIndex("nk", ("name", "kind"), table)
    sample = rng.randrange(len(table))
    name = table.name[sample]
    expected = sum(1 for p in range(len(table)) if table.name[p] == name)
    assert index.estimated_entries({"name": name}) == expected
