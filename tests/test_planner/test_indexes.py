"""Composite B-tree index unit tests."""

import pytest

from repro.infoset import shred
from repro.planner.indexes import BTreeIndex, IndexCatalog
from repro.sql.backend import TABLE6_INDEXES

XML = "<a><b>1</b><b>2</b><c><b>3</b><d/></c></a>"
# pre: 0 doc, 1 a, 2 b, 3 '1', 4 b, 5 '2', 6 c, 7 b, 8 '3', 9 d


@pytest.fixture(scope="module")
def table():
    return shred(XML)


@pytest.fixture(scope="module")
def nkspl(table):
    return BTreeIndex("nkspl", ("name", "kind", "size", "pre", "level"), table)


def test_equality_prefix_scan(table, nkspl):
    assert sorted(nkspl.scan({"name": "b", "kind": 1})) == [2, 4, 7]
    assert nkspl.scan({"name": "zzz", "kind": 1}) == []


def test_range_after_prefix(table, nkspl):
    hits = nkspl.scan({"name": "b", "kind": 1}, range_col="size", low=1, high=1)
    assert sorted(hits) == [2, 4, 7]


def test_pre_range_scan(table):
    p = BTreeIndex("p", ("pre",), table)
    assert p.scan({}, range_col="pre", low=2, high=6, low_inclusive=False) == [
        3,
        4,
        5,
        6,
    ]
    assert p.scan({}, range_col="pre", low=2, high=6) == [2, 3, 4, 5, 6]
    assert p.scan({}, range_col="pre", low=2, high=6, high_inclusive=False) == [
        2,
        3,
        4,
        5,
    ]


def test_exact_range_point(table):
    p = BTreeIndex("p", ("pre",), table)
    assert p.scan({}, range_col="pre", low=4, high=4) == [4]


def test_full_scan(table, nkspl):
    assert len(nkspl.scan({})) == len(table)


def test_none_values_sort_first_and_band_excluded(table):
    v = BTreeIndex("v", ("value", "pre"), table)
    # text nodes have values '1','2','3'; elements b also (size 1)
    hits = v.scan({}, range_col="value", high="2")
    values = {table.value[p] for p in hits}
    assert None not in values  # NULL band excluded from the range
    assert values <= {"", "1", "2"}  # '' (empty element d) <= '2' holds


def test_prefix_must_match_key_order(table, nkspl):
    with pytest.raises(ValueError):
        nkspl.scan({"kind": 1})  # kind is not the first key column
    with pytest.raises(ValueError):
        nkspl.scan({"name": "b"}, range_col="value")  # value not in key


def test_non_adjacent_range_filters_in_index(table, nkspl):
    """nkspl = (name, kind, size, pre, level): with only a name prefix,
    a pre range is applied as an in-group filter — the partitioned
    tag-stream access of the paper's Section 4."""
    hits = nkspl.scan({"name": "b"}, range_col="pre", low=3, high=8)
    assert sorted(hits) == [4, 7]


def test_estimated_entries(table, nkspl):
    assert nkspl.estimated_entries({"name": "b", "kind": 1}) == 3
    assert nkspl.estimated_entries({"name": "d"}) == 1


def test_catalog_best_for(table):
    catalog = IndexCatalog(table, TABLE6_INDEXES)
    assert catalog.best_for({"name", "kind"}, "data").name == "idx_nkdlp"
    assert catalog.best_for({"name", "kind"}, "size").name in (
        "idx_nkspl",
        "idx_nksp",
    )
    assert catalog.best_for({"value"}, None) is not None
    assert catalog.best_for(set(), "pre").name == "idx_p_nvkls"


def test_prefix_coverage(table, nkspl):
    assert nkspl.prefix_coverage({"name", "kind"}, "size") == 3
    assert nkspl.prefix_coverage({"name"}, None) == 1
    assert nkspl.prefix_coverage(set(), "size") is None
    assert nkspl.prefix_coverage({"kind"}, None) is None  # not a prefix
