"""Join-graph planner unit tests: access paths, ordering, correctness."""

import pytest

from repro.compiler import compile_core
from repro.infoset import DocumentStore
from repro.planner import JoinGraphPlanner, explain_plan, plan_phenomena
from repro.planner.advisor import advise_indexes
from repro.rewrite import isolate
from repro.sql import flatten_query
from repro.xquery import normalize, parse_xquery

XML = """\
<lib>
  <shelf id="s1">
    <book y="1990"><t>A</t></book>
    <book y="2001"><t>B</t></book>
  </shelf>
  <shelf id="s2">
    <book y="2001"><t>C</t></book>
  </shelf>
</lib>
"""


@pytest.fixture(scope="module")
def store():
    s = DocumentStore()
    s.load(XML, "lib.xml")
    return s


@pytest.fixture(scope="module")
def planner(store):
    return JoinGraphPlanner(store.table)


def plan_for(store, planner, query):
    core = normalize(parse_xquery(query), default_doc="lib.xml")
    isolated, _ = isolate(compile_core(core, store))
    return planner.plan(flatten_query(isolated))


def test_simple_path_plan(store, planner):
    plan = plan_for(store, planner, 'doc("lib.xml")//book/t')
    from repro.algebra import run_plan

    core = normalize(parse_xquery('doc("lib.xml")//book/t'))
    reference = run_plan(compile_core(core, store))
    assert plan.execute() == reference
    assert all(s.index for s in plan.steps)


def test_selective_predicate_leads(store, planner):
    """The value predicate anchors the plan (Bindex-style evaluation,
    paper Section 5 terminology)."""
    plan = plan_for(store, planner, 'doc("lib.xml")//shelf[@id = "s2"]/book')
    leading = plan.steps[0]
    assert leading.node_test.get("name") == "id"


def test_every_step_has_estimate(store, planner):
    plan = plan_for(store, planner, 'doc("lib.xml")//shelf/book[t]')
    assert all(s.estimated_cardinality >= 0 for s in plan.steps)


def test_empty_result_plan(store, planner):
    plan = plan_for(store, planner, 'doc("lib.xml")//nothing')
    assert plan.execute() == []


def test_impossible_flat_query(store, planner):
    plan = plan_for(store, planner, 'doc("absent.xml")//book')
    assert plan.execute() == []


def test_phenomena_report_fields(store, planner):
    plan = plan_for(store, planner, 'doc("lib.xml")//book[y > 2000]')
    phenomena = plan_phenomena(plan)
    assert isinstance(phenomena.join_order, list)
    assert phenomena.leading_node_test
    text = explain_plan(plan)
    assert "continuations" in text


def test_advisor_smoke(store):
    core = normalize(parse_xquery('doc("lib.xml")//book[y > 2000]'))
    isolated, _ = isolate(compile_core(core, store))
    advised = advise_indexes([flatten_query(isolated)])
    names = {a.short_name for a in advised}
    assert "nkdlp" in names  # typed value comparison
    assert "nksp" in names  # node test + axis step


def test_stats_selectivity(store):
    from repro.planner import TableStatistics

    stats = TableStatistics.collect(store.table)
    assert stats.row_count == len(store.table)
    assert stats.eq_cardinality("name", "book") == 3.0
    assert stats.eq_cardinality("name", "nope") == 0.0
    assert 0 < stats.data_range_fraction(">", 2000.0) < 1
    assert stats.data_range_fraction(">", 99999.0) == 0.0
