"""Sampling (ROX-style) planner mode tests."""

import pytest

from repro.infoset import DocumentStore
from repro.pipeline import XQueryProcessor
from repro.planner import JoinGraphPlanner
from repro.sql import flatten_query


@pytest.fixture(scope="module")
def env():
    store = DocumentStore()
    store.load(
        "<db>"
        + "".join(
            f'<rec id="r{i}"><status>{"cold" if i < 2 else "hot"}</status>'
            f"<load>{i % 7}</load></rec>"
            for i in range(60)
        )
        + "</db>",
        "skew.xml",
    )
    return store, XQueryProcessor(store, default_doc="skew.xml")


QUERIES = [
    '//rec[status = "hot"]/load',
    '//rec[status = "cold"]/load',
    "for $r in //rec where $r/load > 5 return $r/status",
]


@pytest.mark.parametrize("query", QUERIES)
def test_sampling_mode_is_correct(env, query):
    store, processor = env
    compiled = processor.compile(query)
    reference = processor.execute(compiled, engine="interpreter")
    flat = flatten_query(compiled.isolated_plan)
    for mode in ("statistics", "sampling"):
        plan = JoinGraphPlanner(store.table, mode=mode).plan(flat)
        assert plan.execute() == reference, (mode, query)


def test_unknown_mode_rejected(env):
    store, _ = env
    with pytest.raises(ValueError):
        JoinGraphPlanner(store.table, mode="clairvoyant")


def test_sample_size_respected(env):
    store, processor = env
    compiled = processor.compile(QUERIES[0])
    flat = flatten_query(compiled.isolated_plan)
    tiny = JoinGraphPlanner(store.table, mode="sampling", sample_size=1)
    reference = processor.execute(compiled, engine="interpreter")
    assert tiny.plan(flat).execute() == reference
