"""QueryService facade tests: cache correctness, invalidation,
metrics, and the batch APIs."""

from __future__ import annotations

import pytest

from repro.infoset import DocumentStore
from repro.obs import metrics_scope
from repro.pipeline import XQueryProcessor
from repro.service import QueryService

AUCTION_XML = """\
<open_auction id="1">
  <initial>15</initial>
  <bidder>
    <time>18:43</time>
    <increase>4.20</increase>
  </bidder>
</open_auction>
"""

ENGINES = ("interpreter", "isolated-interpreter", "stacked-sql", "joingraph-sql")


@pytest.fixture()
def service():
    with QueryService(workers=2) as svc:
        svc.load(AUCTION_XML, "auction.xml")
        yield svc


def test_cache_hit_identical_to_cold_compile_across_engines(service):
    query = 'doc("auction.xml")//open_auction[initial = "15"]'
    # cold compile on an independent processor = the reference artifact
    cold = XQueryProcessor(store=service.store, default_doc="auction.xml")
    reference = {
        engine: cold.execute(cold.compile(query), engine=engine)
        for engine in ENGINES
    }
    # first service call fills the cache, the rest must hit
    for engine in ENGINES:
        assert service.execute(query, engine=engine) == reference[engine]
    assert service.cache.stats()["misses"] == 1
    assert service.cache.stats()["hits"] == len(ENGINES) - 1
    # and a hit returns the *same* artifact, not a recompile
    assert service.compile(query) is service.compile(query)


def test_cache_invalidates_on_document_load(service):
    query = "//bidder/time"
    assert service.serialize(service.execute(query)) == "<time>18:43</time>"
    version_before = service.store.version
    service.load(
        "<open_auction><bidder><time>09:01</time></bidder></open_auction>",
        "other.xml",
    )
    assert service.store.version == version_before + 1
    assert service.cache.stats()["size"] == 0  # stale entry dropped
    # same text, same answer — but through a fresh compile (a miss)
    assert service.serialize(service.execute(query)) == "<time>18:43</time>"
    assert service.cache.stats()["misses"] == 2
    # and the new document is queryable through the rebuilt pool
    out = service.serialize(service.execute('doc("other.xml")//time'))
    assert out == "<time>09:01</time>"


def test_disabled_rules_get_distinct_cache_entries():
    store = DocumentStore()
    store.load(AUCTION_XML, "auction.xml")
    query = "//bidder"
    with QueryService(store=store, default_doc="auction.xml") as plain, \
            QueryService(
                store=store,
                default_doc="auction.xml",
                disabled_rules={"17", "18"},
            ) as ablated:
        full = plain.compile(query)
        partial = ablated.compile(query)
        assert plain.execute(query) == ablated.execute(query)
        # differing disabled_rules -> differing cache keys -> distinct
        # artifacts; neither service ever serves the other's plan
        assert full is not partial
        assert plain._cache_key(query) != ablated._cache_key(query)
        assert plain.compile(query) is full
        assert ablated.compile(query) is partial


def test_stale_plans_never_served_after_load(service):
    query = "//increase"
    before = service.compile(query)
    service.load("<open_auction><increase>9.99</increase></open_auction>",
                 "late.xml")
    after = service.compile(query)
    assert after is not before
    assert len(service.execute(query)) == 1


def test_run_many_preserves_submission_order(service):
    queries = ["//bidder/time", "//initial", "//bidder/time"]
    results = service.run_many(queries)
    assert results[0] == results[2]
    assert results[1] == service.execute("//initial")


def test_submit_returns_future(service):
    future = service.submit("//bidder/time")
    assert future.result() == service.execute("//bidder/time")


def test_service_metrics_flow_from_workers():
    with metrics_scope() as metrics:
        with QueryService(workers=2) as svc:
            svc.load(AUCTION_XML, "auction.xml")
            svc.run_many(["//initial"] * 10)
        counters = metrics.snapshot()["counters"]
    assert counters["service.queries"] == 10
    assert counters["service.queries.joingraph-sql"] == 10
    # both workers may miss the cold cache before single-flight compile
    # fills it: misses counts lookups, not compiles
    assert 1 <= counters["service.cache.misses"] <= 2
    assert counters["service.cache.hits"] == 10 - counters["service.cache.misses"]
    histogram = metrics.snapshot()["histograms"]["service.query_ns"]
    assert histogram["count"] == 10


def test_closed_service_refuses_work(service):
    service.close()
    with pytest.raises(RuntimeError):
        service.execute("//initial")
    with pytest.raises(RuntimeError):
        service.submit("//initial")


def test_stats_snapshot(service):
    service.execute("//initial")
    stats = service.stats()
    assert stats["workers"] == 2
    assert stats["store_version"] == service.store.version
    # one compile: the exact-text entry plus its canonical-pattern alias
    assert stats["cache"]["size"] == 2
    assert stats["pool_connections"] >= 1


def test_unknown_engine_rejected(service):
    with pytest.raises(ValueError):
        service.execute("//initial", engine="db2")  # type: ignore[arg-type]
