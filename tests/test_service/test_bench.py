"""The service benchmark runner itself (tiny configuration)."""

from __future__ import annotations

from repro.service.bench import format_service_bench, run_service_bench


def test_run_service_bench_verifies_and_reports():
    report = run_service_bench(
        factor=0.001, repeat=2, workers=(1, 2), queries=("X1", "X13")
    )
    assert report["schema"] == "repro.service.bench/v4"
    assert report["views"]["verified"] is True
    assert report["views"]["view_hits"] > 0
    assert report["metadata"]["calls_per_mode"] == 4
    assert report["uncached_baseline"]["seconds"] > 0
    assert report["cached"]["seconds"] > 0
    assert report["speedup"] > 1.0  # the acceptance gate, in miniature
    assert [point["workers"] for point in report["scaling"]] == [1, 2]
    text = format_service_bench(report)
    assert "uncached baseline" in text and "speedup" in text


def test_quick_mode_clamps_size():
    report = run_service_bench(
        factor=0.05, repeat=100, workers=(1, 2, 4, 8, 16), quick=True
    )
    assert report["metadata"]["factor"] <= 0.004
    assert report["metadata"]["repeat"] <= 8
    assert max(p["workers"] for p in report["scaling"]) <= 4
