"""Process-executor serving: byte identity, crash recovery, and the
cross-process fault ledger.

The :class:`ProcessShardExecutor` owns one long-lived worker process
per shard (zero-copy shard attach, shipped pre-lowered SQL).  These
tests pin the contract the tentpole claims: results are byte-identical
to serial execution, a SIGKILL'd worker is restarted and the query
retried without the caller noticing, organic crashes stay *out* of the
injected-fault ledger, and injected faults crossing the pipe keep
``injected == retried + degraded + surfaced`` balanced.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

import repro
from repro.errors import DeadlineExceeded, ServiceError
from repro.faults.injector import FaultInjector, FaultPlan, injection
from repro.obs import metrics_scope
from repro.pipeline import XQueryProcessor
from repro.service.scatter import ShardedService
from repro.store import Collection

URIS = tuple(f"d{i}.xml" for i in range(4))
ENGINES = ("joingraph-sql", "stacked-sql")
QUERIES = (
    "collection()//item[v > 9]/v",
    "collection()//item[v = 3]",
    'collection("d1.xml")//item/v',
)


def _doc(index: int) -> str:
    items = "".join(
        f'<item n="{j}"><v>{(index * 7 + j * 3) % 20}</v></item>'
        for j in range(12)
    )
    return f"<root>{items}</root>"


def _collection(shards: int) -> Collection:
    collection = Collection(shards)
    for index, uri in enumerate(URIS):
        collection.load(_doc(index), uri, shard=index % shards)
    return collection


@pytest.fixture()
def service():
    with ShardedService(
        _collection(2), default_doc=URIS[0], executor="process"
    ) as service:
        yield service


@pytest.fixture(scope="module")
def serial():
    collection = _collection(1)
    return XQueryProcessor(
        store=collection.combined_store(),
        default_doc=URIS[0],
        collections=collection.resolve,
    )


def test_process_results_byte_identical_to_serial(service, serial):
    for query in QUERIES:
        for engine in ENGINES:
            expected = serial.execute(query, engine)
            result = service.execute(query, engine=engine)
            assert list(result) == list(expected), (query, engine)
            assert service.serialize(result) == serial.serialize(expected)
    stats = service.stats()
    assert stats["executor"] == "process"
    workers = stats["procpool"]["workers"]
    assert sum(worker["requests"] for worker in workers) > 0
    # the worker-side plan cache held: plans ship once per key, not
    # once per request
    for worker in workers:
        if worker["requests"]:
            assert worker["plans_shipped"] <= worker["requests"]
            assert worker["merges"] == worker["requests"]


def test_invalid_executor_is_rejected():
    with pytest.raises(ValueError):
        ShardedService(Collection(2), executor="fibers")
    with pytest.raises(ValueError):
        repro.connect(shards=2, executor="fibers")


def test_worker_crash_recovers_and_stays_out_of_the_ledger(service):
    reference = {
        query: list(service.execute(query)) for query in QUERIES
    }
    with metrics_scope() as metrics:
        pids = [
            worker["pid"]
            for worker in service.stats()["procpool"]["workers"]
            if worker["alive"]
        ]
        assert pids, "warm-up must have started worker processes"
        for pid in pids:
            os.kill(pid, signal.SIGKILL)
        # SIGKILL'd children linger as zombies until reaped, so poll
        # the executor's own liveness view (is_alive() reaps them)
        deadline = time.monotonic() + 10.0
        while any(
            worker["alive"]
            for worker in service.stats()["procpool"]["workers"]
        ):
            assert time.monotonic() < deadline, "workers did not die"
            time.sleep(0.01)
        # the very next queries must be served correctly: the dead
        # workers are detected, restarted, re-attached, and the plans
        # re-shipped — all inside the retry loop
        for query, expected in reference.items():
            assert list(service.execute(query)) == expected
    counters = metrics.snapshot()["counters"]
    assert counters.get("service.procpool.worker_restarts", 0) >= 1
    # an organic crash is not an injected fault: the chaos ledger must
    # not claim credit for recovering from it
    assert service.fault_accounting == {
        "retry": 0, "degrade": 0, "surface": 0,
    }


def test_injected_faults_balance_across_the_process_boundary(serial):
    expected = {
        query: list(serial.execute(query)) for query in QUERIES
    }
    with ShardedService(
        _collection(2),
        default_doc=URIS[0],
        executor="process",
        deadline_s=1.0,
    ) as service:
        for query in QUERIES:  # warm: plans shipped before the storm
            assert list(service.execute(query)) == expected[query]
        injector = FaultInjector(
            FaultPlan.uniform(0.25, seed=7, stall_ms=4000.0)
        )
        with metrics_scope() as metrics, injection(injector):
            for round_index in range(10):
                for query in QUERIES:
                    try:
                        items = service.execute(query)
                    except ServiceError:
                        continue  # typed surfacing is a legal outcome
                    assert list(items) == expected[query]
        handled = service.fault_accounting
        injected = injector.counts.total
    assert injected > 0, "the storm must actually inject faults"
    assert injected == sum(handled.values()), (injected, handled)
    counters = metrics.snapshot()["counters"]
    assert sum(
        count
        for name, count in counters.items()
        if name.startswith("faults.injected.")
    ) == injected
    assert sum(
        count
        for name, count in counters.items()
        if name.startswith("service.faults.handled.")
    ) == injected


def test_deadline_surfaces_typed_through_the_worker(service):
    service.execute(QUERIES[0])  # warm: attach + plan shipping
    with pytest.raises(DeadlineExceeded):
        service.execute(QUERIES[0], deadline_s=1e-5)


# -- stats() vs concurrent restart -----------------------------------------


class _StubProcess:
    pid = 4242

    @staticmethod
    def is_alive() -> bool:
        return True


class _RacyWorker:
    """A worker whose ``process`` is reaped between two attribute
    reads — exactly what a concurrent ``_reap``/restart does while
    ``stats()`` walks the table."""

    def __init__(self) -> None:
        self.shard = 0
        self.name = "s0w0"
        self.requests = 3
        self.merges = 2
        self.restarts = 1
        self.shipped: set = set()
        self.reads = 0

    @property
    def process(self):
        self.reads += 1
        return _StubProcess() if self.reads == 1 else None


def test_stats_survives_worker_reaped_mid_snapshot():
    """Regression: ``stats()`` used to read ``worker.process`` twice
    (None-check, then ``.pid``); a restart nulling the reference
    between the reads crashed ``repro obs`` with AttributeError.  The
    snapshot must instead describe the worker from one coherent read."""
    from repro.service.procpool import ProcessShardExecutor

    executor = ProcessShardExecutor.__new__(ProcessShardExecutor)
    executor.workers_per_shard = 1
    executor._workers = [[_RacyWorker()]]
    report = executor.stats()
    [row] = report["workers"]
    # one coherent snapshot: the single read saw the live process
    assert row["pid"] == 4242
    assert row["alive"] is True
    assert row["requests"] == 3 and row["merges"] == 2


def test_stats_reports_worker_mid_restart_as_down():
    from repro.service.procpool import ProcessShardExecutor

    worker = _RacyWorker()
    worker.reads = 1  # the next read (stats's one read) returns None
    executor = ProcessShardExecutor.__new__(ProcessShardExecutor)
    executor.workers_per_shard = 1
    executor._workers = [[worker]]
    [row] = executor.stats()["workers"]
    assert row["pid"] is None
    assert row["alive"] is False
