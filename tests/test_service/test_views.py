"""The materialized-view cache tier: admission by hit frequency,
strictly-contained lookup through the PR 6 decision procedure,
residual re-filtering via the membership oracle, LRU eviction inside
the byte budget, and the never-stale invalidation contract — on the
:class:`ViewManager` in isolation and wired into both
:class:`QueryService` and :class:`ShardedService`.
"""

from __future__ import annotations

import pytest

from repro.analysis.containment import filter_pattern
from repro.pipeline import XQueryProcessor
from repro.service import QueryService, ViewManager
from repro.service.scatter import ShardedService
from repro.service.service import canonical_pattern_of
from repro.store import Collection

XML = """\
<site>
  <a id="1"><b>1</b><c>2</c></a>
  <a id="2"><b>4</b></a>
  <a><b>7</b><c>7</c></a>
  <d><a><c>9</c></a></d>
</site>
"""

BROAD = "//a[b]"
NARROW = "//a[b][c]"


def make_service(**kwargs) -> QueryService:
    svc = QueryService(workers=1, view_admit_after=2, **kwargs)
    svc.load(XML, "site.xml")
    return svc


def make_manager(service: QueryService, **kwargs) -> ViewManager:
    return ViewManager(service._view_filter, **kwargs)


def pattern_for(service: QueryService, query: str):
    processor = service.processor
    pattern = canonical_pattern_of(
        query, processor.default_doc, processor.collections
    )
    assert pattern is not None
    return pattern


# -- ViewManager in isolation ----------------------------------------------


def test_admission_waits_for_the_threshold():
    with make_service() as service:
        manager = make_manager(service, admit_after=3)
        compiled = service.compile(BROAD)
        items = service.execute(BROAD)
        version = service.store.version
        assert not manager.observe(compiled.source, compiled.core, version, items)
        assert not manager.observe(compiled.source, compiled.core, version, items)
        assert manager.observe(compiled.source, compiled.core, version, items)
        assert len(manager) == 1
        # an already-resident same-version view is not re-admitted
        assert not manager.observe(compiled.source, compiled.core, version, items)


def test_answer_requires_strict_containment():
    """A view never answers its own (equivalent) pattern — equivalence
    is the canonical plan tier's job — but does answer a strictly
    narrower one, and the rows match a cold execution exactly."""
    with make_service() as service:
        manager = make_manager(service, admit_after=1)
        compiled = service.compile(BROAD)
        items = service.execute(BROAD)
        version = service.store.version
        assert manager.observe(compiled.source, compiled.core, version, items)

        equivalent = pattern_for(service, "//a[b][b]")
        assert manager.answer(equivalent, version) is None

        narrow = pattern_for(service, NARROW)
        rows = manager.answer(narrow, version)
        assert rows == list(service.execute(NARROW))
        assert manager.hits == 1 and manager.lookups == 2


def test_answer_is_memoized():
    with make_service() as service:
        manager = make_manager(service, admit_after=1)
        compiled = service.compile(BROAD)
        items = service.execute(BROAD)
        version = service.store.version
        manager.observe(compiled.source, compiled.core, version, items)
        narrow = pattern_for(service, NARROW)
        first = manager.answer(narrow, version)
        again = manager.answer(narrow, version)
        assert first == again
        assert manager.hits == 2


def test_answer_ignores_other_store_versions():
    with make_service() as service:
        manager = make_manager(service, admit_after=1)
        compiled = service.compile(BROAD)
        items = service.execute(BROAD)
        version = service.store.version
        manager.observe(compiled.source, compiled.core, version, items)
        narrow = pattern_for(service, NARROW)
        assert manager.answer(narrow, version + 1) is None


def test_budget_evicts_lru():
    with make_service() as service:
        compiled_a = service.compile(BROAD)
        rows_a = service.execute(BROAD)
        compiled_c = service.compile("//a[c]")
        rows_c = service.execute("//a[c]")
        version = service.store.version
        one_view = ViewManager(service._view_filter, admit_after=1)
        one_view.observe(compiled_a.source, compiled_a.core, version, rows_a)
        budget = one_view.bytes + 8  # room for one view, not two
        manager = ViewManager(
            service._view_filter,
            admit_after=1,
            budget_bytes=budget,
            max_view_bytes=budget,
        )
        manager.observe(compiled_a.source, compiled_a.core, version, rows_a)
        manager.observe(compiled_c.source, compiled_c.core, version, rows_c)
        assert len(manager) == 1
        assert manager.evictions == 1
        assert manager.bytes <= budget


def test_oversized_view_is_rejected_not_admitted():
    with make_service() as service:
        manager = make_manager(
            service, admit_after=1, budget_bytes=4096, max_view_bytes=1
        )
        compiled = service.compile(BROAD)
        items = service.execute(BROAD)
        assert not manager.observe(
            compiled.source, compiled.core, service.store.version, items
        )
        assert manager.rejected == 1
        assert len(manager) == 0


def test_evict_bytes_frees_lru_first():
    with make_service() as service:
        manager = make_manager(service, admit_after=1)
        for query in (BROAD, "//a[c]"):
            compiled = service.compile(query)
            items = service.execute(query)
            manager.observe(
                compiled.source, compiled.core, service.store.version, items
            )
        assert len(manager) == 2
        freed = manager.evict_bytes(1)
        assert freed > 0
        assert len(manager) == 1
        # asking for more than remains drains the tier without error
        assert manager.evict_bytes(10**9) > 0
        assert len(manager) == 0
        assert manager.bytes == 0


def test_invalidate_drops_stale_versions():
    with make_service() as service:
        manager = make_manager(service, admit_after=1)
        compiled = service.compile(BROAD)
        items = service.execute(BROAD)
        version = service.store.version
        manager.observe(compiled.source, compiled.core, version, items)
        assert manager.invalidate(store_version=version) == 0
        assert len(manager) == 1
        assert manager.invalidate(store_version=version + 1) == 1
        assert len(manager) == 0
        assert manager.bytes == 0


def test_constructor_validates():
    with pytest.raises(ValueError):
        ViewManager(lambda p, rows: list(rows), budget_bytes=0)
    with pytest.raises(ValueError):
        ViewManager(lambda p, rows: list(rows), admit_after=0)


# -- wired into QueryService ------------------------------------------------


def test_service_answers_narrowing_from_the_view_tier():
    with make_service() as service:
        reference = None
        for _ in range(2):  # second execution admits the view
            reference = service.execute(BROAD)
        assert len(service.views) == 1
        served = service.execute(NARROW)
        assert service.flight.records()[-1].cache == "view"
        # byte-identical to a full compile on a bare processor
        bare = XQueryProcessor(
            store=service.store, default_doc="site.xml"
        )
        expected = bare.execute(NARROW, engine="joingraph-sql")
        assert list(served) == list(expected)
        assert service.serialize(served) == service.serialize(expected)
        assert set(served) <= set(reference)


def test_view_answer_counts_in_cache_stats():
    with make_service() as service:
        service.execute(BROAD)
        service.execute(BROAD)
        service.execute(NARROW)
        stats = service.cache_stats()
        assert stats.view.hits == 1
        assert stats.to_dict()["tiers"]["view"]["hits"] == 1


def test_load_drops_views():
    """A ``DocTable.version`` bump invalidates every view before the
    next query — the never-stale contract."""
    with make_service() as service:
        service.execute(BROAD)
        service.execute(BROAD)
        assert len(service.views) == 1
        service.load("<site><a><b>1</b><c>1</c></a></site>", "more.xml")
        assert len(service.views) == 0
        # and the post-load narrow answer reflects the new content
        assert list(service.execute(NARROW)) == list(
            XQueryProcessor(
                store=service.store, default_doc="site.xml"
            ).execute(NARROW, engine="joingraph-sql")
        )


def test_views_off_means_no_view_tier():
    with QueryService(workers=1, views=False) as service:
        service.load(XML, "site.xml")
        assert service.views is None
        service.execute(BROAD)
        service.execute(BROAD)
        service.execute(NARROW)
        assert service.flight.records()[-1].cache == "miss"


def test_serialize_step_disables_views():
    """With the serialization step compiled in, results are not pre
    ranks, so the view tier stays off rather than materialize
    something the residual filter cannot re-check."""
    with QueryService(workers=1, serialize_step=True) as service:
        assert service.views is None


# -- wired into ShardedService ----------------------------------------------

DOCS = [
    ("<r><a><b>1</b><c>1</c></a></r>", "u0.xml"),
    ("<r><a><b>2</b></a></r>", "u1.xml"),
    ("<r><a><b>3</b><c>3</c></a><a><c>4</c></a></r>", "u2.xml"),
]


def make_sharded() -> ShardedService:
    svc = ShardedService(
        Collection(2), workers_per_shard=1, view_admit_after=2
    )
    for text, uri in DOCS:
        svc.load(text, uri)
    return svc


def test_sharded_view_answers_in_global_ranks():
    broad = 'collection("*")//a[b]'
    narrow = 'collection("*")//a[b][c]'
    with make_sharded() as service:
        service.execute(broad)
        service.execute(broad)
        assert len(service.views) == 1
        served = service.execute(narrow)
        assert service.flight.records()[-1].cache == "view"
        combined = service.collection.combined_store()
        expected = XQueryProcessor(
            store=combined, default_doc=DOCS[0][1]
        ).execute(narrow, engine="joingraph-sql")
        assert list(served) == list(expected)
        assert service.serialize(served) == service.serialize(expected)


def test_graft_drops_sharded_views():
    broad = 'collection("*")//a[b]'
    with make_sharded() as service:
        service.execute(broad)
        service.execute(broad)
        assert len(service.views) == 1
        service.load("<r><a><b>9</b><c>9</c></a></r>", "u3.xml")
        assert len(service.views) == 0
        assert service.views.invalidated == 1
        # post-graft answers see the new document
        rows = service.execute('collection("*")//a[b][c]')
        combined = service.collection.combined_store()
        expected = XQueryProcessor(
            store=combined, default_doc=DOCS[0][1]
        ).execute('collection("*")//a[b][c]', engine="joingraph-sql")
        assert list(rows) == list(expected)


def test_sharded_residual_filter_routes_global_ranks():
    with make_sharded() as service:
        broad_rows = list(service.execute('collection("*")//a[b]'))
        pattern = canonical_pattern_of(
            'collection("*")//a[b][c]',
            service._compiler.default_doc,
            service._compiler.collections,
        )
        assert pattern is not None
        filtered = service._view_filter(pattern, broad_rows)
        combined = service.collection.combined_store()
        assert filtered == filter_pattern(
            pattern, combined.table, broad_rows
        )
