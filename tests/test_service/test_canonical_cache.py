"""The canonical cache tier: lexical text normalization (exact hits
for comment/whitespace respellings), canonical-pattern aliases (hits
for semantically equivalent respellings), hit accounting, and the
identical-results contract against cold compiles — on both
:class:`QueryService` and :class:`ShardedService`.
"""

from __future__ import annotations

import random

from repro.infoset import DocumentStore
from repro.obs import metrics_scope
from repro.pipeline import XQueryProcessor
from repro.service import QueryService
from repro.service.scatter import ShardedService
from repro.store import Collection
from repro.xquery.text import normalize_query_text
from tests.genquery import random_document

XML = """\
<site>
  <a id="1"><b>1</b><c>2</c></a>
  <a id="2"><b>4</b></a>
  <a><b>7</b><c>7</c></a>
</site>
"""


def make_service() -> QueryService:
    svc = QueryService(workers=1)
    svc.load(XML, "site.xml")
    return svc


# -- lexical normalization --------------------------------------------------


def test_normalize_query_text_strips_comments_and_whitespace():
    spellings = [
        "//a[b][c]",
        "  //a[b][c]\n",
        "(: cached? :) //a[b][c]",
        "//a[b][c] (: :)",
    ]
    normalized = {normalize_query_text(text) for text in spellings}
    assert len(normalized) == 1
    # an interior comment conservatively becomes one space (comments
    # separate tokens), so it normalizes stably but not to the bare form
    assert normalize_query_text("//a[b] (: inner :) [c]") == "//a[b] [c]"


def test_comment_respelling_is_an_exact_hit():
    with make_service() as service:
        first = service.execute("//a[b][c]")
        assert service.execute("(: again :) //a[b][c]  ") == first
        stats = service.cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["canonical_hits"] == 0  # never reached the alias tier


# -- canonical-pattern aliases ----------------------------------------------


def test_equivalent_respelling_is_a_canonical_hit():
    with metrics_scope() as metrics:
        with make_service() as service:
            cold = XQueryProcessor(store=service.store, default_doc="site.xml")
            reference = cold.execute(cold.compile("//a[b][c]"))
            first = service.execute("//a[b][c]")
            # reordered predicates: different text, same canonical key
            second = service.execute("//a[c][b]")
            assert first == reference
            assert second == reference
            stats = service.cache.stats()
            assert stats["canonical_hits"] == 1
            assert stats["misses"] == 2  # both exact lookups missed
    counters = metrics.snapshot()["counters"]
    assert counters["service.cache.canonical_hit"] == 1


def test_canonical_hit_serves_the_same_artifact():
    with make_service() as service:
        first = service.compile("//a[b][c]")
        second = service.compile("//a[c][b]")
        assert second is first
        # the hit back-fills the exact key: the respelling now hits
        # the exact tier directly
        before = service.cache.stats()["canonical_hits"]
        assert service.compile("//a[c][b]") is first
        assert service.cache.stats()["canonical_hits"] == before


def test_explicit_axis_respelling_hits_canonically():
    with make_service() as service:
        first = service.execute("//a[b]/c")
        assert service.execute("//child::a[child::b]/child::c") == first
        assert service.cache.stats()["canonical_hits"] == 1


def test_inequivalent_queries_never_alias():
    with make_service() as service:
        narrowed = service.execute("//a[b][c]")
        broad = service.execute("//a[b]")
        assert narrowed != broad
        assert service.cache.stats()["canonical_hits"] == 0


def test_outside_fragment_queries_still_cache_exactly():
    with make_service() as service:
        query = "let $x := //a return $x/b"  # let-binding: no pattern
        first = service.execute(query)
        assert service.execute(query) == first
        stats = service.cache.stats()
        assert stats["hits"] == 1
        assert stats["canonical_hits"] == 0
        assert stats["size"] == 1  # no alias entry was planted


def test_store_reload_invalidates_canonical_aliases():
    with make_service() as service:
        service.execute("//a[b][c]")
        service.load(XML, "other.xml")
        assert service.cache.stats()["size"] == 0
        # post-reload the respelling is a cold compile, not a stale hit
        service.execute("//a[c][b]")
        assert service.cache.stats()["canonical_hits"] == 0


# -- sharded service --------------------------------------------------------


def _sharded() -> ShardedService:
    service = ShardedService(Collection(2), default_doc="m0.xml",
                             parallel_fanout=False)
    rng = random.Random(11)
    for index in range(4):
        service.load(random_document(rng), f"m{index}.xml", shard=index % 2)
    return service


def test_sharded_service_shares_the_canonical_tier():
    with _sharded() as service:
        first = service.execute("collection()//a[b][c]")
        assert service.execute("collection()//a[c][b]") == first
        assert service.execute("(: x :) collection()//a[b][c]") == first
        stats = service.cache.stats()
        assert stats["canonical_hits"] == 1
        # per-shard plan lookups also hit the exact tier, so only the
        # canonical counter is exact here
        assert stats["hits"] >= 1


def test_sharded_canonical_hit_matches_cold_compile():
    with _sharded() as service:
        reference = service.execute("collection()//a[b > 1]")
        with metrics_scope() as metrics:
            hit = service.execute("collection()//a[b > 1][b > 1]")
        assert hit == reference
        assert metrics.snapshot()["counters"]["service.cache.canonical_hit"] == 1
