"""The scatter-gather executor: scatter-safety analysis, sharded vs
serial agreement, routing, deadline propagation, and partial-shard
failure handling."""

from __future__ import annotations

import random

import pytest

from repro.engines import Engine
from repro.errors import BackendUnavailable, DeadlineExceeded, ServiceError
from repro.faults import FaultInjector, injection
from repro.infoset import DocumentStore
from repro.obs import metrics_scope
from repro.pipeline import XQueryProcessor
from repro.service.resilience import RetryPolicy
from repro.service.scatter import ShardedService, scatter_uris
from repro.store import Collection
from tests.genquery import random_document

DOCS = [f"m{i}.xml" for i in range(5)]

COLLECTION_QUERY = "collection()//a/b"

QUERIES = [
    "collection()//a",
    "collection()//a/b",
    'collection("m1*")//b',
    'collection("m*")//a[@id = "1"]',
    'doc("m2.xml")//b/c',
    "for $x in collection()//a where $x/b = 3 return $x/b",
    "(let $c := collection() return $c//a)/b",
    "(let $c := collection() return $c//a[$c//b = 3])/b",
]


def _corpus(seed: int = 9) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    return [(random_document(rng), uri) for uri in DOCS]


def make_sharded(shards: int = 3, **kwargs) -> ShardedService:
    service = ShardedService(
        Collection(shards), default_doc=DOCS[0], parallel_fanout=False,
        **kwargs,
    )
    for index, (text, uri) in enumerate(_corpus()):
        service.load(text, uri, shard=index % shards)
    return service


def make_serial() -> XQueryProcessor:
    collection = Collection(1)
    for text, uri in _corpus():
        collection.load(text, uri)
    return XQueryProcessor(
        store=collection.combined_store(),
        default_doc=DOCS[0],
        collections=collection.resolve,
    )


# -- scatter-safety analysis -----------------------------------------------


@pytest.fixture(scope="module")
def compiler():
    return XQueryProcessor(
        store=DocumentStore(),
        default_doc=DOCS[0],
        collections=lambda patterns: tuple(DOCS),
    )


def test_collection_query_is_scatter_safe(compiler):
    core = compiler.compile("collection()//a/b").core
    assert scatter_uris(core) == tuple(DOCS)


def test_single_doc_query_routes(compiler):
    core = compiler.compile('doc("m2.xml")//a').core
    assert scatter_uris(core) == ("m2.xml",)


def test_cross_document_join_is_serial(compiler):
    core = compiler.compile(
        'doc("m0.xml")//a[b = doc("m1.xml")/c]'
    ).core
    assert scatter_uris(core) is None


def test_flwor_result_is_serial(compiler):
    core = compiler.compile(
        "for $x in collection()//a return $x/b"
    ).core
    assert scatter_uris(core) is None


def test_let_shared_collection_is_serial(compiler):
    # one CoreCollection AST node, but two evaluation contexts via $c:
    # the predicate spans all documents, so scattering would evaluate
    # it shard-locally and drop items
    core = compiler.compile(
        "(let $c := collection() return $c//a[$c//b])/c"
    ).core
    assert scatter_uris(core) is None


def test_let_single_reference_collection_is_scatter_safe(compiler):
    # referenced once, the let is equivalent to inlining its binding
    core = compiler.compile("(let $c := collection() return $c//a)/b").core
    assert scatter_uris(core) == tuple(DOCS)


def test_let_shared_doc_routes(compiler):
    # both references name the same document: the whole query lives in
    # one shard, so routing stays exact
    core = compiler.compile(
        '(let $d := doc("m2.xml") return $d//a[$d//b])/c'
    ).core
    assert scatter_uris(core) == ("m2.xml",)


# -- containment-pattern fallback classifier --------------------------------


def test_flwor_where_classifies_via_pattern_fallback(compiler):
    """The structural walk refuses FLWOR shapes, but the containment
    analyzer's canonical pattern proves this one is a plain filtered
    path over a single collection — scatter-safe by construction."""
    query = "for $x in collection()//a where $x/b return $x"
    core = compiler.compile(query).core
    with metrics_scope() as metrics:
        assert scatter_uris(core) == tuple(DOCS)
    counters = metrics.snapshot()["counters"]
    assert counters["service.scatter.pattern_classified"] == 1


def test_pattern_fallback_respects_fragment_limits(compiler):
    # a path off the bound variable is outside the extraction fragment:
    # neither classifier fires, the query stays serial
    core = compiler.compile(
        "for $x in collection()//a return $x/b"
    ).core
    with metrics_scope() as metrics:
        assert scatter_uris(core) is None
    assert "service.scatter.pattern_classified" not in (
        metrics.snapshot()["counters"]
    )


def test_pattern_classified_query_matches_serial():
    query = "for $x in collection()//a where $x/b return $x"
    serial = make_serial()
    expected = serial.execute(query)
    with make_sharded() as service:
        result = service.execute(query)
        assert result.shards > 1
        assert list(result) == list(expected)
        assert service.serialize(result) == serial.serialize(expected)


# -- sharded vs serial agreement -------------------------------------------


@pytest.mark.parametrize("engine", ["joingraph-sql", "stacked-sql"])
def test_sharded_matches_serial_for_every_query_shape(engine):
    serial = make_serial()
    with make_sharded() as service:
        for query in QUERIES:
            expected = serial.execute(query, engine)
            result = service.execute(query, engine)
            assert list(result) == list(expected), query
            assert service.serialize(result) == serial.serialize(expected)


def test_let_shared_collection_differential_regression():
    """A let-bound collection referenced twice has one source AST node
    but two evaluation contexts; scattering would evaluate the
    ``$c//flag`` predicate shard-locally and drop every item whose
    shard doesn't host the flag document.  The query must fall back to
    serial execution and reproduce the single-backend answer."""
    docs = [
        (
            f"<r>{'<flag/>' if i == 2 else ''}<item><n>v{i}</n></item></r>",
            f"f{i}.xml",
        )
        for i in range(4)
    ]
    query = "(let $c := collection() return $c//item[$c//flag])/n"
    collection = Collection(1)
    for text, uri in docs:
        collection.load(text, uri)
    serial = XQueryProcessor(
        store=collection.combined_store(),
        default_doc="f0.xml",
        collections=collection.resolve,
    )
    expected = serial.execute(query, "joingraph-sql")
    assert len(expected) == 4  # one flag document guards *all* items
    service = ShardedService(
        Collection(4), default_doc="f0.xml", parallel_fanout=False
    )
    with service:
        for index, (text, uri) in enumerate(docs):
            service.load(text, uri, shard=index % 4)
        result = service.execute(query)
        assert result.shards == 1
        assert list(result) == list(expected)
        assert service.serialize(result) == serial.serialize(expected)


def test_unknown_uri_matches_nothing_and_counts():
    with make_sharded() as service:
        with metrics_scope() as metrics:
            result = service.execute('doc("missing.xml")//a')
        assert list(result) == []
        counters = metrics.snapshot()["counters"]
        assert counters["service.scatter.unknown_uris"] == 1


def test_interpreter_engines_run_serially_and_agree():
    serial = make_serial()
    with make_sharded() as service:
        for engine in ("interpreter", "isolated-interpreter"):
            result = service.execute(COLLECTION_QUERY, engine)
            assert result.shards == 1
            assert list(result) == list(serial.execute(COLLECTION_QUERY, engine))


def test_parallel_and_sequential_fanout_agree():
    with make_sharded() as sequential:
        expected = sequential.execute(COLLECTION_QUERY)
    service = ShardedService(
        Collection(3), default_doc=DOCS[0], parallel_fanout=True
    )
    with service:
        for index, (text, uri) in enumerate(_corpus()):
            service.load(text, uri, shard=index % 3)
        result = service.execute(COLLECTION_QUERY)
        assert list(result) == list(expected)
        assert result.shards == expected.shards


# -- result metadata -------------------------------------------------------


def test_scatter_result_records_fanout_width():
    with make_sharded() as service:
        result = service.execute(COLLECTION_QUERY)
        assert result.shards == 3
        assert result.engine is Engine.JOINGRAPH_SQL
        assert set(result.timings) == {"execute_ns", "merge_ns"}
        assert result.serialize() == service.serialize(result)


def test_routed_result_is_single_shard():
    with make_sharded() as service:
        with metrics_scope() as metrics:
            result = service.execute('doc("m2.xml")//b')
        assert result.shards == 1
        counters = metrics.snapshot()["counters"]
        assert counters["service.scatter.routed"] == 1


def test_run_returns_serialized_with_result_attached():
    with make_sharded() as service:
        serialized = service.run(COLLECTION_QUERY)
        assert serialized == service.serialize(serialized.result)
        assert serialized.result.shards == 3


# -- deadlines -------------------------------------------------------------


def test_exhausted_deadline_raises_typed_error():
    with make_sharded() as service:
        service.execute(COLLECTION_QUERY)  # warm caches
        with pytest.raises(DeadlineExceeded):
            service.execute(COLLECTION_QUERY, deadline_s=1e-9)


def test_generous_deadline_passes_through():
    with make_sharded(deadline_s=60.0) as service:
        assert list(service.execute(COLLECTION_QUERY))


# -- partial-shard failures ------------------------------------------------


def _fail_shard(service: ShardedService, shard: int) -> None:
    def boom(*args, **kwargs):
        raise BackendUnavailable("injected shard outage")

    service._shard_services[shard].execute = boom


def test_shard_failure_degrades_to_serial_fallback():
    serial = make_serial()
    with make_sharded(degrade=True) as service:
        _fail_shard(service, 0)
        with metrics_scope() as metrics:
            result = service.execute(COLLECTION_QUERY)
        assert list(result) == list(serial.execute(COLLECTION_QUERY))
        counters = metrics.snapshot()["counters"]
        assert counters["service.scatter.shard_failures"] == 1
        assert counters["service.scatter.serial_fallbacks"] == 1


def test_shard_failure_without_degradation_surfaces():
    with make_sharded(degrade=False) as service:
        _fail_shard(service, 1)
        with pytest.raises(ServiceError):
            service.execute(COLLECTION_QUERY)
        # partial answers are never returned: the failure surfaced
        # before any merge happened


def test_injected_shard_fault_is_retried_with_balanced_ledger():
    serial = make_serial()
    with make_sharded(retry=RetryPolicy(max_retries=2, base=0.001)) as service:
        expected = list(serial.execute(COLLECTION_QUERY))
        # lease ok, first shard statement busy; the retry is clean and
        # the other shards never see the (exhausted) script
        with injection(FaultInjector.scripted([None, "busy"])):
            result = service.execute(COLLECTION_QUERY)
        assert list(result) == expected
        accounting = service.fault_accounting
        assert accounting["retry"] == 1
        assert sum(accounting.values()) == 1


def test_stats_aggregate_per_shard_services():
    with make_sharded() as service:
        service.execute(COLLECTION_QUERY)
        stats = service.stats()
        assert stats["collection"]["shards"] == 3
        assert len(stats["per_shard"]) == 3
        assert set(stats["fault_accounting"]) == {"retry", "degrade", "surface"}
        assert sum(p["documents"] for p in stats["per_shard"]) == len(DOCS)


def test_closed_service_rejects_queries():
    service = make_sharded()
    service.close()
    with pytest.raises(RuntimeError):
        service.execute(COLLECTION_QUERY)
