"""Front-door behavior: typed backpressure, canonical coalescing,
batching, per-tenant accounting, and working-set eviction.

The eviction test is the PR's correctness anchor for corpora larger
than RAM: shard payloads are evicted *while queries keep arriving*,
every answer must stay byte-identical to the serial reference, and
the ``service.frontdoor.evictions`` / ``service.frontdoor.reattach``
counters must balance (every eviction that is queried again
re-attaches exactly once; the remainder is still pending).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import QuotaExceeded, ServiceError, ServiceOverloaded
from repro.pipeline import XQueryProcessor
from repro.service import FrontDoor, ShardedService, TenantSpec
from repro.store import Collection

DOCS = [
    ("<site><a>1</a><b>x</b></site>", "doc0.xml"),
    ("<site><a>2</a><b>y</b></site>", "doc1.xml"),
    ("<site><a>3</a><b>z</b></site>", "doc2.xml"),
    ("<site><a>4</a><b>w</b></site>", "doc3.xml"),
]


def make_service(**kwargs) -> ShardedService:
    service = ShardedService(Collection(2), **kwargs)
    for index, (text, uri) in enumerate(DOCS):
        service.load(text, uri, shard=index % 2)
    return service


def generous(name: str, **kwargs) -> TenantSpec:
    defaults = dict(rate_qps=10_000.0, burst=1_000.0)
    defaults.update(kwargs)
    return TenantSpec(name, **defaults)


def test_submit_requires_known_tenant_and_started_door():
    service = make_service()
    try:
        door = FrontDoor(service, [generous("alpha")])

        async def check():
            with pytest.raises(ServiceError, match="not started"):
                await door.submit("alpha", "collection()//a")
            async with door:
                with pytest.raises(ValueError, match="unknown tenant"):
                    await door.submit("ghost", "collection()//a")

        asyncio.run(check())
    finally:
        service.close()


def test_quota_exhaustion_is_typed_and_carries_retry_hint():
    service = make_service()
    try:

        async def scenario():
            specs = [
                generous("alpha"),
                TenantSpec("tiny", rate_qps=0.01, burst=2.0),
            ]
            async with FrontDoor(service, specs) as door:
                await door.submit("tiny", "collection()//a")
                await door.submit("tiny", "collection()//a")
                with pytest.raises(QuotaExceeded) as info:
                    await door.submit("tiny", "collection()//a")
                assert info.value.tenant == "tiny"
                assert info.value.retry_after_s > 0
                # the untouched tenant is unaffected
                result = await door.submit("alpha", "collection()//a")
                assert len(result) == 4
                stats = door.stats()
            tiny = stats["tenants"]["tiny"]
            assert tiny["rejected_quota"] == 1
            assert tiny["offered"] == 3 and tiny["admitted"] == 2
            assert (
                stats["counters"]["service.tenant.tiny.rejected.quota"] == 1
            )

        asyncio.run(scenario())
    finally:
        service.close()


def test_backlog_overflow_surfaces_service_overloaded():
    service = make_service()
    release = threading.Event()
    original_execute = service.execute

    def slow_execute(*args, **kwargs):
        assert release.wait(10), "test gate never released"
        return original_execute(*args, **kwargs)

    service.execute = slow_execute  # type: ignore[method-assign]
    try:

        async def scenario():
            specs = [generous("alpha", max_backlog=2)]
            async with FrontDoor(
                service,
                specs,
                batch_max=1,
                batch_window_s=0.0,
                max_concurrent_batches=1,
            ) as door:
                # fill the pipeline in stages: 1 executing + 1 drained
                # awaiting a batch slot, then 2 queued at the lane cap
                tasks = [
                    asyncio.create_task(
                        door.submit("alpha", "collection()//a")
                    )
                    for _ in range(2)
                ]
                for _ in range(400):
                    await asyncio.sleep(0.005)
                    if len(door._wfq) == 0 and (
                        door.stats()["tenants"]["alpha"]["admitted"] == 2
                    ):
                        break
                assert len(door._wfq) == 0, "dispatcher never drained"
                tasks += [
                    asyncio.create_task(
                        door.submit("alpha", "collection()//a")
                    )
                    for _ in range(2)
                ]
                for _ in range(400):
                    await asyncio.sleep(0.005)
                    if door.stats()["tenants"]["alpha"]["admitted"] == 4:
                        break
                with pytest.raises(ServiceOverloaded, match="backlog full"):
                    await door.submit("alpha", "collection()//a")
                release.set()
                results = await asyncio.gather(*tasks)
                assert all(len(r) == 4 for r in results)
                stats = door.stats()
            assert stats["tenants"]["alpha"]["rejected_overload"] == 1
            assert stats["tenants"]["alpha"]["ok"] == 4

        asyncio.run(scenario())
    finally:
        release.set()
        service.close()


def test_identical_canonical_keys_coalesce_into_one_execution():
    service = make_service()
    try:

        async def scenario():
            specs = [generous("alpha"), generous("beta")]
            async with FrontDoor(
                service,
                specs,
                batch_max=16,
                # a long window so every submission below lands in one
                # batch deterministically
                batch_window_s=0.2,
                max_concurrent_batches=1,
            ) as door:
                same = "collection()//a"
                respelled = "  collection()//a  "  # same canonical key
                other = "collection()//b"
                tasks = [
                    asyncio.create_task(door.submit("alpha", same)),
                    asyncio.create_task(door.submit("beta", same)),
                    asyncio.create_task(door.submit("alpha", respelled)),
                    asyncio.create_task(door.submit("beta", other)),
                ]
                results = await asyncio.gather(*tasks)
            # the three equivalent spellings share one Result object
            assert results[0] is results[1] is results[2]
            assert results[3] is not results[0]
            counters = door.stats()["counters"]
            assert counters["service.frontdoor.executions"] == 2
            assert counters["service.frontdoor.coalesced"] == 2
            assert counters["service.frontdoor.batches"] == 1

        asyncio.run(scenario())
    finally:
        service.close()


def test_compile_errors_resolve_only_the_bad_request():
    service = make_service()
    try:

        async def scenario():
            async with FrontDoor(service, [generous("alpha")]) as door:
                good = asyncio.create_task(
                    door.submit("alpha", "collection()//a")
                )
                with pytest.raises(Exception):  # noqa: B017 - any typed compile error
                    await door.submit("alpha", "collection()//a[[[")
                assert len(await good) == 4
                stats = door.stats()
            assert stats["tenants"]["alpha"]["ok"] == 1
            assert sum(stats["tenants"]["alpha"]["errors"].values()) == 1

        asyncio.run(scenario())
    finally:
        service.close()


def test_working_set_requires_process_executor():
    service = make_service()
    try:
        with pytest.raises(ValueError, match="process"):
            FrontDoor(
                service, [generous("alpha")], working_set_bytes=1 << 20
            )
    finally:
        service.close()


def test_eviction_under_concurrent_queries_stays_byte_identical():
    """Satellite 5: a 1-byte working-set budget forces every resident
    shard payload out after every batch; queries racing the evictions
    must still serialize byte-identically to a serial processor, and
    the eviction/re-attach ledger must balance."""
    reference = XQueryProcessor()
    for text, uri in DOCS:
        reference.load(text, uri)
    queries = ["collection()//a", "collection()//b"]
    expected = {
        query: reference.serialize(reference.execute(query))
        for query in queries
    }

    service = make_service(executor="process")
    try:

        async def scenario():
            specs = [generous("alpha"), generous("beta")]
            async with FrontDoor(
                service,
                specs,
                batch_max=4,
                batch_window_s=0.0,
                working_set_bytes=1,
            ) as door:
                for _ in range(3):
                    results = await asyncio.gather(
                        *(
                            door.submit(tenant, query)
                            for tenant in ("alpha", "beta")
                            for query in queries
                        )
                    )
                    flat = [
                        (tenant, query)
                        for tenant in ("alpha", "beta")
                        for query in queries
                    ]
                    for (tenant, query), result in zip(flat, results):
                        assert service.serialize(result) == expected[query]
            # counters merge when a batch's worker thread finishes —
            # snapshot only after close() drained the in-flight batches
            stats = door.stats()
            working_set = stats["working_set"]
            assert working_set["evictions"] >= 1
            # every eviction either re-attached (the shard was queried
            # again) or is still pending — nothing is lost
            assert working_set["evictions"] == working_set[
                "reattached"
            ] + len(working_set["pending_reattach"])
            counters = stats["counters"]
            assert (
                counters.get("service.frontdoor.evictions", 0)
                == working_set["evictions"]
            )
            assert (
                counters.get("service.frontdoor.reattach", 0)
                == working_set["reattached"]
            )
            assert working_set["reattached"] >= 1

        asyncio.run(scenario())
    finally:
        service.close()


def test_per_tenant_latency_and_counters_accumulate():
    service = make_service()
    try:

        async def scenario():
            async with FrontDoor(service, [generous("alpha")]) as door:
                for _ in range(5):
                    await door.submit("alpha", "collection()//a")
                stats = door.stats()
            alpha = stats["tenants"]["alpha"]
            assert alpha["ok"] == 5
            assert alpha["latency_ms"]["count"] == 5
            assert alpha["latency_ms"]["p50"] > 0
            assert alpha["ledger_balanced"]
            assert stats["queue"]["alpha"]["served"] == 5

        asyncio.run(scenario())
    finally:
        service.close()
