"""Tests for the shared-cache SQLite backend pool."""

from __future__ import annotations

import threading

import pytest

from repro.infoset.encoding import shred
from repro.service import BackendPool

XML = "<a><b>1</b><b>2</b></a>"


@pytest.fixture()
def table():
    return shred(XML, "a.xml")


def test_same_thread_reuses_connection(table):
    with BackendPool(table) as pool:
        assert pool.backend() is pool.backend()
        assert pool.connection_count == 2  # primary + this thread


def test_threads_get_distinct_connections_to_same_data(table):
    with BackendPool(table) as pool:
        main_backend = pool.backend()
        seen: dict[str, object] = {}

        def worker() -> None:
            backend = pool.backend()
            seen["backend"] = backend
            seen["rows"] = backend.run_raw("SELECT COUNT(*) FROM doc")[0][0]

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["backend"] is not main_backend
        # the worker's connection sees the data the primary loaded
        assert seen["rows"] == len(table)


def test_two_pools_are_isolated():
    pool_a = BackendPool(shred("<a><only_a/></a>", "a.xml"))
    pool_b = BackendPool(shred("<b><only_b/></b>", "b.xml"))
    try:
        names_a = {
            row[0]
            for row in pool_a.backend().run_raw(
                "SELECT name FROM doc WHERE name IS NOT NULL"
            )
        }
        assert "only_a" in names_a and "only_b" not in names_a
    finally:
        pool_a.close()
        pool_b.close()


def test_closed_pool_refuses_new_backends(table):
    pool = BackendPool(table)
    pool.close()
    with pytest.raises(RuntimeError):
        pool.backend()
    with pytest.raises(RuntimeError):
        pool.lease()
    pool.close()  # idempotent


def test_retire_waits_for_leases(table):
    pool = BackendPool(table)
    pool.backend()
    pool.lease()
    pool.retire()
    # still usable: the in-flight lease keeps every connection open
    rows = pool.backend().run_raw("SELECT COUNT(*) FROM doc")[0][0]
    assert rows == len(table)
    pool.release()  # last lease out -> pool closes itself
    with pytest.raises(RuntimeError):
        pool.lease()


def test_retire_idle_pool_closes_immediately(table):
    pool = BackendPool(table)
    pool.retire()
    with pytest.raises(RuntimeError):
        pool.backend()
