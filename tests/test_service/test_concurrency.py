"""Concurrency stress: many threads, many queries, no cross-talk.

The differential-consistency bar of the whole repository, applied to
the service layer: whatever mix of threads and cached plans serves a
query, the result must equal the reference interpreter's.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.infoset import DocumentStore
from repro.service import QueryService
from repro.workloads import XMARK_QUERIES, XMarkConfig, generate_xmark

THREADS = 8
QUERIES_PER_THREAD = 56
QUERY_MIX = ("X1", "X5", "X13", "X17", "X19")


def _xmark_service(workers: int = THREADS) -> QueryService:
    store = DocumentStore()
    store.load_tree(generate_xmark(XMarkConfig(factor=0.002)))
    return QueryService(store=store, default_doc="auction.xml", workers=workers)


def test_stress_no_cross_talk_and_interpreter_consistency():
    with _xmark_service() as service:
        texts = {name: XMARK_QUERIES[name].text for name in QUERY_MIX}
        # ground truth, computed single-threaded before the storm
        reference = {
            name: service.execute(text, engine="interpreter")
            for name, text in texts.items()
        }
        mismatches: list[str] = []
        barrier = threading.Barrier(THREADS)

        def worker(seed: int) -> None:
            barrier.wait()  # maximal overlap
            names = list(texts)
            for i in range(QUERIES_PER_THREAD):
                name = names[(seed + i) % len(names)]
                engine = (
                    "joingraph-sql" if (seed + i) % 3 else "stacked-sql"
                )
                items = service.execute(texts[name], engine=engine)
                if items != reference[name]:
                    mismatches.append(f"{name}/{engine} (thread {seed})")

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not mismatches, mismatches[:5]
        stats = service.cache.stats()
        assert stats["hits"] + stats["misses"] >= THREADS * QUERIES_PER_THREAD
        # every distinct (query, engine-independent) artifact compiled once
        assert stats["misses"] == len(QUERY_MIX)


def test_run_many_stress_matches_interpreter():
    with _xmark_service(workers=THREADS) as service:
        text = XMARK_QUERIES["X8"].text
        reference = service.execute(text, engine="interpreter")
        results = service.run_many([text] * 64)
        assert all(items == reference for items in results)


def test_concurrent_submissions_from_many_client_threads():
    """Clients hammering ``submit`` from their own threads (two layers
    of concurrency: client threads + the service's worker pool)."""
    with _xmark_service(workers=4) as service:
        texts = [XMARK_QUERIES[name].text for name in QUERY_MIX]
        reference = [service.execute(t, engine="interpreter") for t in texts]

        def client(seed: int) -> bool:
            futures = [
                service.submit(texts[(seed + i) % len(texts)])
                for i in range(16)
            ]
            return all(
                future.result() == reference[(seed + i) % len(texts)]
                for i, future in enumerate(futures)
            )

        with ThreadPoolExecutor(max_workers=6) as clients:
            assert all(clients.map(client, range(6)))


def test_load_during_traffic_is_graceful():
    """A document load mid-traffic retires the pool; queries already
    in flight drain against the old snapshot, later ones see the new
    version — and nothing crashes or cross-talks."""
    with _xmark_service(workers=4) as service:
        text = XMARK_QUERIES["X13"].text
        reference = service.execute(text, engine="interpreter")
        futures = [service.submit(text) for _ in range(32)]
        service.load("<extra><item/></extra>", "extra.xml")
        futures += [service.submit(text) for _ in range(32)]
        for future in futures:
            assert future.result() == reference
        # the artifact was recompiled for the new store version
        assert service.cache.stats()["misses"] >= 2
