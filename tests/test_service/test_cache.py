"""Unit tests for the compiled-plan LRU cache."""

from __future__ import annotations

import pytest

from repro.obs import metrics_scope
from repro.service import CacheKey, CacheStats, CompiledQueryCache, TierStats


def key(query: str, version: int = 0, rules: frozenset[str] = frozenset()) -> CacheKey:
    return CacheKey(
        query=query,
        default_doc="auction.xml",
        serialize_step=False,
        disabled_rules=rules,
        store_version=version,
    )


def test_miss_then_hit():
    cache = CompiledQueryCache(capacity=4)
    assert cache.get(key("q1")) is None
    cache.put(key("q1"), "artifact")
    assert cache.get(key("q1")) == "artifact"
    assert cache.stats() == {
        "capacity": 4,
        "size": 1,
        "hits": 1,
        "misses": 1,
        "canonical_hits": 0,
        "evictions": 0,
    }


def test_lru_eviction_order():
    cache = CompiledQueryCache(capacity=2)
    cache.put(key("a"), 1)
    cache.put(key("b"), 2)
    assert cache.get(key("a")) == 1  # refresh a; b is now LRU
    cache.put(key("c"), 3)
    assert cache.get(key("b")) is None
    assert cache.get(key("a")) == 1
    assert cache.get(key("c")) == 3
    assert cache.evictions == 1


def test_peek_counts_nothing_and_keeps_order():
    cache = CompiledQueryCache(capacity=2)
    cache.put(key("a"), 1)
    cache.put(key("b"), 2)
    assert cache.peek(key("a")) == 1  # no LRU refresh
    assert cache.peek(key("missing")) is None
    cache.put(key("c"), 3)  # evicts a (peek did not refresh it)
    assert cache.peek(key("a")) is None
    assert cache.hits == 0 and cache.misses == 0


def test_key_discriminates_every_component():
    base = key("q")
    assert base != key("q2")
    assert base != key("q", version=1)
    assert base != key("q", rules=frozenset({"17"}))
    assert base != base._replace(serialize_step=True)
    assert base != base._replace(default_doc=None)


def test_invalidate_by_version_keeps_current_entries():
    cache = CompiledQueryCache(capacity=8)
    cache.put(key("a", version=1), 1)
    cache.put(key("b", version=2), 2)
    cache.put(key("c", version=2), 3)
    assert cache.invalidate(store_version=2) == 1
    assert len(cache) == 2
    assert cache.peek(key("b", version=2)) == 2
    assert cache.invalidate() == 2
    assert len(cache) == 0


def test_metrics_counters_flow():
    with metrics_scope() as metrics:
        cache = CompiledQueryCache(capacity=1)
        cache.get(key("a"))
        cache.put(key("a"), 1)
        cache.get(key("a"))
        cache.put(key("b"), 2)  # evicts a
        cache.invalidate()
    counters = metrics.snapshot()["counters"]
    assert counters["service.cache.misses"] == 1
    assert counters["service.cache.hits"] == 1
    assert counters["service.cache.evictions"] == 1
    assert counters["service.cache.invalidated"] == 1
    assert metrics.snapshot()["gauges"]["service.cache.size"] == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        CompiledQueryCache(capacity=0)


# -- the typed CacheStats surface -------------------------------------------


def test_cache_stats_to_dict_carries_tiers_and_deprecated_aliases():
    stats = CacheStats(
        capacity=16,
        size=3,
        exact=TierStats(hits=5, misses=2, evictions=1),
        canonical=TierStats(hits=4, misses=0),
        view=TierStats(hits=3, misses=1, bytes=128),
    )
    snapshot = stats.to_dict()
    assert snapshot["capacity"] == 16
    assert snapshot["size"] == 3
    assert snapshot["tiers"]["exact"]["hits"] == 5
    assert snapshot["tiers"]["canonical"]["hits"] == 4
    assert snapshot["tiers"]["view"] == {
        "hits": 3,
        "misses": 1,
        "evictions": 0,
        "bytes": 128,
    }
    # the pre-1.2 flat keys survive as deprecated aliases (one release)
    assert snapshot["hits"] == 5
    assert snapshot["misses"] == 2
    assert snapshot["canonical_hits"] == 4
    assert snapshot["evictions"] == 1


def test_cache_stats_is_immutable():
    stats = CacheStats(
        capacity=1,
        size=0,
        exact=TierStats(),
        canonical=TierStats(),
        view=TierStats(),
    )
    with pytest.raises(AttributeError):
        stats.size = 5  # type: ignore[misc]
