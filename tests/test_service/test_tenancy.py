"""Property tests for the multi-tenant admission primitives.

The token bucket and the weighted-fair queue are the two pure
scheduling components under the front door; their contracts are
stated in :mod:`repro.service.tenancy` and checked here with
hypothesis-driven schedules:

* quota is never exceeded over *any* observation window;
* a granted request always consumes balance (conservation);
* the fair queue never serves more than was offered, never exceeds a
  lane's backlog cap, and never starves a backlogged tenant;
* while every lane stays backlogged, service counts track the
  configured weights.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.tenancy import TenantSpec, TokenBucket, WeightedFairQueue


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- TenantSpec ---------------------------------------------------------


def test_tenant_spec_validation():
    spec = TenantSpec("alpha")
    assert spec.rate_qps > 0 and spec.burst >= 1
    with pytest.raises(ValueError):
        TenantSpec("")
    with pytest.raises(ValueError):
        TenantSpec("t", rate_qps=0)
    with pytest.raises(ValueError):
        TenantSpec("t", burst=0)
    with pytest.raises(ValueError):
        TenantSpec("t", weight=-1)
    with pytest.raises(ValueError):
        TenantSpec("t", max_backlog=0)


# -- TokenBucket --------------------------------------------------------

bucket_rates = st.floats(min_value=0.5, max_value=100.0)
bucket_bursts = st.floats(min_value=1.0, max_value=50.0)
#: (gap seconds, tokens requested) schedules
acquire_schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.1, max_value=5.0),
    ),
    min_size=1,
    max_size=60,
)


@given(bucket_rates, bucket_bursts, acquire_schedules)
@settings(max_examples=120)
def test_token_bucket_quota_never_exceeded_over_any_window(
    rate, burst, schedule
):
    """Over every window [t_i, t_j] the granted tokens are bounded by
    ``burst + rate * (t_j - t_i)`` — the defining quota invariant."""
    clock = FakeClock()
    bucket = TokenBucket(rate, burst, clock=clock)
    grants: list[tuple[float, float]] = []  # (time, tokens granted)
    for gap, tokens in schedule:
        clock.advance(gap)
        if bucket.try_acquire(tokens):
            grants.append((clock.now, tokens))
    for i in range(len(grants)):
        total = 0.0
        for j in range(i, len(grants)):
            total += grants[j][1]
            window = grants[j][0] - grants[i][0]
            # the window opens just before grant i: that grant may
            # draw on a full burst, later ones only on refill
            assert total <= burst + rate * window + 1e-6


@given(bucket_rates, bucket_bursts, acquire_schedules)
@settings(max_examples=120)
def test_token_bucket_conservation_and_balance(rate, burst, schedule):
    """granted + denied == attempts, and the balance never exceeds the
    burst capacity nor goes (meaningfully) negative."""
    clock = FakeClock()
    bucket = TokenBucket(rate, burst, clock=clock)
    attempts = 0
    for gap, tokens in schedule:
        clock.advance(gap)
        bucket.try_acquire(tokens)
        attempts += 1
        assert -1e-6 <= bucket.available <= burst + 1e-6
    assert bucket.granted + bucket.denied == attempts


@given(bucket_rates, st.floats(min_value=1.0, max_value=20.0))
@settings(max_examples=60)
def test_token_bucket_retry_after_is_honest(rate, burst):
    """After draining the bucket, waiting exactly ``retry_after_s``
    makes the next unit acquire succeed — and not waiting keeps it
    failing."""
    clock = FakeClock()
    bucket = TokenBucket(rate, burst, clock=clock)
    while bucket.try_acquire():
        pass
    hint = bucket.retry_after_s()
    assert hint > 0
    assert not bucket.try_acquire()
    clock.advance(hint + 1e-6)
    assert bucket.try_acquire()


def test_token_bucket_rejects_bad_arguments():
    with pytest.raises(ValueError):
        TokenBucket(0, 1)
    with pytest.raises(ValueError):
        TokenBucket(1, 0.5)
    bucket = TokenBucket(1, 1, clock=FakeClock())
    with pytest.raises(ValueError):
        bucket.try_acquire(0)


# -- WeightedFairQueue --------------------------------------------------

lane_configs = st.lists(
    st.tuples(
        st.floats(min_value=0.25, max_value=8.0),  # weight
        st.integers(min_value=1, max_value=12),  # max_backlog
    ),
    min_size=1,
    max_size=6,
)
#: interleaved operations: (tenant index, op) where op True=offer
queue_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.booleans()),
    min_size=1,
    max_size=200,
)


@given(lane_configs, queue_ops)
@settings(max_examples=150)
def test_wfq_conservation_and_backlog_caps(lanes, ops):
    """served <= offered (globally and per lane), every lane honors
    its backlog cap, and take() answers None exactly when idle."""
    queue = WeightedFairQueue()
    names = [f"t{i}" for i in range(len(lanes))]
    for name, (weight, cap) in zip(names, lanes):
        queue.register(name, weight=weight, max_backlog=cap)
    offered = dict.fromkeys(names, 0)
    served = dict.fromkeys(names, 0)
    for tenant_index, is_offer in ops:
        name = names[tenant_index % len(names)]
        if is_offer:
            cap = lanes[names.index(name)][1]
            before = queue.backlog(name)
            accepted = queue.offer(name, object())
            assert accepted == (before < cap)
            if accepted:
                offered[name] += 1
            else:
                assert queue.backlog(name) == cap
        else:
            before = len(queue)
            taken = queue.take()
            if before == 0:
                assert taken is None
            else:
                assert taken is not None
                served[taken[0]] += 1
    for name in names:
        assert served[name] <= offered[name]
        assert queue.backlog(name) == offered[name] - served[name]
    assert len(queue) == sum(offered.values()) - sum(served.values())
    stats = queue.stats()
    for name in names:
        assert stats[name]["served"] == served[name]


@given(lane_configs)
@settings(max_examples=80)
def test_wfq_no_starvation_while_backlogged(lanes):
    """With every lane kept backlogged, the gap between two serves of
    the same tenant never exceeds one full ring rotation — i.e. the
    total number of credits a rotation can hand out."""
    queue = WeightedFairQueue()
    names = [f"t{i}" for i in range(len(lanes))]
    for name, (weight, _) in zip(names, lanes):
        queue.register(name, weight=weight, max_backlog=10_000)
    min_weight = min(weight for weight, _ in lanes)
    rotation = sum(
        math.ceil(weight / min_weight) for weight, _ in lanes
    )
    for name in names:
        for _ in range(4):
            assert queue.offer(name, object())
    last_served = dict.fromkeys(names, 0)
    takes = max(200, 4 * rotation)
    for step in range(1, takes + 1):
        taken = queue.take()
        assert taken is not None
        name = taken[0]
        gap = step - last_served[name]
        assert gap <= rotation + len(names), (
            f"{name} starved for {gap} takes (rotation bound {rotation})"
        )
        last_served[name] = step
        # keep every lane backlogged so the bound applies to all
        assert queue.offer(name, object())


@given(
    st.lists(
        st.integers(min_value=1, max_value=6), min_size=2, max_size=5
    )
)
@settings(max_examples=60)
def test_wfq_shares_track_weights_under_saturation(weights):
    """While all lanes stay backlogged, per-tenant service converges
    to the weight ratios (DRR lag is bounded by one quantum per
    rotation, so many rotations drive relative error down)."""
    queue = WeightedFairQueue()
    names = [f"t{i}" for i in range(len(weights))]
    for name, weight in zip(names, weights):
        queue.register(name, weight=float(weight), max_backlog=100_000)
    for name in names:
        for _ in range(8):
            assert queue.offer(name, object())
    served = dict.fromkeys(names, 0)
    takes = 200 * sum(weights)
    for _ in range(takes):
        taken = queue.take()
        assert taken is not None
        served[taken[0]] += 1
        assert queue.offer(taken[0], object())
    total_weight = sum(weights)
    for name, weight in zip(names, weights):
        expected = takes * weight / total_weight
        # DRR guarantees a per-rotation bound; allow a generous slack
        # of one quantum per lane plus rounding
        assert abs(served[name] - expected) <= 2 * max(weights) + 2, (
            f"{name}: served {served[name]}, expected ~{expected:.0f}"
        )


def test_wfq_register_validation():
    queue = WeightedFairQueue()
    queue.register("a")
    with pytest.raises(ValueError):
        queue.register("a")
    with pytest.raises(ValueError):
        queue.register("b", weight=0)
    with pytest.raises(ValueError):
        queue.register("c", max_backlog=0)
    assert queue.take() is None
