"""The stable public facade: ``repro.connect()`` / :class:`Session`,
the typed :class:`Result` / :class:`Serialized` return shapes, the
:class:`Engine` enum, the deprecation shims, and the promise that the
README quickstart runs exactly as written."""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

import repro
from repro import Engine, Result, Serialized, Session
from repro.result import legacy_items

AUCTION = (
    '<site><open_auction id="1"><initial>15</initial>'
    "<bidder><time>18:43</time><increase>4.20</increase></bidder>"
    "</open_auction><closed_auction><price>620</price>"
    "</closed_auction></site>"
)

QUERY = 'doc("auction.xml")//open_auction[bidder]/initial'


@pytest.fixture()
def session():
    with repro.connect() as session:
        yield session.load(AUCTION, "auction.xml")


@pytest.fixture()
def sharded():
    with repro.connect(shards=3) as session:
        for i in range(6):
            session.load(AUCTION, f"auction{i}.xml")
        yield session


# -- connect ---------------------------------------------------------------


def test_connect_defaults_to_single_backend(session):
    assert isinstance(session, Session)
    assert session.shards == 1
    assert session.documents == ["auction.xml"]
    assert "shards=1" in repr(session)


def test_connect_rejects_nonpositive_shards():
    with pytest.raises(ValueError):
        repro.connect(shards=0)


def test_load_chains(tmp_path):
    with repro.connect() as session:
        result = session.load(AUCTION, "auction.xml").execute(QUERY)
        assert len(result) == 1


def test_single_and_sharded_sessions_agree():
    query = 'collection()//open_auction[bidder]/initial'
    with repro.connect() as single, repro.connect(shards=3) as sharded:
        for i in range(6):
            text = AUCTION
            single.load(text, f"auction{i}.xml")
            sharded.load(text, f"auction{i}.xml")
        expected = single.execute(query)
        result = sharded.execute(query)
        assert list(result) == list(expected)
        assert sharded.serialize(result) == single.serialize(expected)
        assert result.serialize() == expected.serialize()
        assert sharded.run(query) == single.run(query)


# -- the Result shape ------------------------------------------------------


def test_execute_returns_typed_result(session):
    result = session.execute(QUERY)
    assert isinstance(result, Result)
    assert result.engine is Engine.JOINGRAPH_SQL
    assert result.shards == 1
    assert result.timings["execute_ns"] > 0
    assert result.items == list(result)
    assert result.serialize() == "<initial>15</initial>"


def test_result_shape_is_identical_across_serving_stacks(session, sharded):
    single = session.execute(QUERY)
    scattered = sharded.execute('collection()//open_auction/initial')
    for result in (single, scattered):
        assert isinstance(result, Result)
        assert isinstance(result.engine, Engine)
        assert "execute_ns" in result.timings
        assert isinstance(result.serialize(), str)
    assert scattered.shards == sharded.shards


def test_result_still_is_the_bare_list(session):
    result = session.execute(QUERY)
    assert isinstance(result, list)
    assert result == list(result)  # old equality checks keep passing
    assert result[0] == result.items[0]


def test_run_returns_serialized_string(session):
    out = session.run(QUERY)
    assert isinstance(out, Serialized)
    assert isinstance(out, str)  # old substring tests keep passing
    assert out == "<initial>15</initial>"
    assert isinstance(out.result, Result)
    assert out.result.engine is Engine.JOINGRAPH_SQL


def test_run_many_preserves_submission_order(session):
    results = session.run_many([QUERY, 'doc("auction.xml")//price'])
    assert [session.serialize(r) for r in results] == [
        "<initial>15</initial>",
        "<price>620</price>",
    ]


def test_bare_result_has_no_serializer():
    with pytest.raises(TypeError):
        Result([1, 2]).serialize()


def test_legacy_items_shim_warns(session):
    result = session.execute(QUERY)
    with pytest.warns(DeprecationWarning):
        items = legacy_items(result)
    assert items == list(result)
    assert type(items) is list


# -- the Engine enum -------------------------------------------------------


def test_engine_normalization():
    assert Engine.of("joingraph-sql") is Engine.JOINGRAPH_SQL
    assert Engine.of(Engine.INTERPRETER) is Engine.INTERPRETER
    with pytest.raises(ValueError):
        Engine.of("quantum")


def test_engine_is_wire_compatible():
    assert Engine.JOINGRAPH_SQL == "joingraph-sql"
    assert str(Engine.STACKED_SQL) == "stacked-sql"
    assert f"{Engine.INTERPRETER}" == "interpreter"
    assert json.dumps(Engine.JOINGRAPH_SQL) == '"joingraph-sql"'


def test_every_entry_point_accepts_enum_and_string(session):
    for engine in Engine:
        by_enum = session.execute(QUERY, engine)
        by_str = session.execute(QUERY, engine.value)
        assert list(by_enum) == list(by_str)
        assert by_enum.engine is by_str.engine is engine


# -- the package surface ---------------------------------------------------


def test_public_surface_is_sorted_and_importable():
    assert list(repro.__all__) == sorted(repro.__all__)
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_stats_are_json_ready(session, sharded):
    json.dumps(session.stats())
    sharded_stats = sharded.stats()
    json.dumps(sharded_stats)
    assert sharded_stats["collection"]["shards"] == 3


# -- the README promise ----------------------------------------------------


def _readme_blocks() -> list[str]:
    readme = (Path(__file__).parents[2] / "README.md").read_text()
    return re.findall(r"```python\n(.*?)```", readme, flags=re.S)


def test_readme_quickstart_runs_as_written(tmp_path, monkeypatch, capsys):
    blocks = [b for b in _readme_blocks() if "repro.connect(" in b]
    assert blocks, "README quickstart must use repro.connect()"
    (tmp_path / "auction.xml").write_text(AUCTION)
    monkeypatch.chdir(tmp_path)
    exec(compile(blocks[0], "<README quickstart>", "exec"), {})
    out = capsys.readouterr().out
    assert "<open_auction" in out
    assert "joingraph-sql 1" in out
    assert "<initial>15</initial>" in out


def test_readme_pipeline_block_runs_as_written(tmp_path, monkeypatch, capsys):
    blocks = [b for b in _readme_blocks() if "XQueryProcessor()" in b]
    assert blocks, "README must keep the pipeline-layer example"
    (tmp_path / "auction.xml").write_text(AUCTION)
    monkeypatch.chdir(tmp_path)
    exec(compile(blocks[0], "<README pipeline>", "exec"), {})
    out = capsys.readouterr().out
    assert "SELECT DISTINCT" in out
    assert "WITH " in out
