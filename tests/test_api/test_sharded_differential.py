"""Sharded-vs-serial differential sweep over generated queries.

Grammar v3's collection-source mode generates queries rooted at
``collection()``, ``collection("glob")`` subsets, and ``doc()``
references to corpus members.  Every query must produce the identical
item sequence and serialization through the sharded scatter-gather
session and through a bare serial processor over the combined store —
whether the sharded side scatters, routes, or falls back to serial is
an implementation detail the answer must not depend on.

The sweep runs once per shard executor (``thread`` and ``process``):
the process mode must be byte-identical too — worker processes
execute pre-lowered shipped SQL over a zero-copy attach of the shard
image, and any divergence there is a marshalling or staleness bug.

``REPRO_API_DIFF_COUNT`` scales the sweep (default 100 queries).
"""

from __future__ import annotations

import os
import random

import pytest

import repro
from repro.errors import ReproError
from repro.pipeline import XQueryProcessor
from repro.store import Collection
from tests.genquery import GRAMMAR_VERSION, QueryGenerator, random_document

COUNT = int(os.environ.get("REPRO_API_DIFF_COUNT", "100"))
SHARDS = 3
URIS = tuple(f"c{i}.xml" for i in range(6))
ENGINES = ("joingraph-sql", "stacked-sql")
CORPUS_SEED = 2026
QUERY_SEED = 99


def _corpus() -> list[tuple[str, str]]:
    rng = random.Random(CORPUS_SEED)
    return [(random_document(rng), uri) for uri in URIS]


@pytest.fixture(scope="module", params=("thread", "process"))
def sharded(request):
    with repro.connect(
        shards=SHARDS, default_doc=URIS[0], executor=request.param
    ) as session:
        for text, uri in _corpus():
            session.load(text, uri)
        yield session


@pytest.fixture(scope="module")
def serial():
    collection = Collection(1)
    for text, uri in _corpus():
        collection.load(text, uri)
    return XQueryProcessor(
        store=collection.combined_store(),
        default_doc=URIS[0],
        collections=collection.resolve,
    )


def test_generated_collection_queries_agree(sharded, serial):
    assert GRAMMAR_VERSION == 3
    generator = QueryGenerator(
        random.Random(QUERY_SEED), uri=URIS[0], collection=URIS
    )
    scattered = 0
    nonempty = 0
    for index in range(COUNT):
        query = generator.query()
        for engine in ENGINES:
            try:
                expected = serial.execute(query, engine)
            except ReproError as error:
                # a compile-side limitation must hit both stacks the
                # same way — the sharded path may not "fix" (or worsen)
                # what the serial pipeline rejects
                with pytest.raises(type(error)):
                    sharded.execute(query, engine)
                continue
            result = sharded.execute(query, engine)
            context = f"seed={QUERY_SEED} #{index} [{engine}]: {query}"
            assert list(result) == list(expected), context
            assert sharded.serialize(result) == serial.serialize(expected), (
                context
            )
            scattered += result.shards > 1
            nonempty += bool(result)
    # the sweep must actually exercise the fan-out and produce answers,
    # or the agreement above proves nothing
    assert scattered > 0
    assert nonempty > 0
