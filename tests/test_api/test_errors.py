"""The consolidated error hierarchy: every public exception inherits
:class:`ReproError` and carries a stable machine-readable ``code``
(``repro.<subsystem>[.<condition>]``), and the old import path for
:class:`WorkerCrash` keeps working for one release behind a
:class:`DeprecationWarning` shim.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import errors

PUBLIC_ERRORS = [
    errors.XMLParseError,
    errors.XQuerySyntaxError,
    errors.XQueryTypeError,
    errors.CompileError,
    errors.RewriteError,
    errors.SanitizerError,
    errors.AnalysisError,
    errors.CodegenError,
    errors.PlanError,
    errors.DocumentError,
    errors.ServiceError,
    errors.DeadlineExceeded,
    errors.ServiceOverloaded,
    errors.QuotaExceeded,
    errors.CircuitOpenError,
    errors.BackendUnavailable,
    errors.PoolRetiredError,
    errors.WorkerCrash,
]


def test_every_public_error_inherits_repro_error():
    for cls in PUBLIC_ERRORS:
        assert issubclass(cls, errors.ReproError), cls.__name__


def test_every_public_error_has_a_stable_dotted_code():
    for cls in PUBLIC_ERRORS:
        code = cls.code
        assert isinstance(code, str) and code.startswith("repro."), (
            f"{cls.__name__} has code {code!r}"
        )
        assert code != errors.ReproError.code, (
            f"{cls.__name__} still carries the base-class code"
        )


def test_codes_are_unique_across_the_hierarchy():
    codes = [cls.code for cls in PUBLIC_ERRORS]
    assert len(codes) == len(set(codes))


def test_instances_carry_the_class_code():
    assert errors.DeadlineExceeded("late").code == "repro.service.deadline"
    assert errors.WorkerCrash("gone").code == "repro.service.worker_crash"


def test_sanitizer_error_refines_the_class_code_per_instance():
    """SanitizerError instances override the class code with the JGI
    diagnostic code of the specific violated invariant."""
    assert errors.SanitizerError.code == "repro.rewrite.sanitizer"
    error = errors.SanitizerError("step diverged", "JGI031", "(7b)")
    assert error.code == "JGI031"
    assert error.rule == "(7b)"


def test_public_surface_reexports_the_hierarchy():
    for cls in PUBLIC_ERRORS + [errors.ReproError]:
        assert getattr(repro, cls.__name__) is cls


def test_worker_crash_old_import_path_warns():
    from repro.service import procpool

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with pytest.raises(DeprecationWarning):
            procpool.WorkerCrash
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shimmed = procpool.WorkerCrash
    assert shimmed is errors.WorkerCrash
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )


def test_caught_as_repro_error():
    with pytest.raises(errors.ReproError) as excinfo:
        raise errors.QuotaExceeded("tenant over budget")
    assert excinfo.value.code == "repro.service.quota"
