"""One validation test per versioned JSON document the project emits.

Every machine-readable artifact carries a ``schema`` stamp
(``repro.<family>/<version>``); these tests pin the stamp and the
structural contract of each document, and check that ``docs/schemas.md``
documents every stamp we emit.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

SCHEMAS = (
    "repro.bench.table9/v3",
    "repro.bench.collection/v3",
    "repro.service.bench/v4",
    "repro.faults.campaign/v3",
    "repro.obs.metrics/v1",
    "repro.obs.flight/v1",
    "repro.bench.soak/v1",
)

_LATENCY_KEYS = {"count", "mean", "p50", "p90", "p95", "p99", "max"}


def _json_ready(doc) -> None:
    text = json.dumps(doc)
    assert "Infinity" not in text and "NaN" not in text


# -- repro.bench.table9/v3 -------------------------------------------------


def test_bench_table9_v3():
    from repro.bench.harness import EngineRun, table9_json

    run = EngineRun(
        query="Q1", engine="joingraph-sql", seconds=0.01,
        result_size=5, correct=True, phases={"execute": 0.01},
    )
    doc = table9_json([run], shards=4, xmark_factor=0.002)
    assert doc["schema"] == "repro.bench.table9/v3"
    assert doc["shards"] == 4
    assert doc["metadata"] == {"xmark_factor": 0.002}
    [entry] = doc["runs"]
    assert set(entry) == {
        "query", "engine", "seconds", "result_size", "correct", "phases",
    }
    _json_ready(doc)


# -- repro.bench.collection/v3 ---------------------------------------------


def _check_collection_doc(doc: dict, executor: str) -> None:
    assert doc["schema"] == "repro.bench.collection/v3"
    meta = doc["metadata"]
    assert meta["documents"] == 2
    assert meta["quick"] is True
    assert meta["placement"] == "round-robin"
    assert meta["executor"] == executor
    assert meta["cpu_count"] >= 1
    assert doc["serial_baseline"]["seconds"] > 0
    assert set(doc["serial_baseline"]["latency_ms"]) == _LATENCY_KEYS
    assert doc["serial_baseline"]["latency_ms"]["count"] > 0
    assert [point["shards"] for point in doc["curve"]] == [1, 2]
    for point in doc["curve"]:
        assert point["seconds"] > 0
        # v3: every curve point carries the executor mode, whether the
        # fan-out dispatched in parallel, and its absolute throughput
        # and speedup (the fields v2 omitted)
        assert point["executor"] == executor
        assert isinstance(point["parallel"], bool)
        assert point["queries_per_second"] > 0
        assert math.isfinite(point["speedup"])
        assert point["speedup"] == point["speedup_vs_serial"]
        assert math.isfinite(point["speedup_vs_1_shard"])
        assert math.isfinite(point["speedup_vs_serial"])
        assert sum(point["documents_per_shard"]) == 2
        assert set(point["fanout"].values()) <= {1, point["shards"]}
        latency = point["latency_ms"]
        assert set(latency) == _LATENCY_KEYS
        assert latency["count"] > 0
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
    _json_ready(doc)


def test_bench_collection_v3():
    from repro.bench.collection import run_collection_bench

    doc = run_collection_bench(
        documents=2, factor=0.001, repeat=1, shards=(1, 2), quick=True
    )
    _check_collection_doc(doc, "thread")


def test_bench_collection_v3_process_executor():
    from repro.bench.collection import run_collection_bench

    doc = run_collection_bench(
        documents=2, factor=0.001, repeat=1, shards=(1, 2), quick=True,
        executor="process",
    )
    _check_collection_doc(doc, "process")


# -- repro.service.bench/v4 ------------------------------------------------


def test_service_bench_v4():
    from repro.service.bench import run_service_bench

    doc = run_service_bench(
        factor=0.001, repeat=2, workers=(1,), quick=True
    )
    assert doc["schema"] == "repro.service.bench/v4"
    assert doc["metadata"]["executor"] == "thread"
    assert doc["metadata"]["cpu_count"] >= 1
    assert doc["uncached_baseline"]["queries_per_second"] > 0
    assert doc["cached"]["cache"]["hits"] > 0
    assert [point["workers"] for point in doc["scaling"]] == [1]
    for mode in (doc["uncached_baseline"], doc["cached"], *doc["scaling"]):
        latency = mode["latency_ms"]
        assert set(latency) == _LATENCY_KEYS
        assert latency["count"] > 0
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
    for point in doc["scaling"]:
        assert point["executor"] == "thread"
    views = doc["views"]
    assert views["verified"] is True
    assert views["view_hits"] > 0
    assert views["view_hit_rate"] >= 0.30
    assert views["variant_view_rate"] > 0
    assert views["speedup_vs_full_compile"] > 0
    assert views["manager"]["admitted"] == views["templates"]
    overhead = doc["flight_overhead"]
    assert overhead["trials"] > 0
    assert overhead["disabled_seconds"] > 0
    assert overhead["enabled_seconds"] > 0
    assert math.isfinite(overhead["overhead_pct"])
    _json_ready(doc)


def test_service_bench_v4_process_executor():
    from repro.service.bench import run_service_bench

    doc = run_service_bench(
        factor=0.001, repeat=2, workers=(1, 2), quick=True,
        executor="process",
    )
    assert doc["schema"] == "repro.service.bench/v4"
    assert doc["metadata"]["executor"] == "process"
    assert [point["workers"] for point in doc["scaling"]] == [1, 2]
    for point in doc["scaling"]:
        assert point["executor"] == "process"
        assert point["queries_per_second"] > 0
        assert point["latency_ms"]["count"] > 0
    _json_ready(doc)


# -- repro.faults.campaign/v3 ----------------------------------------------


def _check_campaign(report: dict) -> None:
    assert report["schema"] == "repro.faults.campaign/v3"
    contract = report["contract"]
    assert contract["holds"] is True
    faults = report["faults"]
    assert faults["injected_total"] == faults["handled_total"]
    assert set(report["latency"]) == {"clean", "degraded", "surfaced"}
    for summary in report["latency"].values():
        assert set(summary) == _LATENCY_KEYS
    total = sum(summary["count"] for summary in report["latency"].values())
    assert total == report["calls"]
    slow_log = report["slow_log"]
    assert slow_log["complete"] is True
    assert slow_log["captured"] == slow_log["expected"]
    _json_ready(report)


def test_faults_campaign_v3_single_mode():
    from repro.faults.campaign import ChaosConfig, run_chaos_campaign

    report = run_chaos_campaign(
        ChaosConfig(
            seed=3, threads=2, queries_per_thread=3, rate=0.3,
            factor=0.001, stall_ms=100.0, deadline_s=5.0,
        )
    )
    assert report["mode"] == "single"
    assert report["config"]["shards"] == 1
    _check_campaign(report)


def test_faults_campaign_v3_sharded_mode():
    from repro.faults.campaign import ChaosConfig, run_chaos_campaign

    report = run_chaos_campaign(
        ChaosConfig(
            seed=11, threads=2, queries_per_thread=3, rate=0.25,
            factor=0.001, stall_ms=100.0, deadline_s=5.0,
            shards=2, documents=2,
        )
    )
    assert report["mode"] == "sharded"
    assert report["config"]["shards"] == 2
    assert report["outcomes"]["wrong"] == []
    _check_campaign(report)


# -- repro.obs.metrics/v1 --------------------------------------------------


def test_obs_metrics_v1():
    from repro.obs import MetricsRegistry, metrics_json

    metrics = MetricsRegistry()
    metrics.count("pipeline.compiles")
    metrics.observe("sql.run_ns", 1500)
    doc = metrics_json(metrics)
    assert doc["schema"] == "repro.obs.metrics/v1"
    assert doc["counters"]["pipeline.compiles"] == 1
    assert "gauges" in doc
    _json_ready(doc)


# -- repro.obs.flight/v1 ---------------------------------------------------


def test_obs_flight_v1():
    from repro.obs import validate_flight_snapshot
    from repro.obs.flight import FlightContext, FlightRecorder

    recorder = FlightRecorder(capacity=8, slow_capacity=4,
                              slow_threshold_s=0.001)
    for elapsed_ms in (0.1, 5.0):
        context = FlightContext()
        context.note_cache("exact")
        context.add_phase("sql", int(elapsed_ms * 1e6))
        context.note_rows(3)
        recorder.record(
            query_text="//item/name",
            engine="joingraph-sql",
            status="ok",
            context=context,
            elapsed_ns=int(elapsed_ms * 1e6),
        )
    snapshot = recorder.snapshot()
    assert snapshot["schema"] == "repro.obs.flight/v1"
    assert validate_flight_snapshot(snapshot) == []
    assert snapshot["counts"]["recorded"] == 2
    assert snapshot["counts"]["promoted"] == 1
    assert len(snapshot["records"]) == 2
    assert len(snapshot["slow"]) == 1
    _json_ready(snapshot)


def test_obs_flight_v1_live_service():
    import repro

    with repro.connect(slow_threshold_s=0.0) as session:
        session.load("<a><b>x</b></a>", "doc.xml")
        session.execute("//b")
        snapshot = session.service.flight.snapshot()
    from repro.obs import validate_flight_snapshot

    assert validate_flight_snapshot(snapshot) == []
    assert snapshot["counts"]["recorded"] == 1
    # threshold 0 promotes everything: the capture carries diagnostics
    [capture] = snapshot["slow"]
    assert capture["reason"] == "slow"
    assert capture["trace"]
    _json_ready(snapshot)


def test_validate_flight_snapshot_rejects_bad_documents():
    from repro.obs import validate_flight_snapshot

    assert validate_flight_snapshot({}) != []
    assert validate_flight_snapshot({"schema": "nope/v1"}) != []


# -- repro.bench.soak/v1 ---------------------------------------------------


def test_bench_soak_v1():
    from repro.workloads.soak import SoakConfig, run_soak

    report = run_soak(
        SoakConfig(
            duration_s=1.0,
            documents=2,
            factor=0.002,
            load_points=(1.0,),
            fault_rate=0.0,
            differential_rate=1.0,
            max_differential_samples=8,
        )
    )
    assert report["schema"] == "repro.bench.soak/v1"
    assert len(report["tenants"]) >= 3
    for profile in report["tenants"].values():
        assert profile["rate_qps"] > 0
        assert profile["weight"] > 0
        assert profile["templates"]
    [point] = report["curve"]
    assert point["multiplier"] == 1.0
    assert point["offered"] >= point["ok"]
    for tenant in point["per_tenant"].values():
        assert set(tenant["latency_ms"]) == _LATENCY_KEYS
        assert set(tenant["faults"]) == {
            "injected", "retried", "degraded", "surfaced",
        }
        assert tenant["ledger_balanced"] is True
        assert tenant["offered"] == (
            tenant["ok"]
            + tenant["rejected_quota"]
            + tenant["rejected_overload"]
            + sum(tenant["errors"].values())
        )
    assert set(report["knee"]) == {
        "multiplier", "goodput_qps", "goodput_ratio",
    }
    fairness = report["fairness"]
    assert 0.0 < fairness["index"] <= 1.0
    assert report["faults"]["enabled"] is False
    differential = report["differential"]
    assert differential["sampled"] >= 1
    assert differential["mismatches"] == []
    gates = report["gates"]
    assert set(gates) >= {
        "knee_found", "fairness_ok", "ledger_balanced",
        "differential_ok", "passed",
    }
    _json_ready(report)


# -- the catalog -----------------------------------------------------------


def test_docs_catalog_lists_every_schema():
    catalog = (Path(__file__).parents[2] / "docs" / "schemas.md").read_text()
    for schema in SCHEMAS:
        assert schema in catalog, f"docs/schemas.md must document {schema}"
