"""Tests for the native XSCAN evaluator (paper Section 4.2)."""

import pytest

from repro.purexml import NativeEvaluator, PureXMLEngine
from repro.purexml.xscan import node_typed_value, node_untyped_value
from repro.xmltree import parse_document

XML = """\
<site>
  <people>
    <person id="p0"><name>Ann</name></person>
    <person id="p1"><name>Bob</name></person>
  </people>
  <auctions>
    <auction><price>600</price><ref person="p0"/></auction>
    <auction><price>10</price><ref person="p1"/></auction>
  </auctions>
</site>
"""


@pytest.fixture(scope="module")
def evaluator():
    document = parse_document(XML, uri="site.xml")
    return NativeEvaluator({"site.xml": document}, default_doc="site.xml")


def tags(nodes):
    return [getattr(n, "tag", getattr(n, "name", None)) for n in nodes]


def test_child_and_descendant(evaluator):
    assert tags(evaluator.run("/site/people/person")) == ["person", "person"]
    assert len(evaluator.run("//person")) == 2
    assert len(evaluator.run("//name")) == 2


def test_attribute_axis(evaluator):
    ids = evaluator.run("//person/@id")
    assert [n.value for n in ids] == ["p0", "p1"]


def test_predicates(evaluator):
    assert len(evaluator.run('//person[@id = "p0"]')) == 1
    assert len(evaluator.run("//auction[price > 500]")) == 1
    assert len(evaluator.run("//auction[price > 5000]")) == 0
    assert len(evaluator.run("//person[name]")) == 2


def test_flwor_with_value_join(evaluator):
    query = (
        "for $a in //auction, $p in //person "
        'where $a/ref/@person = $p/@id and $a/price > 500 '
        "return $p/name"
    )
    result = evaluator.run(query)
    assert [n.string_value() for n in result] == ["Ann"]


def test_document_order_and_dedup(evaluator):
    # both name elements step to the same people element: dedup per step
    people = evaluator.run("//person/parent::*")
    assert tags(people) == ["people"]


def test_untyped_and_typed_values():
    document = parse_document("<a><b>15</b><c><d/><d/></c></a>", uri="u")
    b = document.root_element.children[0]
    c = document.root_element.children[1]
    assert node_untyped_value(b) == "15"
    assert node_typed_value(b) == 15.0
    # c has 2 nodes below: no value under the size <= 1 rule
    assert node_untyped_value(c) is None


def test_if_expression(evaluator):
    result = evaluator.run(
        "for $p in //person return if ($p/name) then $p else ()"
    )
    assert len(result) == 2


class TestSegmented:
    @pytest.fixture(scope="class")
    def engine(self):
        document = parse_document(XML, uri="site.xml")
        return PureXMLEngine(
            {"site.xml": document},
            segmented=True,
            cut_depth=2,
            patterns=("/site/people/person/@id",),
        )

    def test_segments_created(self, engine):
        assert engine.store.segment_count >= 4  # persons + auctions

    def test_pattern_index_lookup(self, engine):
        index = engine.store.indexes["/site/people/person/@id"]
        assert len(index.lookup("p0")) == 1
        assert index.lookup("nope") == []

    def test_indexed_point_query(self, engine):
        result = engine.run('/site/people/person[@id = "p1"]/name')
        assert [n.string_value() for n in result] == ["Bob"]

    def test_unindexed_path_scans_all_segments(self, engine):
        result = engine.run("/site/auctions/auction/price")
        assert len(result) == 2

    def test_descendant_query_on_segments(self, engine):
        assert len(engine.run("//person")) == 2

    def test_flwor_falls_back_to_full_evaluation(self, engine):
        result = engine.run(
            "for $p in //person return if ($p/name) then $p else ()"
        )
        assert len(result) == 2
