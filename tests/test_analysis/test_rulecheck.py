"""Per-step rewrite sanitizer.

Two kinds of evidence that the sanitizer earns its keep:

* **negative** — intentionally broken rules (patched into the engine
  for the duration of one test, never committed) are caught on their
  first application, with a ``SanitizerError`` naming the rule;
* **positive** — every rank rule (9)–(13) and δ/join rule (16)–(19) is
  individually applied to a plan shaped to trigger it, and the result
  passes the full checker *and* preserves the serialized result.
"""

from __future__ import annotations

import pytest

from repro.algebra import (
    Attach,
    Comparison,
    Cross,
    Join,
    LitTable,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
    col,
    lit,
    run_plan,
)
from repro.algebra.dagutils import parents_map, replace_node
from repro.algebra.ops import Operator
from repro.algebra.properties import infer_properties
from repro.analysis import PlanSanitizer, SanitizerError, check_plan, errors
from repro.analysis.invariants import prune_dead_refs
from repro.compiler import compile_core
from repro.infoset import DocumentStore
from repro.rewrite import engine as engine_mod
from repro.rewrite import isolate
from repro.rewrite import rules as R
from repro.rewrite.rules import RewriteContext
from repro.xquery import normalize, parse_xquery

XML = """\
<site>
  <a id="1"><b>1</b><c>2</c></a>
  <a id="2"><b>3</b><c>1</c></a>
  <a id="3"><b>2</b></a>
</site>
"""


@pytest.fixture()
def store() -> DocumentStore:
    s = DocumentStore()
    s.load(XML, "t.xml")
    return s


def compiled(store: DocumentStore, query: str):
    return compile_core(normalize(parse_xquery(query)), store)


# -- intentionally broken rules (the acceptance scenario) ---------------------


def _broken_select_scope(node: Operator, ctx: RewriteContext):
    """Rewrites any σ to reference a column its input does not have —
    a structural violation the checker must pin on this 'rule'."""
    if not isinstance(node, Select):
        return None
    bad = Select(node.child, node.pred)
    bad.pred = Comparison("=", col("no_such_column"), lit(1))
    return bad


def _broken_drop_filter(node: Operator, ctx: RewriteContext):
    """Rewrites σ(q) to q: structurally pristine, semantically wrong —
    only the per-step differential interpretation can catch it."""
    if not isinstance(node, Select):
        return None
    return node.child


def _patch_rule(monkeypatch, name: str, fn) -> None:
    """Replace engine rule ``name`` in every phase table for one test."""
    for table_name in ("HOUSE_CLEANING", "RANK_GOAL", "JOIN_GOAL"):
        table = getattr(engine_mod, table_name)
        patched = tuple((n, fn if n == name else f) for n, f in table)
        monkeypatch.setattr(engine_mod, table_name, patched)


def test_structurally_broken_rule_is_caught_and_named(monkeypatch, store):
    _patch_rule(monkeypatch, "3b", _broken_select_scope)
    plan = compiled(store, 'doc("t.xml")//a[b > 1]')
    with pytest.raises(SanitizerError) as excinfo:
        isolate(plan, sanitizer=PlanSanitizer())
    assert excinfo.value.code == "JGI030"
    assert excinfo.value.rule == "3b"
    assert any(d.code == "JGI004" for d in excinfo.value.diagnostics)
    assert "3b" in str(excinfo.value)


def test_semantically_broken_rule_is_caught_and_named(monkeypatch, store):
    _patch_rule(monkeypatch, "3b", _broken_drop_filter)
    plan = compiled(store, 'doc("t.xml")//a[b > 1]')
    with pytest.raises(SanitizerError) as excinfo:
        isolate(plan, sanitizer=PlanSanitizer(interpret=True))
    assert excinfo.value.code == "JGI031"
    assert excinfo.value.rule == "3b"
    assert "changed the result" in str(excinfo.value)


def test_unsanitized_engine_misses_the_semantic_break(monkeypatch, store):
    """The control experiment: without the sanitizer the same broken
    rule sails through isolation and silently miscompiles."""
    _patch_rule(monkeypatch, "3b", _broken_drop_filter)
    reference = run_plan(compiled(store, 'doc("t.xml")//a[b > 1]'))
    isolated, _ = isolate(compiled(store, 'doc("t.xml")//a[b > 1]'))
    assert run_plan(isolated) != reference


def test_broken_compiler_output_is_caught_before_any_rule(store):
    plan = compiled(store, 'doc("t.xml")//a')
    plan.child.col = "mangled"  # the rank no longer delivers 'pos'
    with pytest.raises(SanitizerError) as excinfo:
        isolate(plan, sanitizer=PlanSanitizer())
    assert excinfo.value.rule == "<initial plan>"


def test_snapshot_is_isolated_from_in_place_rule_mutation(store):
    sanitizer = PlanSanitizer()
    plan = compiled(store, 'doc("t.xml")//a[b]/c')
    snap = sanitizer.snapshot(plan)
    fingerprint = run_plan(snap)
    isolate(plan, sanitizer=sanitizer)  # mutates `plan` in place
    assert run_plan(snap) == fingerprint
    assert sanitizer.steps_checked > 0


# -- per-rule soundness: rank rules (9)-(13), δ/join rules (16)-(19) ----------


def assert_rule_sound(rule_fn, node: Operator, root: Serialize) -> None:
    """Apply one rule directly and verify the two sanitizer contracts:
    the rewritten plan passes the deep checker, and the serialized
    result is unchanged (rank columns are only order-isomorphic, so the
    comparison is on the item sequence — exactly what Serialize
    observes)."""
    reference = run_plan(root)
    ctx = RewriteContext(
        root=root, props=infer_properties(root), parents=parents_map(root)
    )
    replacement = rule_fn(node, ctx)
    assert replacement is not None and replacement is not node, (
        "plan shape does not trigger the rule"
    )
    new_root = replace_node(root, node, replacement)
    diagnostics = check_plan(new_root, data=True, allow_dead_refs=True)
    assert not errors(diagnostics), [d.render() for d in diagnostics]
    assert run_plan(prune_dead_refs(new_root)) == reference


def test_rule_9_sound():
    t = LitTable(("item",), [(30,), (10,), (20,)])
    rank = RowRank(t, "pos", ("item",))
    assert_rule_sound(R.rule_9_rank_single_to_project, rank, Serialize(rank))


def test_rule_10_sound():
    t = LitTable(("item", "f"), [(3, 0), (1, 1), (2, 1)])
    rank = RowRank(t, "pos", ("item",))
    select = Select(rank, Comparison("=", col("f"), lit(1)))
    assert_rule_sound(
        R.rule_10_rank_pullup_unary, select, Serialize(select)
    )


def test_rule_11_sound():
    t = LitTable(("a", "b"), [(2, 9), (1, 8)])
    rank = RowRank(t, "r", ("a",))
    project = Project(rank, [("item", "b"), ("pos", "r")])
    assert_rule_sound(
        R.rule_11_rank_pullup_project, project, Serialize(project)
    )


def test_rule_12_sound():
    left = RowRank(LitTable(("item",), [(2,), (1,)]), "pos", ("item",))
    right = LitTable(("b",), [(1,), (2,)])
    join = Join(left, right, Comparison("=", col("item"), col("b")))
    root = Serialize(Project(join, [("item", "item"), ("pos", "pos")]))
    assert_rule_sound(R.rule_12_rank_pullup_join, join, root)


def test_rule_13_sound():
    t = LitTable(("a", "b"), [(1, 2), (2, 1), (1, 1)])
    inner = RowRank(t, "r1", ("a", "b"))
    outer = RowRank(inner, "pos", ("r1",))
    root = Serialize(Project(outer, [("item", "a"), ("pos", "pos")]))
    assert_rule_sound(R.rule_13_rank_splice, outer, root)


def test_rule_16_sound():
    left = LitTable(("item",), [(1,), (2,)])
    right = LitTable(("pos",), [(1,), (2,)])
    join = Join(left, right, Comparison("=", col("item"), col("pos")))
    assert_rule_sound(
        R.rule_16_introduce_tail_distinct, join, Serialize(join)
    )


def test_rule_17_sound():
    t = LitTable(("a", "f"), [(1, 0), (2, 1)])
    select = Select(t, Comparison("=", col("f"), lit(1)))
    other = LitTable(("b",), [(2,), (1,)])
    join = Join(select, other, Comparison("=", col("a"), col("b")))
    root = Serialize(Project(join, [("item", "a"), ("pos", "b")]))
    assert_rule_sound(R.rule_17_push_join_through_unary, join, root)


def test_rule_18_sound():
    q1 = LitTable(("u",), [(7,), (8,)])
    q2 = LitTable(("a",), [(5,), (6,)])
    q3 = LitTable(("b",), [(5,)])
    lower = Cross(q1, q2)
    join = Join(lower, q3, Comparison("=", col("a"), col("b")))
    root = Serialize(Project(join, [("item", "u"), ("pos", "b")]))
    assert_rule_sound(R.rule_18_push_join_through_join, join, root)


def test_rule_19_sound():
    base = RowId(LitTable(("v",), [(10,), (20,)]), "k")
    left = Project(base, [("a", "k"), ("v1", "v")])
    right = Project(base, [("b", "k"), ("v2", "v")])
    join = Join(left, right, Comparison("=", col("a"), col("b")))
    root = Serialize(Project(join, [("item", "v1"), ("pos", "v2")]))
    assert_rule_sound(R.rule_19_collapse_key_selfjoin, join, root)


# -- whole-engine coverage of the same rules on real queries ------------------

RULE_TRIGGERS = [
    ("9", 'doc("t.xml")//a/b'),
    ("11", 'for $x in doc("t.xml")//a return $x/b'),
    ("12", 'for $x in doc("t.xml")//a for $y in $x/b return $y/parent::a'),
    ("13", 'for $x in doc("t.xml")//a for $y in $x/b return $y/parent::a'),
    ("16", 'for $x in doc("t.xml")//a return $x/b'),
    ("19", 'for $x in doc("t.xml")//a for $y in $x/b return $y'),
    ("20", 'doc("t.xml")//a/b'),
    ("21", 'for $x in doc("t.xml")//a where $x/b = $x/c return $x'),
]


@pytest.mark.parametrize("rule_name,query", RULE_TRIGGERS)
def test_rule_fires_under_full_sanitization(store, rule_name, query):
    """The rule applies at least once while the per-step checker *and*
    the per-step differential interpretation are active."""
    sanitizer = PlanSanitizer(interpret=True, data=True)
    isolated, stats = isolate(compiled(store, query), sanitizer=sanitizer)
    assert stats.applications[rule_name] > 0
    assert sanitizer.steps_checked == stats.steps
    reference = run_plan(compile_core(
        normalize(parse_xquery(query)), store
    ))
    assert run_plan(isolated) == reference
