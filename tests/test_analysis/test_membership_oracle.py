"""The pattern membership oracle (:func:`filter_pattern` /
:func:`pattern_selects`) against the reference pattern evaluator.

The view tier's residual filter re-checks a candidate row through the
ancestor-chain membership oracle instead of evaluating the pattern
over the whole document; this property sweep pins the two down as
extensionally equal on seeded random documents and patterns from the
tree-pattern sub-grammar.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.containment import (
    canonicalize,
    evaluate_pattern,
    extract_pattern,
    filter_pattern,
    pattern_selects,
)
from repro.infoset import DocumentStore
from repro.xquery import normalize, parse_xquery
from tests.genquery import DEFAULT_URI, QueryGenerator, random_document

SEEDS = range(60)


def _pattern_and_table(seed: int):
    rng = random.Random(seed)
    store = DocumentStore()
    store.load(random_document(rng), DEFAULT_URI)
    generator = QueryGenerator(rng)
    query = generator.pattern_query()
    pattern = extract_pattern(normalize(parse_xquery(query)))
    if pattern is None or pattern.root is None:
        pytest.skip(f"seed {seed}: query fell outside the fragment")
    return canonicalize(pattern), store.table


@pytest.mark.parametrize("seed", SEEDS)
def test_filter_matches_reference_evaluator(seed):
    pattern, table = _pattern_and_table(seed)
    expected = evaluate_pattern(pattern, table)
    universe = list(range(len(table)))
    assert filter_pattern(pattern, table, universe) == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_selects_agrees_per_node(seed):
    pattern, table = _pattern_and_table(seed)
    selected = set(evaluate_pattern(pattern, table))
    for pre in range(len(table)):
        assert pattern_selects(pattern, table, pre) == (pre in selected)


def test_filter_preserves_candidate_order_and_subset():
    pattern, table = _pattern_and_table(7)
    universe = list(range(len(table)))
    shuffled = list(reversed(universe))
    filtered = filter_pattern(pattern, table, shuffled)
    assert filtered == [
        pre for pre in shuffled if pre in set(evaluate_pattern(pattern, table))
    ]
