"""The lint driver and the ``repro-xq lint`` CLI subcommand."""

from __future__ import annotations

import pytest

from repro.analysis import lint_compiled, lint_query
from repro.cli import main
from repro.pipeline import XQueryProcessor
from repro.workloads import PAPER_QUERIES

XML = "<site><a id=\"1\"><b>1</b></a><a id=\"2\"><b>2</b></a></site>"


def checked_processor(store, default_doc):
    return XQueryProcessor(
        store, default_doc=default_doc, checked=True, check_interpret=True
    )


def test_lint_query_clean_on_fig2(fig2_store):
    processor = checked_processor(fig2_store, "auction.xml")
    result = lint_query(
        processor,
        "//bidder[increase > 4]/time",
        name="fig2",
        data=True,
    )
    assert result.ok and result.diagnostics == []


def test_lint_query_reports_compile_failure(fig2_store):
    processor = checked_processor(fig2_store, "auction.xml")
    result = lint_query(processor, "for $x in //a return", name="broken")
    assert not result.ok
    assert [d.code for d in result.diagnostics] == ["JGI052"]
    assert "XQuerySyntaxError" in result.diagnostics[0].message


def test_lint_compiled_flags_broken_plan(fig2_store):
    processor = XQueryProcessor(fig2_store, default_doc="auction.xml")
    compiled = processor.compile("//bidder/time")
    compiled.isolated_plan.child.cols = (
        compiled.isolated_plan.child.cols[:1]
    )
    diagnostics = lint_compiled(compiled)
    assert any(d.code == "JGI008" for d in diagnostics)


def test_paper_queries_lint_clean(xmark_store, dblp_store):
    """Table 8's Q1–Q6 sweep with zero diagnostics — the in-tree slice
    of the `repro-xq lint --workloads` acceptance run."""
    processors = {
        "xmark": checked_processor(xmark_store, "auction.xml"),
        "dblp": checked_processor(dblp_store, "dblp.xml"),
    }
    for name, query in sorted(PAPER_QUERIES.items()):
        result = lint_query(
            processors[query.document],
            query.text,
            name=name,
            is_tuple=query.is_tuple,
        )
        assert result.ok, (name, [d.render() for d in result.diagnostics])
        assert result.diagnostics == [], name


# -- the CLI ------------------------------------------------------------------


@pytest.fixture()
def doc_file(tmp_path):
    path = tmp_path / "t.xml"
    path.write_text(XML)
    return str(path)


def test_cli_lint_single_query_ok(capsys, doc_file):
    exit_code = main(["lint", "//a[b > 1]", "--doc", doc_file])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "query: ok" in out
    assert "0 error(s)" in out


def test_cli_lint_reports_errors_with_nonzero_exit(capsys, doc_file):
    exit_code = main(["lint", "for $x in //a return", "--doc", doc_file])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "JGI052" in out


def test_cli_lint_requires_query_or_workloads(doc_file):
    with pytest.raises(SystemExit):
        main(["lint", "--doc", doc_file])


def test_cli_normal_path_still_works(capsys, doc_file):
    exit_code = main(["//a/b", "--doc", f"{doc_file}=t.xml", "--items"])
    assert exit_code == 0
    assert capsys.readouterr().out.strip()
