"""Property-based fuzzing of the checker and the property inference.

Two directions:

* **soundness** — on randomly generated (valid) plans, the full
  checker stack must stay silent: structure is clean, the independent
  icols/const/set re-derivation agrees with the Tables 2–5 inference,
  and every claimed constant/key holds on the interpreted tables;
* **sensitivity** — a random single-node corruption of a valid plan
  must always produce at least one error diagnostic.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import (
    Attach,
    Comparison,
    Cross,
    Distinct,
    Join,
    LitTable,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
    col,
    lit,
)
from repro.algebra.dagutils import all_nodes
from repro.algebra.ops import Operator
from repro.analysis import check_plan, errors

# -- random plan generation ---------------------------------------------------


def random_plan(rng: random.Random) -> Serialize:
    """A random valid plan over small literal tables: every operator
    class appears, schemas stay disjoint for ⋈/×, and the tail always
    renames to the Serialize item/pos contract."""
    counter = [0]

    def fresh(base: str) -> str:
        counter[0] += 1
        return f"{base}{counter[0]}"

    def littable() -> Operator:
        names = tuple(fresh("c") for _ in range(rng.randint(1, 3)))
        rows = [
            tuple(rng.randint(0, 4) for _ in names)
            for _ in range(rng.randint(0, 5))
        ]
        return LitTable(names, rows)

    def subplan(depth: int) -> Operator:
        if depth <= 0 or rng.random() < 0.25:
            return littable()
        choice = rng.randrange(8)
        if choice in (0, 1):  # binary: keep schemas disjoint by freshness
            left, right = subplan(depth - 1), subplan(depth - 1)
            if set(left.columns) & set(right.columns):
                return littable()
            if choice == 0 and left.columns and right.columns:
                return Join(
                    left,
                    right,
                    Comparison(
                        rng.choice(("=", "<", ">=")),
                        col(rng.choice(left.columns)),
                        col(rng.choice(right.columns)),
                    ),
                )
            return Cross(left, right)
        child = subplan(depth - 1)
        cols = child.columns
        if choice == 2:
            picked = [c for c in cols if rng.random() < 0.7] or [cols[0]]
            return Project(
                child, [(fresh("p"), old) for old in picked]
            )
        if choice == 3:
            return Select(
                child,
                Comparison(
                    rng.choice(("=", "!=", "<=")),
                    col(rng.choice(cols)),
                    lit(rng.randint(0, 4)),
                ),
            )
        if choice == 4:
            return Distinct(child)
        if choice == 5:
            return Attach(child, fresh("a"), rng.randint(0, 9))
        if choice == 6:
            return RowId(child, fresh("i"))
        order = tuple(c for c in cols if rng.random() < 0.6) or cols[:1]
        return RowRank(child, fresh("r"), order)

    body = subplan(rng.randint(1, 4))
    pools = list(body.columns)
    item = rng.choice(pools)
    pos = rng.choice(pools)
    return Serialize(Project(body, [("item", item), ("pos", pos)]))


# -- soundness: valid plans keep every layer silent ---------------------------


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_checker_silent_on_random_valid_plans(seed: int):
    plan = random_plan(random.Random(seed))
    diagnostics = check_plan(plan, data=True)
    assert diagnostics == [], [d.render() for d in diagnostics]


# -- sensitivity: any single corruption is detected ---------------------------


def corrupt(rng: random.Random, root: Serialize) -> str | None:
    """Apply one random guaranteed-invalid mutation; returns a label
    (or None if the drawn node does not support the drawn mutation)."""
    node = rng.choice(all_nodes(root))
    kind = rng.randrange(6)
    if kind == 0 and isinstance(node, Project):
        new, old = node.cols[0]
        node.cols = node.cols + ((new, old),)  # duplicate output
        return "project-duplicate"
    if kind == 1 and isinstance(node, Project):
        node.cols = ((node.cols[0][0], "__ghost__"),) + node.cols[1:]
        return "dangling-live-ref" if node.cols[0][0] in ("item", "pos") else None
    if kind == 2 and isinstance(node, (Select, Join)):
        node.pred = Comparison("=", col("__ghost__"), lit(1))
        return "pred-ghost-column"
    if kind == 3 and isinstance(node, RowRank):
        node.order = ("__ghost__",)
        return "rank-ghost-order"
    if kind == 4 and isinstance(node, LitTable) and node.rows:
        node.rows = list(node.rows) + [node.rows[0] + (99,)]
        return "littable-arity"
    if kind == 5 and isinstance(node, (Attach, RowId, RowRank)):
        node.col = node.child.columns[0]  # collide with the input
        return "generated-collision"
    return None


@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_checker_flags_any_single_corruption(seed: int):
    rng = random.Random(seed)
    plan = random_plan(rng)
    label = corrupt(rng, plan)
    if label is None:
        return  # mutation did not apply to the drawn node
    diagnostics = check_plan(plan)
    assert errors(diagnostics), f"undetected corruption: {label}"


# -- the inference itself, via the checker's re-derivation --------------------


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_property_inference_agrees_with_rederivation(seed: int):
    """Pin the Tables 2–5 inference against the independent
    edge-function re-derivation on plans with heavy DAG sharing (a
    self-join over a shared subplan — where stale-property and
    id-keying bugs would hide)."""
    rng = random.Random(seed)
    width = rng.randint(1, 2)
    base = RowId(
        LitTable(
            tuple(f"c{i}" for i in range(width)),
            [
                tuple(rng.randint(0, 3) for _ in range(width))
                for _ in range(rng.randint(1, 4))
            ],
        ),
        "k",
    )
    left = Project(base, [("a", "k"), ("l0", "c0")])
    right = Project(base, [("b", "k")])
    join = Join(left, right, Comparison("=", col("a"), col("b")))
    root = Serialize(Project(join, [("item", "l0"), ("pos", "b")]))
    diagnostics = check_plan(root, data=True)
    assert diagnostics == [], [d.render() for d in diagnostics]
