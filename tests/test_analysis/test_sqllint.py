"""SQL linter: clean on everything the generator emits, and each
``JGI04x`` scope/clause rule fires on a hand-broken block."""

from __future__ import annotations

import pytest

from repro.analysis import lint_sql
from repro.compiler import compile_core
from repro.rewrite import isolate
from repro.sql import generate_join_graph_sql
from repro.sql.codegen import SQLQuery
from repro.xquery import normalize, parse_xquery


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


def sql_for(fig2_store, query: str) -> SQLQuery:
    core = normalize(parse_xquery(query), default_doc="auction.xml")
    isolated, _ = isolate(compile_core(core, fig2_store))
    return generate_join_graph_sql(isolated)


GENERATED = [
    'doc("auction.xml")//bidder/increase',
    'doc("auction.xml")/open_auction/bidder[time]/increase',
    'for $b in doc("auction.xml")//bidder return $b/time',
    'doc("auction.xml")//bidder/ancestor-or-self::*',
]


@pytest.mark.parametrize("query", GENERATED)
def test_generated_sql_lints_clean(fig2_store, query):
    assert lint_sql(sql_for(fig2_store, query)) == []


def block(text: str, **overrides) -> SQLQuery:
    defaults = dict(
        text=text,
        select_aliases=["item"],
        item_alias="item",
        doc_instances=1,
        distinct=False,
        order_by=[],
    )
    defaults.update(overrides)
    return SQLQuery(**defaults)


def test_unbound_alias_flagged():
    q = block(
        "SELECT d1.pre AS item\nFROM doc AS d1\nWHERE d2.kind = 1"
    )
    assert "JGI040" in codes(lint_sql(q))


def test_unknown_column_flagged():
    q = block("SELECT d1.shoe_size AS item\nFROM doc AS d1")
    assert "JGI041" in codes(lint_sql(q))


def test_duplicate_from_alias_flagged():
    q = block(
        "SELECT d1.pre AS item\nFROM doc AS d1, doc AS d1",
        doc_instances=2,
    )
    assert "JGI042" in codes(lint_sql(q))


def test_unused_alias_is_a_warning():
    q = block(
        "SELECT d1.pre AS item\nFROM doc AS d1, doc AS d2",
        doc_instances=2,
    )
    diagnostics = lint_sql(q)
    assert codes(diagnostics) == ["JGI043"]
    assert all(d.severity == "warning" for d in diagnostics)


def test_distinct_order_term_must_be_selected():
    q = block(
        "SELECT DISTINCT d1.pre AS item\nFROM doc AS d1\nORDER BY +d1.size",
        distinct=True,
        order_by=["d1.size"],
    )
    assert "JGI044" in codes(lint_sql(q))


def test_distinct_order_term_in_select_is_fine():
    q = block(
        "SELECT DISTINCT d1.pre AS item, d1.size AS s1\n"
        "FROM doc AS d1\nORDER BY +d1.size",
        select_aliases=["item", "s1"],
        distinct=True,
        order_by=["d1.size"],
    )
    assert lint_sql(q) == []


def test_select_alias_clash_flagged():
    q = block(
        "SELECT d1.pre AS item, d1.size AS item\nFROM doc AS d1",
        select_aliases=["item", "item"],
    )
    assert "JGI045" in codes(lint_sql(q))


def test_item_alias_must_be_selected():
    q = block(
        "SELECT d1.pre AS thing\nFROM doc AS d1",
        select_aliases=["thing"],
        item_alias="item",
    )
    assert "JGI046" in codes(lint_sql(q))


def test_malformed_block_flagged():
    q = block("WITH t AS (SELECT 1)\nSELECT * FROM t")
    assert codes(lint_sql(q)) == ["JGI047"]
