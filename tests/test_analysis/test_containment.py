"""Unit and property tests for the containment analyzer itself:
extraction, canonicalization, verdicts, witness checking, and the
algebraic laws (reflexivity, transitivity, antisymmetry up to
equivalence) over generator-seeded pattern pools.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.genquery import QueryGenerator, variant_of
from repro.analysis.containment import (
    CONTAINS,
    EQUIVALENT,
    NOT_SHOWN,
    OUTSIDE_FRAGMENT,
    canonical_key,
    canonicalize,
    contains,
    contains_patterns,
    equivalent,
    evaluate_pattern,
    extract_pattern,
    find_homomorphism,
    pattern_key,
    verify_witness,
)
from repro.infoset import DocumentStore
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_xquery

DOC = "d.xml"
MEMBERS = ("d.xml", "e.xml")


def core(query: str):
    return normalize(
        parse_xquery(query),
        default_doc=DOC,
        collections=lambda pattern: MEMBERS,
    )


def pat(query: str):
    pattern = extract_pattern(core(query))
    assert pattern is not None, f"expected in-fragment: {query}"
    return pattern


# ---------------------------------------------------------------- extraction

IN_FRAGMENT = [
    "//a",
    "/a/b/c",
    '//a[@id = "3"]',
    "//a[b > 1][c]/d",
    "//a/descendant-or-self::node()/b",
    'doc("d.xml")//open_auction[initial = "15"]',
    "for $x in //a where $x/b return $x",
    "collection()//a[b]",
    "//a/@id",
    "//*[b]",
]

OUTSIDE = [
    "//a/parent::node()",            # upward axis
    "let $x := //a return $x/b",     # let-binding
    'for $x in doc("d.xml")//a return doc("e.xml")//b',  # two sources
    "//a[b = c]",                    # join predicate, not a literal
    "for $x in //a for $y in //b return $x",  # two generators
]


@pytest.mark.parametrize("query", IN_FRAGMENT)
def test_extraction_covers_the_fragment(query):
    assert extract_pattern(core(query)) is not None


@pytest.mark.parametrize("query", OUTSIDE)
def test_extraction_refuses_outside_fragment(query):
    assert extract_pattern(core(query)) is None


def test_extracted_uris_are_the_source_documents():
    assert pat("//a").uris == (DOC,)
    assert set(pat("collection()//a").uris) == set(MEMBERS)


# ----------------------------------------------------------- canonicalization

RESPELLINGS = [
    ("//a[b][c]", "//a[c][b]"),                      # predicate order
    ("//a[b]", "//a[b][b]"),                          # duplicated predicate
    ("//a/b", "//a/self::node()/b"),                  # redundant self step
    ("//a", "//child::a"),                            # explicit axis
    ("//a[b > 1]", "//a[b > 1][b > 1]"),              # duplicated comparison
    ("//a[b]/c", "(: x :) //a[b]/c"),                 # comment decoration
    ("//a[b]", "for $x in //a where $x/b return $x"),  # FLWOR-where form
]


@pytest.mark.parametrize("left,right", RESPELLINGS)
def test_respellings_share_a_canonical_key(left, right):
    assert canonical_key(core(left)) == canonical_key(core(right))


def test_distinct_queries_get_distinct_keys():
    keys = {canonical_key(core(q)) for q in ("//a", "//b", "//a[b]", "//a/b", "/a")}
    assert len(keys) == 5


def test_canonical_key_is_none_outside_fragment():
    assert canonical_key(core("//a/parent::node()")) is None


def test_canonicalize_prunes_subsumed_branches():
    # [b] is implied by [b > 1]: minimization folds the weaker branch
    assert canonical_key(core("//a[b > 1][b]")) == canonical_key(core("//a[b > 1]"))


def test_empty_collection_canonicalizes_to_the_empty_pattern():
    c = normalize(
        parse_xquery("collection()//a"),
        default_doc=DOC,
        collections=lambda pattern: (),
    )
    pattern = extract_pattern(c)
    assert pattern is not None
    canonical = canonicalize(pattern)
    assert canonical.root is None
    assert pattern_key(canonical) == "empty"


# ----------------------------------------------------------------- verdicts

VERDICT_PAIRS = [
    # (p, q, verdict of contains(p, q))
    ("//a", "//a[b]", CONTAINS),          # predicate narrows
    ("//a[b]", "//a", NOT_SHOWN),         # ... and not conversely
    ("//a", "/a", CONTAINS),              # // subsumes /
    ("/a", "//a", NOT_SHOWN),
    ("//*", "//a", CONTAINS),             # wildcard subsumes a name
    ("//a", "//*", NOT_SHOWN),
    ("//a/b", "//a[c]/b", CONTAINS),
    ("//a[b > 3]", "//a[b > 5]", CONTAINS),   # numeric interval implication
    ("//a[b > 5]", "//a[b > 3]", NOT_SHOWN),
    ("//a[b]", "//a[b][c]", CONTAINS),
    ("//a", "//b", NOT_SHOWN),            # different names
    ("//a/b", "//a/c", NOT_SHOWN),
    ("//a", "//a/parent::node()/a", OUTSIDE_FRAGMENT),
]


@pytest.mark.parametrize("p,q,verdict", VERDICT_PAIRS)
def test_classic_verdicts(p, q, verdict):
    assert contains(core(p), core(q)).verdict == verdict


def test_equivalent_is_mutual_containment():
    res = equivalent(core("//a[b][c]"), core("//a[c][b]"))
    assert res.verdict == EQUIVALENT and res.holds
    # respelled axes prove equivalent through both directions even
    # though the surface spellings differ
    assert equivalent(core("//a[b]"), core("//child::a[child::b]")).holds
    assert res.forward is not None and res.backward is not None
    one_way = equivalent(core("//a"), core("//a[b]"))
    assert one_way.verdict == NOT_SHOWN and not one_way.holds


def test_uri_mismatch_blocks_containment():
    p = normalize(parse_xquery("//a"), default_doc="left.xml")
    q = normalize(parse_xquery("//a"), default_doc="right.xml")
    assert contains(p, q).verdict == NOT_SHOWN


# ----------------------------------------------------------------- witnesses


def test_witness_reverifies_independently():
    res = contains(core("//a"), core("//a[b]"))
    assert res.verdict == CONTAINS
    assert res.witness is not None
    # the shipped witness is a sorted tuple of pairs; re-check it as
    # the mapping the hom layer speaks
    assert verify_witness(res.p_pattern, res.q_pattern, dict(res.witness)) == []


def test_tampered_witness_is_rejected():
    p = canonicalize(pat("//a/b"))
    q = canonicalize(pat("//a[c]/b"))
    witness = find_homomorphism(p, q)
    assert witness is not None
    assert verify_witness(p, q, witness) == []
    # remap everything to the root: structure and selection both break
    bogus = {k: 0 for k in witness}
    assert verify_witness(p, q, bogus) != []
    # drop a binding: the witness must be total
    partial = dict(witness)
    partial.popitem()
    assert verify_witness(p, q, partial) != []


# ----------------------------------------------------------- algebraic laws


def _pattern_pool(count: int):
    pool = []
    for seed in range(count):
        gen = QueryGenerator(random.Random(seed))
        pool.append(canonicalize(pat(gen.pattern_query())))
    return pool


def test_containment_is_reflexive():
    for pattern in _pattern_pool(60):
        assert contains_patterns(pattern, pattern).verdict in (CONTAINS, EQUIVALENT)


def test_proven_containment_is_transitive():
    pool = _pattern_pool(30)
    proven = {
        (i, j)
        for i, p in enumerate(pool)
        for j, q in enumerate(pool)
        if contains_patterns(p, q).verdict in (CONTAINS, EQUIVALENT)
    }
    for (i, j) in proven:
        for (j2, k) in proven:
            if j == j2:
                assert (i, k) in proven, (i, j, k)


def test_antisymmetry_up_to_equivalence():
    # mutual proven containment <=> identical canonical keys
    pool = _pattern_pool(40)
    for i, p in enumerate(pool):
        for j, q in enumerate(pool):
            forward = contains_patterns(p, q).verdict in (CONTAINS, EQUIVALENT)
            backward = contains_patterns(q, p).verdict in (CONTAINS, EQUIVALENT)
            if forward and backward:
                assert pattern_key(p) == pattern_key(q), (i, j)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 1_000_000))
def test_generated_variants_stay_equivalent(seed: int):
    """variant_of produces respellings the analyzer proves equivalent
    for the pattern sub-grammar, and never produces a pair the
    analyzer *refutes* by claiming strict one-way containment with a
    witness that evaluation contradicts."""
    rng = random.Random(seed)
    gen = QueryGenerator(rng)
    query = gen.pattern_query()
    variant = variant_of(query, rng)
    res = equivalent(core(query), core(variant))
    assert res.verdict in (EQUIVALENT, NOT_SHOWN, OUTSIDE_FRAGMENT)
    # the canonical keys of a proven pair must collide (cache contract)
    if res.holds:
        assert canonical_key(core(query)) == canonical_key(core(variant))


# ----------------------------------------------------- evaluation oracle

XML = """\
<site>
  <a id="1"><b>1</b><c>2</c></a>
  <a id="2"><b>4</b></a>
  <a><b>7</b><c>7</c></a>
</site>
"""


def test_evaluator_matches_engine_on_the_fragment():
    store = DocumentStore()
    store.load(XML, DOC)
    from repro.pipeline import XQueryProcessor

    processor = XQueryProcessor(store, default_doc=DOC)
    for query in ("//a", "//a[b > 2]", "//a[@id = \"2\"]", "//a[b][c]", "//a/b"):
        expected = [item for item in processor.execute(query).items]
        got = evaluate_pattern(canonicalize(pat(query)), store.table)
        assert got == expected, query
