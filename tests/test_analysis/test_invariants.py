"""Deep plan checker: structural contracts, the independent property
re-derivation, and the data-backed layer — each exercised both on
healthy plans (no diagnostics) and on deliberately corrupted ones
(the right ``JGI`` code comes out)."""

from __future__ import annotations

from repro.algebra import (
    Attach,
    Comparison,
    Cross,
    Distinct,
    Join,
    LitTable,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
    col,
    lit,
    run_plan,
)
from repro.algebra.dagutils import clone_plan, find_cycle, structural_violations
from repro.algebra.properties import infer_properties
from repro.analysis import (
    check_plan,
    data_diagnostics,
    errors,
    property_diagnostics,
    structural_diagnostics,
)
from repro.analysis.invariants import prune_dead_refs
from repro.compiler import compile_core
from repro.xquery import normalize, parse_xquery


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


def small_plan() -> Serialize:
    """item/pos over a literal base — structurally rich enough for the
    corruption tests (join + project + generators)."""
    left = LitTable(("a", "v"), [(1, 10), (2, 20)])
    right = LitTable(("b",), [(1,), (2,)])
    join = Join(left, right, Comparison("=", col("a"), col("b")))
    project = Project(join, [("item", "v"), ("pos", "b")])
    return Serialize(project)


# -- healthy plans -----------------------------------------------------------


def test_clean_plan_has_no_diagnostics():
    assert check_plan(small_plan(), data=True) == []


def test_compiled_plans_check_clean(fig2_store):
    core = normalize(
        parse_xquery('doc("auction.xml")//bidder/increase'),
        default_doc="auction.xml",
    )
    plan = compile_core(core, fig2_store)
    assert check_plan(plan, data=True) == []


# -- layer 1: structural corruptions -----------------------------------------


def test_cycle_detected_first_and_alone():
    root = small_plan()
    project = root.child
    join = project.child
    join.children[1] = project  # close a cycle through the projection
    assert find_cycle(root) is not None
    assert codes(structural_diagnostics(root)) == ["JGI001"]
    # check_plan must not recurse into the non-terminating layers
    assert codes(check_plan(root, data=True)) == ["JGI001"]


def test_arity_violation():
    root = small_plan()
    root.child.child.children.append(LitTable(("z",), []))
    assert "JGI002" in codes(structural_diagnostics(root))


def test_join_overlap_detected():
    root = small_plan()
    join = root.child.child
    join.children[1] = LitTable(("a",), [(1,)])  # clashes with left 'a'
    assert "JGI003" in codes(structural_diagnostics(root))


def test_missing_column_detected():
    root = small_plan()
    root.child.cols = (("item", "nonexistent"), ("pos", "b"))
    assert "JGI004" in codes(structural_diagnostics(root))


def test_duplicate_project_output_detected():
    root = small_plan()
    root.child.cols = (("item", "v"), ("item", "b"))
    diagnostics = structural_diagnostics(root)
    assert "JGI005" in codes(diagnostics)


def test_generated_column_collision_detected():
    base = LitTable(("item", "pos"), [(1, 1)])
    attach = Attach(base, "extra", 7)
    root = Serialize(attach)
    attach.col = "item"  # now collides with the input schema
    assert "JGI006" in codes(structural_diagnostics(root))


def test_empty_rank_order_detected():
    base = LitTable(("item",), [(1,)])
    rank = RowRank(base, "pos", ("item",))
    root = Serialize(rank)
    rank.order = ()
    assert "JGI006" in codes(structural_diagnostics(root))


def test_littable_row_arity_detected():
    base = LitTable(("item", "pos"), [(1, 1)])
    base.rows = [(1, 1), (2,)]
    assert "JGI007" in codes(structural_diagnostics(Serialize(base)))


def test_serialize_contract_detected():
    root = small_plan()
    root.child.cols = (("item2", "v"), ("pos", "b"))
    assert "JGI008" in codes(structural_diagnostics(root))


def test_shared_node_mutation_hazard():
    base = Project(LitTable(("x", "y"), [(1, 2)]), [("k", "x")])
    left = Project(base, [("a", "k")])
    right = Project(base, [("b", "k")])
    join = Join(left, right, Comparison("=", col("a"), col("b")))
    root = Serialize(Project(join, [("item", "a"), ("pos", "b")]))
    # in-place widening of the *shared* node breaks a constructor
    # invariant (duplicate outputs) -> flagged as a mutation hazard
    base.cols = (("k", "x"), ("k", "y"))
    assert "JGI009" in codes(structural_diagnostics(root))


def test_inner_serialize_detected():
    inner = Serialize(LitTable(("item", "pos"), [(1, 1)]))
    outer = Serialize(Project(inner, [("item", "item"), ("pos", "pos")]))
    assert "JGI010" in codes(structural_diagnostics(outer))


def test_dead_dangling_ref_tolerated_only_in_relaxed_mode():
    # 'v' does not survive the outer projection, so the inner entry
    # ('w', 'gone') is icols-dead; make it dangle.
    base = LitTable(("a", "gone"), [(1, 5)])
    inner = Project(base, [("v", "a"), ("w", "gone")])
    outer = Project(inner, [("item", "v"), ("pos", "v")])
    root = Serialize(outer)
    base.names = ("a", "other")  # 'gone' vanishes from the input schema
    assert "JGI004" in codes(structural_diagnostics(root))
    assert structural_diagnostics(root, allow_dead_refs=True) == []


def test_live_dangling_ref_rejected_even_in_relaxed_mode():
    base = LitTable(("a", "gone"), [(1, 5)])
    inner = Project(base, [("v", "a"), ("w", "gone")])
    outer = Project(inner, [("item", "w"), ("pos", "v")])  # 'w' is live
    root = Serialize(outer)
    base.names = ("a", "other")
    relaxed = structural_violations(root, allow_dead_refs=True)
    assert any(v.kind == "missing-column" for v in relaxed)


# -- layer 2: property cross-checks ------------------------------------------


def test_stale_properties_reported():
    root = small_plan()
    props = infer_properties(root)
    fresh = Select(root.child, Comparison(">", col("item"), lit(0)))
    root.children[0] = fresh  # 'fresh' is unknown to the inference
    assert codes(property_diagnostics(root, props)) == ["JGI011"]


def test_wrong_icols_claim_reported():
    root = small_plan()
    props = infer_properties(root)
    join = root.child.child
    props._icols[id(join)] = frozenset(("a",))  # drop needed columns
    assert "JGI012" in codes(property_diagnostics(root, props))


def test_out_of_schema_icols_reported():
    root = small_plan()
    props = infer_properties(root)
    join = root.child.child
    props._icols[id(join)] = props._icols[id(join)] | {"ghost"}
    assert "JGI013" in codes(property_diagnostics(root, props))


def test_wrong_const_claim_reported():
    root = small_plan()
    props = infer_properties(root)
    join = root.child.child
    props._const[id(join)] = {"v": 10}
    assert "JGI014" in codes(property_diagnostics(root, props))


def test_out_of_schema_key_reported():
    root = small_plan()
    props = infer_properties(root)
    join = root.child.child
    props._keys[id(join)] = frozenset((frozenset(("ghost",)),))
    assert "JGI015" in codes(property_diagnostics(root, props))


def test_wrong_set_claim_reported():
    root = small_plan()
    props = infer_properties(root)
    join = root.child.child
    props._set[id(join)] = not props._set[id(join)]
    assert "JGI016" in codes(property_diagnostics(root, props))


# -- layer 3: data-backed verification ----------------------------------------


def test_false_const_claim_caught_on_data():
    root = small_plan()
    props = infer_properties(root)
    join = root.child.child
    props._const[id(join)] = {"v": 10}  # v is 10 and 20
    assert "JGI021" in codes(data_diagnostics(root, props))


def test_false_key_claim_caught_on_data():
    base = LitTable(("item", "pos", "dup"), [(1, 1, 7), (2, 2, 7)])
    root = Serialize(base)
    props = infer_properties(root)
    props._keys[id(base)] = frozenset((frozenset(("dup",)),))
    assert "JGI022" in codes(data_diagnostics(root, props))


def test_budget_guard_skips_large_tables():
    base = LitTable(("item", "pos", "dup"), [(i, i, 7) for i in range(50)])
    root = Serialize(base)
    props = infer_properties(root)
    props._keys[id(base)] = frozenset((frozenset(("dup",)),))
    assert data_diagnostics(root, props, max_rows=10) == []


# -- helpers: clone and prune -------------------------------------------------


def test_clone_plan_preserves_sharing_and_isolates_mutation():
    base = Project(LitTable(("x",), [(1,)]), [("k", "x")])
    left = Project(base, [("a", "k")])
    right = Project(base, [("b", "k")])
    join = Join(left, right, Comparison("=", col("a"), col("b")))
    root = Serialize(Project(join, [("item", "a"), ("pos", "b")]))

    copy = clone_plan(root)
    copy_join = copy.child.child
    assert copy_join.children[0].child is copy_join.children[1].child
    assert copy_join.children[0].child is not base

    before = run_plan(copy)
    base.cols = (("k", "x"), ("z", "x"))  # mutate the original only
    assert run_plan(copy) == before


def test_prune_dead_refs_cascades():
    base = LitTable(("a", "gone"), [(2, 5), (1, 6)])
    inner = Project(base, [("v", "a"), ("w", "gone")])
    outer = Project(inner, [("item", "v"), ("pos", "v"), ("x", "w")])
    root = Serialize(Project(outer, [("item", "item"), ("pos", "pos")]))
    reference = run_plan(root)

    base.names = ("a", "other")  # strand ('w','gone'), then ('x','w')
    assert structural_diagnostics(root, allow_dead_refs=True) == []
    pruned = prune_dead_refs(root)
    assert pruned.child.child.cols == (("item", "v"), ("pos", "v"))
    assert run_plan(pruned) == reference


# -- misc operators through every layer ---------------------------------------


def test_full_stack_on_generator_operators():
    base = LitTable(("x",), [(3,), (1,), (2,)])
    plan = Serialize(
        Project(
            RowRank(
                Distinct(Cross(RowId(base, "r"), LitTable(("c",), [(9,)]))),
                "rnk",
                ("x",),
            ),
            [("item", "x"), ("pos", "rnk")],
        )
    )
    assert check_plan(plan, data=True) == []
