"""The containment analyzer as a second semantic oracle inside the
rewrite sanitizer (codes ``JGI060``/``JGI061``).

The per-step differential check (``JGI031``) compares each rewrite
step against the *initial* plan's interpretation — a compiler bug that
corrupts the initial plan is invisible to it.  The pattern oracle
evaluates the extracted tree pattern with code that shares nothing
with the loop-lifting compiler, so the two cannot mask each other.
"""

from __future__ import annotations

import pytest

from repro.analysis import PlanSanitizer, SanitizerError
from repro.compiler import compile_core
from repro.infoset import DocumentStore
from repro.pipeline import XQueryProcessor
from repro.rewrite import isolate
from repro.xquery import normalize, parse_xquery
from tests.test_analysis.test_rulecheck import (
    XML,
    _broken_drop_filter,
    _patch_rule,
)

QUERY = 'doc("t.xml")//a[b > 1]'


@pytest.fixture()
def store() -> DocumentStore:
    s = DocumentStore()
    s.load(XML, "t.xml")
    return s


def _armed(store: DocumentStore, query: str):
    core = normalize(parse_xquery(query))
    plan = compile_core(core, store)
    sanitizer = PlanSanitizer(interpret=True)
    sanitizer.set_core(core, store.table)
    return plan, sanitizer


def test_pattern_oracle_catches_a_broken_rule(monkeypatch, store):
    """A semantically broken rule trips the pattern cross-check with a
    stable JGI060 code naming the rule — before the differential
    comparison gets a word in."""
    _patch_rule(monkeypatch, "3b", _broken_drop_filter)
    plan, sanitizer = _armed(store, QUERY)
    with pytest.raises(SanitizerError) as excinfo:
        isolate(plan, sanitizer=sanitizer)
    assert excinfo.value.code == "JGI060"
    assert excinfo.value.rule == "3b"
    assert "JGI060" in str(excinfo.value)


def test_pattern_oracle_catches_a_broken_initial_plan(store):
    """A mismatch between the compiled plan and the pattern oracle is
    reported as JGI061 on the *initial* plan, before any rule runs.
    Arming the sanitizer with the wrong query's pattern simulates a
    compiler that produced a plan for a different query."""
    wrong_core = normalize(parse_xquery('doc("t.xml")//a/c'))
    plan = compile_core(normalize(parse_xquery(QUERY)), store)
    sanitizer = PlanSanitizer(interpret=True)
    sanitizer.set_core(wrong_core, store.table)
    with pytest.raises(SanitizerError) as excinfo:
        isolate(plan, sanitizer=sanitizer)
    assert excinfo.value.code == "JGI061"
    assert excinfo.value.rule == "<initial plan>"


def test_oracle_disarms_outside_the_fragment(monkeypatch, store):
    """Outside the fragment there is no pattern: the oracle stands
    down and the classic differential check still catches the break."""
    _patch_rule(monkeypatch, "3b", _broken_drop_filter)
    query = 'let $x := doc("t.xml")//a return $x[b > 1]'
    plan, sanitizer = _armed(store, query)
    with pytest.raises(SanitizerError) as excinfo:
        isolate(plan, sanitizer=sanitizer)
    assert excinfo.value.code == "JGI031"


def test_healthy_pipeline_passes_with_the_oracle_armed(store):
    """End to end: a checked processor arms the oracle on every
    in-fragment compile and the whole suite of rules passes it."""
    processor = XQueryProcessor(
        store, default_doc="t.xml", checked=True, check_interpret=True
    )
    for query in ("//a", "//a[b > 1]", "//a[b][c]/b", "//a/@id"):
        assert processor.execute(query).items, query


def test_checked_processor_reports_jgi060_end_to_end(monkeypatch, store):
    _patch_rule(monkeypatch, "3b", _broken_drop_filter)
    processor = XQueryProcessor(
        store, default_doc="t.xml", checked=True, check_interpret=True
    )
    with pytest.raises(SanitizerError) as excinfo:
        processor.compile(QUERY)
    assert excinfo.value.code == "JGI060"
