"""The randomized chaos campaign gate, and a mid-storm reload test
proving the service never serves stale results.

These are the heavyweight tests of the suite (multi-threaded storms
over an XMark instance); CI additionally runs the full-size campaign
as a separate job via ``repro serve-bench --faults``.
"""

from __future__ import annotations

import threading
from random import Random

from repro.errors import ServiceError
from repro.faults import FaultPlan, injection
from repro.faults.campaign import (
    ChaosConfig,
    format_chaos_report,
    run_chaos_campaign,
)
from repro.service import QueryService

GATE_CONFIG = ChaosConfig(
    seed=7,
    threads=8,
    queries_per_thread=8,
    rate=0.15,  # the gate requires >= 10% injected-fault rate
    factor=0.002,
    deadline_s=1.0,
    stall_ms=4_000.0,  # stalls always overrun the deadline
    breaker_reset_s=0.02,
)


def test_chaos_campaign_contract_holds():
    report = run_chaos_campaign(GATE_CONFIG)
    outcomes = report["outcomes"]
    faults = report["faults"]

    # the storm actually stormed
    assert report["calls"] == GATE_CONFIG.threads * GATE_CONFIG.queries_per_thread
    assert faults["injected_total"] > 0

    # the contract: correct answer or clean typed error, nothing else
    assert outcomes["wrong"] == []
    assert outcomes["crashes"] == []
    assert outcomes["ok"] + sum(outcomes["typed_errors"].values()) == report["calls"]

    # the accounting gate: every injected fault has exactly one
    # disposition — retried, degraded, or surfaced as a typed error
    handled = faults["handled"]
    assert faults["injected_total"] == (
        handled["retry"] + handled["degrade"] + handled["surface"]
    )
    assert report["contract"]["holds"]

    # the report is renderable and says so
    rendered = format_chaos_report(report)
    assert "HOLDS" in rendered
    assert f"seed {GATE_CONFIG.seed}" in rendered


def test_chaos_campaign_contract_holds_in_process_mode():
    """The sharded storm on the process executor: injected faults
    cross the worker pipe, their tallies flow back as deltas, and the
    ledger must balance verbatim across the process boundary."""
    report = run_chaos_campaign(
        ChaosConfig(
            seed=11,
            threads=4,
            queries_per_thread=6,
            rate=0.2,
            factor=0.002,
            deadline_s=1.5,
            stall_ms=4_000.0,
            breaker_reset_s=0.02,
            shards=2,
            documents=2,
            executor="process",
        )
    )
    assert report["mode"] == "sharded"
    assert report["config"]["executor"] == "process"
    outcomes = report["outcomes"]
    faults = report["faults"]
    assert faults["injected_total"] > 0
    assert outcomes["wrong"] == []
    assert outcomes["crashes"] == []
    handled = faults["handled"]
    assert faults["injected_total"] == (
        handled["retry"] + handled["degrade"] + handled["surface"]
    )
    assert report["contract"]["holds"]
    assert "process executor" in format_chaos_report(report)


def test_no_stale_results_across_midstorm_reload():
    """Load a new document *while* 8 threads hammer the service under
    fault injection.  Queries against the new document must return
    either the pre-load answer (empty: the URI is unknown) or the
    complete post-load answer — never a partial or stale snapshot —
    and each thread's view must flip monotonically from empty to full.
    """
    extra_xml = "<catalog>" + "".join(
        f"<item><name>n{i}</name></item>" for i in range(10)
    ) + "</catalog>"
    extra_query = 'doc("extra.xml")//item/name'
    base_query = 'doc("auction.xml")//bidder/increase'

    service = QueryService(workers=8, deadline_s=1.5, breaker_threshold=64)
    service.load(
        "<open_auction><bidder><increase>4.20</increase></bidder>"
        "</open_auction>",
        "auction.xml",
    )
    base_expected = service.execute(base_query)
    assert base_expected != []

    threads = 8
    per_thread = 30
    errors: list[str] = []
    extra_results: dict[int, list[list]] = {n: [] for n in range(threads)}
    results_lock = threading.Lock()
    barrier = threading.Barrier(threads + 1)

    def worker(index: int) -> None:
        rng = Random(1000 + index)
        barrier.wait()
        for _ in range(per_thread):
            query = extra_query if rng.random() < 0.5 else base_query
            engine = rng.choice(("joingraph-sql", "stacked-sql"))
            try:
                items = service.execute(query, engine=engine)
            except ServiceError:
                continue  # clean typed error: allowed under chaos
            except Exception as error:  # noqa: BLE001
                with results_lock:
                    errors.append(f"{type(error).__name__}: {error}")
                continue
            if query == base_query:
                if items != base_expected:
                    with results_lock:
                        errors.append(f"wrong base answer: {items!r}")
            else:
                with results_lock:
                    extra_results[index].append(items)

    plan = FaultPlan.uniform(0.12, seed=3, stall_ms=10_000.0)
    with injection(plan):
        pool = [
            threading.Thread(target=worker, args=(n,)) for n in range(threads)
        ]
        for thread in pool:
            thread.start()
        barrier.wait()
        # the mid-storm reload: invalidates the compiled-plan cache and
        # retires the backend pool while queries are in flight
        service.load(extra_xml, "extra.xml")
        for thread in pool:
            thread.join()

    # the canonical post-load answer, computed after the storm
    extra_expected = service.execute(extra_query)
    assert len(extra_expected) == 10
    service.close()

    assert errors == []
    saw_full = False
    for index in range(threads):
        seen_nonempty = False
        for items in extra_results[index]:
            # every answer is the empty pre-load one or the full
            # post-load one — a stale pool/cache would show up as an
            # empty (or partial) answer after a full one
            assert items in ([], extra_expected), f"stale/partial: {items!r}"
            if items:
                seen_nonempty = True
                saw_full = True
            else:
                assert not seen_nonempty, (
                    f"thread {index} regressed to the pre-load answer "
                    "after observing the reloaded document"
                )
    assert saw_full  # the scenario actually exercised the post-load path
