"""The fault injector itself: determinism, scripting, suppression,
installation discipline, and delivery at both hook sites."""

from __future__ import annotations

import sqlite3

import pytest

from repro import faults
from repro.errors import DeadlineExceeded, PoolRetiredError
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InjectedOperationalError,
    injection,
    is_injected,
)
from repro.service.resilience import Deadline, deadline_scope


def fresh_connection() -> sqlite3.Connection:
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE t (x)")
    return connection


class FakePool:
    name = "fake-pool"

    def __init__(self):
        self.retired = False

    def retire(self):
        self.retired = True


def drive(injector: FaultInjector, opportunities: int) -> list[str | None]:
    """Fire the execute site ``opportunities`` times; returns the
    injected kind (or None) per opportunity."""
    observed: list[str | None] = []
    for _ in range(opportunities):
        connection = fresh_connection()
        try:
            injector.fire_execute(connection)
        except InjectedOperationalError as error:
            observed.append(
                "disconnect" if "disconnect" in str(error) else "busy"
            )
        else:
            observed.append(None)
        finally:
            try:
                connection.close()
            except sqlite3.ProgrammingError:
                pass
    return observed


def test_plan_validation_rejects_bad_rates():
    with pytest.raises(ValueError):
        FaultInjector(FaultPlan(busy=1.5))
    with pytest.raises(ValueError):
        FaultInjector(FaultPlan(stall_ms=-1))


def test_uniform_split_sums_to_rate():
    plan = FaultPlan.uniform(0.2, seed=1)
    total = plan.busy + plan.stall + plan.disconnect + plan.retire
    assert total == pytest.approx(0.2)


def test_same_seed_same_fault_sequence():
    plan = FaultPlan(seed=42, busy=0.3, disconnect=0.2)
    first = drive(FaultInjector(plan), 50)
    second = drive(FaultInjector(plan), 50)
    assert first == second
    assert any(kind is not None for kind in first)


def test_different_seeds_differ():
    a = drive(FaultInjector(FaultPlan(seed=1, busy=0.4)), 60)
    b = drive(FaultInjector(FaultPlan(seed=2, busy=0.4)), 60)
    assert a != b


def test_counts_match_observations():
    injector = FaultInjector(FaultPlan(seed=7, busy=0.3, disconnect=0.3))
    observed = drive(injector, 80)
    by_kind = injector.counts.snapshot()
    assert by_kind["busy"] == observed.count("busy")
    assert by_kind["disconnect"] == observed.count("disconnect")
    assert injector.counts.total == sum(by_kind.values())


def test_scripted_replay_is_exact():
    injector = FaultInjector.scripted(["busy", None, "disconnect", None])
    assert drive(injector, 5) == ["busy", None, "disconnect", None, None]


def test_scripted_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultInjector.scripted(["segfault"])


def test_disconnect_actually_kills_the_connection():
    injector = FaultInjector.scripted(["disconnect"])
    connection = fresh_connection()
    with pytest.raises(InjectedOperationalError) as excinfo:
        injector.fire_execute(connection)
    assert is_injected(excinfo.value)
    with pytest.raises(sqlite3.ProgrammingError):
        connection.execute("SELECT 1")


def test_stall_without_deadline_is_absorbed_not_injected():
    injector = FaultInjector.scripted(["stall"], stall_ms=1.0)
    connection = fresh_connection()
    injector.fire_execute(connection)  # completes: no failure delivered
    connection.close()
    assert injector.counts.snapshot()["stall"] == 0
    assert injector.counts.total == 0
    assert injector.counts.absorbed_snapshot()["stall"] == 1
    assert injector.snapshot()["absorbed"]["stall"] == 1


def test_stall_past_the_deadline_is_injected():
    injector = FaultInjector.scripted(["stall"], stall_ms=200.0)
    connection = fresh_connection()
    with deadline_scope(Deadline.after(0.02)):
        with pytest.raises(DeadlineExceeded) as excinfo:
            injector.fire_execute(connection)
    connection.close()
    assert is_injected(excinfo.value)
    assert injector.counts.snapshot()["stall"] == 1
    assert injector.counts.absorbed_snapshot()["stall"] == 0


def test_retire_fault_retires_pool_and_raises_marked_error():
    injector = FaultInjector.scripted(["retire"])
    pool = FakePool()
    with pytest.raises(PoolRetiredError) as excinfo:
        injector.fire_lease(pool)  # type: ignore[arg-type]
    assert pool.retired
    assert is_injected(excinfo.value)
    assert injector.counts.snapshot()["retire"] == 1


def test_lease_site_ignores_execute_kinds():
    injector = FaultInjector.scripted(["busy"])
    pool = FakePool()
    injector.fire_lease(pool)  # type: ignore[arg-type]
    assert not pool.retired


def test_hooks_are_noops_without_installation():
    connection = fresh_connection()
    faults.on_execute(connection)  # nothing installed: must not raise
    connection.close()


def test_suppression_is_thread_local_and_nested():
    injector = FaultInjector(FaultPlan(seed=0, busy=1.0))
    with injection(injector):
        connection = fresh_connection()
        with faults.suppressed():
            with faults.suppressed():
                faults.on_execute(connection)
            faults.on_execute(connection)  # still suppressed (outer)
        with pytest.raises(InjectedOperationalError):
            faults.on_execute(connection)
        connection.close()
    assert injector.counts.snapshot()["busy"] == 1


def test_double_install_is_refused():
    with injection(FaultPlan()):
        with pytest.raises(RuntimeError):
            faults.install(FaultInjector(FaultPlan()))
    assert faults.active() is None


def test_snapshot_is_json_ready():
    injector = FaultInjector(FaultPlan(seed=5, busy=0.5))
    drive(injector, 10)
    snapshot = injector.snapshot()
    assert set(snapshot["rates"]) == set(FAULT_KINDS)
    assert snapshot["seed"] == 5
    assert snapshot["total"] == sum(snapshot["injected"].values())
