"""BackendPool lease/retire exception-path hardening: draining
retirement under repeated failures, lease accounting, connection
discard/recovery, and load-failure cleanup."""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.errors import PoolRetiredError
from repro.infoset.encoding import DocumentStore
from repro.service.pool import BackendPool
from repro.sql.backend import SQLiteBackend

AUCTION_XML = "<a><b>1</b><b>2</b></a>"


@pytest.fixture()
def table():
    store = DocumentStore()
    store.load(AUCTION_XML, "auction.xml")
    return store.table


def rows(pool: BackendPool) -> int:
    return pool.backend().run_raw("SELECT count(*) FROM doc")[0][0]


def test_retired_pool_refuses_new_leases(table):
    pool = BackendPool(table)
    pool.lease()  # keep one query in flight: retired but not closed
    pool.retire()
    with pytest.raises(PoolRetiredError):
        pool.lease()
    pool.release()


def test_retiring_an_idle_pool_closes_it_immediately(table):
    pool = BackendPool(table)
    pool.retire()
    with pytest.raises(RuntimeError, match="closed"):
        pool.lease()


def test_retirement_drains_then_closes(table):
    pool = BackendPool(table)
    pool.lease()
    pool.lease()
    pool.retire()
    assert pool.retired
    # in-flight leases still work against the old snapshot...
    assert rows(pool) > 0
    pool.release()
    assert rows(pool) > 0
    # ...but new leases are refused, so the drain can complete even
    # under a steady stream of would-be callers
    for _ in range(5):
        with pytest.raises(PoolRetiredError):
            pool.lease()
    pool.release()  # last lease out: the pool closes itself
    with pytest.raises(RuntimeError, match="closed"):
        pool.lease()


def test_repeated_lease_failures_never_corrupt_the_count(table):
    pool = BackendPool(table)
    pool.lease()
    pool.retire()
    for _ in range(10):
        with pytest.raises(PoolRetiredError):
            pool.lease()
    assert pool.leases == 1  # refused leases never moved the count
    pool.release()  # the drain completes despite the failure storm
    with pytest.raises(RuntimeError, match="closed"):
        pool.lease()
    assert pool.leases == 0


def test_release_without_lease_is_an_error(table):
    pool = BackendPool(table)
    with pytest.raises(RuntimeError, match="release without a lease"):
        pool.release()
    # the guard must not have pushed the count negative
    pool.lease()
    assert pool.leases == 1
    pool.release()
    pool.close()


def test_discard_backend_recovers_with_a_fresh_connection(table):
    pool = BackendPool(table)
    first = pool.backend()
    assert pool.backend() is first  # per-thread caching
    before = pool.connection_count
    first.connection.close()  # simulate connection death
    pool.discard_backend()
    assert pool.connection_count == before - 1
    replacement = pool.backend()
    assert replacement is not first
    assert rows(pool) > 0
    pool.close()


def test_discard_backend_without_a_connection_is_a_noop(table):
    pool = BackendPool(table)
    pool.discard_backend()
    pool.discard_backend()
    assert pool.connection_count == 1  # just the primary
    pool.close()


def test_close_is_idempotent_and_closes_every_connection(table):
    pool = BackendPool(table)
    backend = pool.backend()
    pool.close()
    pool.close()
    with pytest.raises(sqlite3.ProgrammingError):
        backend.connection.execute("SELECT 1")
    with pytest.raises(RuntimeError, match="closed"):
        pool.lease()
    # a thread arriving without a cached connection is refused too
    pool.discard_backend()
    with pytest.raises(RuntimeError, match="closed"):
        pool.backend()


def test_concurrent_lease_release_accounting_is_exact(table):
    pool = BackendPool(table)
    errors: list[BaseException] = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        try:
            for _ in range(50):
                pool.lease()
                rows(pool)
                pool.release()
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert pool.leases == 0
    pool.retire()  # idle: closes immediately
    with pytest.raises(RuntimeError):
        pool.lease()


def test_backend_load_failure_closes_the_connection(table):
    captured: list[sqlite3.Connection] = []

    class ExplodingBackend(SQLiteBackend):
        def _load(self, table):
            captured.append(self.connection)
            raise RuntimeError("simulated load failure")

    with pytest.raises(RuntimeError, match="simulated load failure"):
        ExplodingBackend(table)
    (connection,) = captured
    with pytest.raises(sqlite3.ProgrammingError):
        connection.execute("SELECT 1")
