"""Resilience primitives in isolation: deadlines, cancellation,
error classification, retry policy, circuit breaker, admission gate."""

from __future__ import annotations

import sqlite3
import threading
import time

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    PoolRetiredError,
    ServiceOverloaded,
)
from repro.service.resilience import (
    AdmissionGate,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    cancellation,
    current_deadline,
    deadline_scope,
    is_connection_death,
    is_transient,
)

# -- Deadline -------------------------------------------------------------


def test_deadline_budget_must_be_positive():
    with pytest.raises(ValueError):
        Deadline.after(0)


def test_deadline_accounting():
    deadline = Deadline.after(60.0)
    assert not deadline.expired
    assert 0.0 < deadline.remaining() <= 60.0
    deadline.check()  # plenty of budget: no raise


def test_deadline_expiry_raises_with_budget_and_elapsed():
    deadline = Deadline.after(0.001)
    time.sleep(0.005)
    assert deadline.expired
    assert deadline.remaining() == 0.0
    with pytest.raises(DeadlineExceeded) as excinfo:
        deadline.check()
    assert "0.001" in str(excinfo.value)
    assert not getattr(excinfo.value, "injected", False)


def test_deadline_check_can_mark_injected():
    deadline = Deadline.after(0.001)
    time.sleep(0.005)
    with pytest.raises(DeadlineExceeded) as excinfo:
        deadline.check(injected=True)
    assert excinfo.value.injected  # type: ignore[attr-defined]


def test_deadline_scope_publishes_and_restores():
    assert current_deadline() is None
    outer = Deadline.after(10.0)
    inner = Deadline.after(5.0)
    with deadline_scope(outer):
        assert current_deadline() is outer
        with deadline_scope(inner):
            assert current_deadline() is inner
        with deadline_scope(None):
            # None keeps the enclosing deadline visible
            assert current_deadline() is outer
        assert current_deadline() is outer
    assert current_deadline() is None


# -- cancellation ---------------------------------------------------------


def slow_query(connection: sqlite3.Connection, n: int = 5_000_000) -> None:
    """A CPU-bound recursive CTE that takes long enough to interrupt."""
    connection.execute(
        "WITH RECURSIVE c(x) AS (SELECT 1 UNION ALL SELECT x + 1 FROM c "
        f"WHERE x < {n}) SELECT max(x) FROM c"
    ).fetchone()


def test_cancellation_interrupts_inflight_statement():
    connection = sqlite3.connect(":memory:")
    deadline = Deadline.after(0.05)
    started = time.monotonic()
    with pytest.raises(DeadlineExceeded):
        with cancellation(connection, deadline):
            slow_query(connection)
    elapsed = time.monotonic() - started
    assert elapsed < 2.0  # interrupted, not run to completion
    # the connection survives and works afterwards
    assert connection.execute("SELECT 41 + 1").fetchone() == (42,)
    connection.close()


def test_cancellation_none_deadline_is_inert():
    connection = sqlite3.connect(":memory:")
    with cancellation(connection, None):
        assert connection.execute("SELECT 1").fetchone() == (1,)
    connection.close()


def test_cancellation_checks_before_running():
    connection = sqlite3.connect(":memory:")
    deadline = Deadline.after(0.001)
    time.sleep(0.005)
    with pytest.raises(DeadlineExceeded):
        with cancellation(connection, deadline):
            raise AssertionError("body must not run on a spent deadline")
    connection.close()


def test_cancellation_disarms_handler_on_exit():
    connection = sqlite3.connect(":memory:")
    with cancellation(connection, Deadline.after(30.0)):
        pass
    # were the handler still armed with a stale expired deadline, this
    # long statement would be interrupted
    slow_query(connection, n=50_000)
    connection.close()


def test_cancellation_survives_connection_death_in_flight():
    connection = sqlite3.connect(":memory:")
    with pytest.raises(sqlite3.ProgrammingError):
        with cancellation(connection, Deadline.after(30.0)):
            connection.close()
            connection.execute("SELECT 1")


def test_cancellation_propagates_unrelated_operational_errors():
    connection = sqlite3.connect(":memory:")
    with pytest.raises(sqlite3.OperationalError, match="no such table"):
        with cancellation(connection, Deadline.after(30.0)):
            connection.execute("SELECT * FROM missing")
    connection.close()


# -- error classification -------------------------------------------------


@pytest.mark.parametrize(
    "error, transient",
    [
        (sqlite3.OperationalError("database is locked"), True),
        (sqlite3.OperationalError("database table is locked: t"), True),
        (sqlite3.OperationalError("connection died [injected]"), True),
        (sqlite3.ProgrammingError("Cannot operate on a closed database."), True),
        (PoolRetiredError("pool retired"), True),
        (sqlite3.OperationalError("no such table: accel"), False),
        (sqlite3.ProgrammingError("Incorrect number of bindings"), False),
        (ValueError("not a backend error at all"), False),
    ],
)
def test_is_transient(error, transient):
    assert is_transient(error) is transient


def test_is_connection_death():
    assert is_connection_death(sqlite3.OperationalError("connection died"))
    assert is_connection_death(
        sqlite3.ProgrammingError("Cannot operate on a closed database.")
    )
    assert not is_connection_death(
        sqlite3.OperationalError("database is locked")
    )


# -- RetryPolicy ----------------------------------------------------------


def test_retry_policy_validates_parameters():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(max_retries=10, base=0.01, multiplier=2.0, max_backoff=0.05)
    assert policy.backoff(0) == pytest.approx(0.01)
    assert policy.backoff(1) == pytest.approx(0.02)
    assert policy.backoff(2) == pytest.approx(0.04)
    assert policy.backoff(3) == pytest.approx(0.05)  # capped
    assert policy.backoff(9) == pytest.approx(0.05)


def test_allows_is_bounded_by_max_retries():
    policy = RetryPolicy(max_retries=2)
    assert policy.allows(0, None)
    assert policy.allows(1, None)
    assert not policy.allows(2, None)


def test_allows_refuses_when_deadline_cannot_cover_backoff():
    policy = RetryPolicy(max_retries=5, base=10.0, max_backoff=10.0)
    deadline = Deadline.after(0.05)
    assert not policy.allows(0, deadline)
    roomy = Deadline.after(60.0)
    assert policy.allows(0, roomy)


def test_pause_sleeps_backoff_via_injected_sleeper():
    slept: list[float] = []
    policy = RetryPolicy(
        max_retries=3, base=0.01, multiplier=2.0, sleeper=slept.append
    )
    assert policy.pause(1, None) == pytest.approx(0.02)
    assert slept == [pytest.approx(0.02)]


def test_pause_is_capped_by_remaining_deadline():
    slept: list[float] = []
    policy = RetryPolicy(max_retries=3, base=5.0, sleeper=slept.append)
    deadline = Deadline.after(0.05)
    pause = policy.pause(0, deadline)
    assert pause <= 0.05
    assert slept and slept[0] <= 0.05


# -- CircuitBreaker -------------------------------------------------------


class Clock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_breaker_opens_after_threshold_consecutive_failures():
    clock = Clock()
    breaker = CircuitBreaker(threshold=3, reset_after=1.0, clock=clock)
    assert breaker.state == CircuitBreaker.CLOSED
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    with pytest.raises(CircuitOpenError):
        breaker.require()


def test_success_resets_the_consecutive_count():
    breaker = CircuitBreaker(threshold=3, clock=Clock())
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED


def test_half_open_admits_exactly_one_probe():
    clock = Clock()
    breaker = CircuitBreaker(threshold=1, reset_after=1.0, clock=clock)
    breaker.record_failure()
    assert not breaker.allow()
    clock.advance(1.5)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()  # the probe
    assert not breaker.allow()  # everyone else still refused
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_failed_probe_reopens_for_a_full_window():
    clock = Clock()
    breaker = CircuitBreaker(threshold=1, reset_after=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.5)
    assert breaker.allow()
    breaker.record_failure()  # probe failed
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    clock.advance(1.5)
    assert breaker.state == CircuitBreaker.HALF_OPEN


def test_breaker_threshold_must_be_positive():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)


def test_release_probe_frees_the_half_open_slot():
    clock = Clock()
    breaker = CircuitBreaker(threshold=1, reset_after=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.5)
    assert breaker.allow()  # the probe
    assert not breaker.allow()
    # the probe exits without a verdict (e.g. a deadline miss): the
    # slot frees, the breaker stays half-open, the next caller probes
    breaker.release_probe()
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED


def test_release_probe_after_a_verdict_is_a_noop():
    clock = Clock()
    breaker = CircuitBreaker(threshold=1, reset_after=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.5)
    assert breaker.allow()
    breaker.record_failure()  # the probe reported: re-open
    breaker.release_probe()  # late release must not disturb the state
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()


def test_release_probe_ignores_non_owner_threads():
    clock = Clock()
    breaker = CircuitBreaker(threshold=1, reset_after=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.5)
    assert breaker.allow()  # this thread owns the probe
    observed: list[bool] = []

    def bystander() -> None:
        breaker.release_probe()  # not the probe: must be a no-op
        observed.append(breaker.allow())

    thread = threading.Thread(target=bystander)
    thread.start()
    thread.join()
    assert observed == [False]  # the probe slot was not stolen
    breaker.release_probe()  # the owner frees it
    assert breaker.allow()


# -- AdmissionGate --------------------------------------------------------


def test_gate_capacity_must_be_positive():
    with pytest.raises(ValueError):
        AdmissionGate(0)


def test_uncapped_gate_admits_everything():
    gate = AdmissionGate(None)
    for _ in range(100):
        gate.enter()
    assert gate.inflight == 100


def test_gate_fast_fails_at_capacity_and_recovers():
    gate = AdmissionGate(2)
    gate.enter()
    gate.enter()
    with pytest.raises(ServiceOverloaded):
        gate.enter()
    gate.exit()
    gate.enter()  # freed slot is reusable
    assert gate.inflight == 2


def test_gate_slot_releases_on_error():
    gate = AdmissionGate(1)
    with pytest.raises(RuntimeError):
        with gate.slot():
            assert gate.inflight == 1
            raise RuntimeError("boom")
    assert gate.inflight == 0
    with gate.slot():
        pass
