"""Deadline enforcement through the full service stack: a stalled
backend query surfaces :class:`DeadlineExceeded` promptly (not after
the stall), poisons no cached state, and leaks no pool lease."""

from __future__ import annotations

import time

import pytest

from repro.errors import DeadlineExceeded
from repro.faults import FaultInjector, injection
from repro.obs import metrics_scope
from repro.service import QueryService

AUCTION_XML = """\
<open_auction id="1">
  <initial>15</initial>
  <bidder>
    <time>18:43</time>
    <increase>4.20</increase>
  </bidder>
</open_auction>
"""

QUERY = 'doc("auction.xml")//bidder/increase'

#: the injected stall is 10x the deadline: without real cancellation
#: the call would take the full stall
STALL_MS = 500.0
DEADLINE_S = 0.05


@pytest.fixture()
def service():
    with QueryService(workers=2) as svc:
        svc.load(AUCTION_XML, "auction.xml")
        yield svc


def test_stalled_query_misses_its_deadline_promptly(service):
    expected = service.execute(QUERY)  # warm cache + pool, no faults
    injector = FaultInjector.scripted([None, "stall"], stall_ms=STALL_MS)
    started = time.monotonic()
    with injection(injector):
        with metrics_scope() as metrics:
            with pytest.raises(DeadlineExceeded) as excinfo:
                service.execute(QUERY, deadline_s=DEADLINE_S)
    elapsed = time.monotonic() - started
    # returned once the budget ran out, far before the stall finished
    assert elapsed < STALL_MS / 1000.0 * 0.8
    assert elapsed >= DEADLINE_S
    assert excinfo.value.injected  # type: ignore[attr-defined]
    counters = metrics.snapshot()["counters"]
    assert counters["service.deadline.exceeded"] == 1
    assert counters["service.queries.failed"] == 1
    # the deadline miss is a *surfaced* injected fault in the ledger
    assert service.fault_accounting == {
        "retry": 0,
        "degrade": 0,
        "surface": 1,
    }
    # no leaked lease: a retired pool would otherwise never drain
    assert service._pool is not None and service._pool.leases == 0
    # no poisoned state: the same cached plan answers correctly, from
    # the same pool, on the very next call
    pool_before = service._pool
    assert service.execute(QUERY, deadline_s=5.0) == expected
    assert service._pool is pool_before
    # one compile: the exact-text entry plus its canonical-pattern alias
    assert service.cache.stats()["size"] == 2


def test_per_call_deadline_overrides_service_default(service):
    service.execute(QUERY)
    injector = FaultInjector.scripted([None, "stall"], stall_ms=STALL_MS)
    with injection(injector):
        # service has no default deadline; the per-call budget governs
        with pytest.raises(DeadlineExceeded):
            service.execute(QUERY, deadline_s=DEADLINE_S)


def test_service_default_deadline_applies(service):
    expected = service.execute(QUERY)
    with QueryService(deadline_s=DEADLINE_S) as governed:
        governed.load(AUCTION_XML, "auction.xml")
        assert governed.execute(QUERY) == expected  # fast query fits
        injector = FaultInjector.scripted([None, "stall"], stall_ms=STALL_MS)
        with injection(injector):
            with pytest.raises(DeadlineExceeded):
                governed.execute(QUERY)


def test_deadline_error_reports_budget_and_elapsed(service):
    service.execute(QUERY)
    injector = FaultInjector.scripted([None, "stall"], stall_ms=STALL_MS)
    with injection(injector):
        with pytest.raises(DeadlineExceeded) as excinfo:
            service.execute(QUERY, deadline_s=DEADLINE_S)
    message = str(excinfo.value)
    assert "0.05" in message  # the budget
    assert excinfo.value.budget == pytest.approx(DEADLINE_S)
    assert excinfo.value.elapsed >= DEADLINE_S


def test_spent_budget_refuses_even_a_cold_compile(service):
    # a budget far below compile time: the post-compile check refuses
    # before any backend work happens — organic, so the ledger is empty
    with pytest.raises(DeadlineExceeded):
        service.execute(QUERY, deadline_s=0.0005)
    assert service.fault_accounting["surface"] == 0
    assert service.execute(QUERY) != []


def test_non_positive_deadline_is_rejected_not_silently_disabled(service):
    # deadline_s=0 must not fall through truthiness into "no deadline"
    with pytest.raises(ValueError):
        service.execute(QUERY, deadline_s=0)
    with pytest.raises(ValueError):
        service.execute(QUERY, deadline_s=-1.0)
    assert service._admission.inflight == 0  # the slot was released
    assert service.execute(QUERY) != []


def test_absorbed_stall_stays_out_of_the_injected_ledger(service):
    expected = service.execute(QUERY)
    injector = FaultInjector.scripted([None, "stall"], stall_ms=20.0)
    with injection(injector):
        # no deadline anywhere: the stall completes and the query
        # succeeds — there is no failure for the service to handle
        assert service.execute(QUERY) == expected
    assert injector.counts.snapshot()["stall"] == 0
    assert injector.counts.total == 0
    assert injector.counts.absorbed_snapshot()["stall"] == 1
    # injected (0) == retried + degraded + surfaced (0): balanced
    assert sum(service.fault_accounting.values()) == 0


def test_stall_within_budget_is_absorbed_too(service):
    expected = service.execute(QUERY)
    injector = FaultInjector.scripted([None, "stall"], stall_ms=20.0)
    with injection(injector):
        # a roomy deadline: the stall fits and never raises
        assert service.execute(QUERY, deadline_s=30.0) == expected
    assert injector.counts.total == 0
    assert injector.counts.absorbed_snapshot()["stall"] == 1
    assert sum(service.fault_accounting.values()) == 0


def test_deadline_exceeded_through_the_worker_pool(service):
    service.execute(QUERY)
    injector = FaultInjector.scripted([None, "stall"], stall_ms=STALL_MS)
    with injection(injector):
        future = service.submit(QUERY, deadline_s=DEADLINE_S)
        with pytest.raises(DeadlineExceeded):
            future.result(timeout=30)
    assert service._admission.inflight == 0
    assert service._pool is not None and service._pool.leases == 0
