"""The hardened QueryService against scripted faults: retry, connection
recovery, pool-retirement races, degradation, breaker, admission.

Scripted injectors replay one entry per injection *opportunity*; on the
pooled path each execute is a lease opportunity followed by an execute
opportunity, so scripts interleave ``None`` placeholders accordingly.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    BackendUnavailable,
    CircuitOpenError,
    DeadlineExceeded,
    ServiceOverloaded,
)
from repro.faults import FaultInjector, injection
from repro.obs import metrics_scope
from repro.service import QueryService
from repro.service.resilience import RetryPolicy

AUCTION_XML = """\
<open_auction id="1">
  <initial>15</initial>
  <bidder>
    <time>18:43</time>
    <increase>4.20</increase>
  </bidder>
</open_auction>
"""

QUERY = 'doc("auction.xml")//bidder/increase'


def make_service(**kwargs) -> QueryService:
    service = QueryService(workers=2, **kwargs)
    service.load(AUCTION_XML, "auction.xml")
    return service


@pytest.fixture()
def expected():
    with make_service() as plain:
        return plain.execute(QUERY)


def test_busy_fault_is_retried_to_success(expected):
    with make_service() as service:
        # lease ok, first statement busy; the retry round is clean
        with injection(FaultInjector.scripted([None, "busy"])):
            with metrics_scope() as metrics:
                assert service.execute(QUERY) == expected
        counters = metrics.snapshot()["counters"]
        assert counters["service.retry.attempts"] == 1
        assert counters["faults.injected.busy"] == 1
        assert service.fault_accounting == {
            "retry": 1,
            "degrade": 0,
            "surface": 0,
        }
        assert service._pool is not None and service._pool.leases == 0


def test_connection_death_discards_and_retries_on_fresh_connection(expected):
    with make_service() as service:
        with injection(FaultInjector.scripted([None, "disconnect"])):
            with metrics_scope() as metrics:
                assert service.execute(QUERY) == expected
        counters = metrics.snapshot()["counters"]
        assert counters["service.pool.discarded_connections"] == 1
        assert counters["service.retry.attempts"] == 1
        assert service.fault_accounting["retry"] == 1


def test_injected_retirement_race_rebuilds_the_pool(expected):
    with make_service() as service:
        assert service.execute(QUERY) == expected  # build the first pool
        first_pool = service._pool
        with injection(FaultInjector.scripted(["retire"])):
            assert service.execute(QUERY) == expected
        assert service._pool is not first_pool
        assert first_pool.retired
        assert service.fault_accounting["retry"] == 1


def test_exhausted_retries_degrade_to_fresh_uncached_answer(expected):
    with make_service(retry=RetryPolicy(max_retries=1, base=0.001)) as service:
        script = [None, "busy", None, "busy"]  # both attempts fail
        with injection(FaultInjector.scripted(script)):
            with metrics_scope() as metrics:
                assert service.execute(QUERY) == expected
        counters = metrics.snapshot()["counters"]
        assert counters["service.retry.exhausted"] == 1
        assert counters["service.degrade.fallbacks"] == 1
        assert counters["service.degrade.queries"] == 1
        assert service.fault_accounting == {
            "retry": 1,
            "degrade": 1,
            "surface": 0,
        }


def test_degrade_disabled_surfaces_backend_unavailable(expected):
    with make_service(
        retry=RetryPolicy(max_retries=0), degrade=False
    ) as service:
        with injection(FaultInjector.scripted([None, "busy"])):
            with pytest.raises(BackendUnavailable):
                service.execute(QUERY)
        assert service.fault_accounting == {
            "retry": 0,
            "degrade": 0,
            "surface": 1,
        }
        # the failure was contained: the very next call answers
        assert service.execute(QUERY) == expected
        assert service._pool.leases == 0


def test_open_breaker_fastpaths_to_degraded_answers(expected):
    with make_service(
        retry=RetryPolicy(max_retries=0), breaker_threshold=1
    ) as service:
        with injection(FaultInjector.scripted([None, "busy"])):
            with metrics_scope() as metrics:
                assert service.execute(QUERY) == expected  # trips the breaker
                assert service._breaker.state == "open"
                assert service.execute(QUERY) == expected  # short-circuited
        counters = metrics.snapshot()["counters"]
        assert counters["service.degrade.breaker_fastpath"] == 1
        assert counters["service.breaker.opened"] == 1
        # the fastpath consumed no injection: the ledger holds one fault
        assert sum(service.fault_accounting.values()) == 1


def test_open_breaker_without_degradation_raises_circuit_open(expected):
    with make_service(
        retry=RetryPolicy(max_retries=0),
        breaker_threshold=1,
        breaker_reset_s=30.0,
        degrade=False,
    ) as service:
        with injection(FaultInjector.scripted([None, "busy"])):
            with pytest.raises(BackendUnavailable):
                service.execute(QUERY)
            with pytest.raises(CircuitOpenError):
                service.execute(QUERY)


def test_breaker_recovers_through_half_open_probe(expected):
    with make_service(
        retry=RetryPolicy(max_retries=0), breaker_threshold=1,
        breaker_reset_s=0.0, degrade=False,
    ) as service:
        with injection(FaultInjector.scripted([None, "busy"])):
            with pytest.raises(BackendUnavailable):
                service.execute(QUERY)
        # reset window (0 s) elapsed: the next call is the probe, the
        # injector script is exhausted, so it succeeds and closes
        assert service.execute(QUERY) == expected
        assert service._breaker.state == "closed"


def test_probe_deadline_miss_does_not_wedge_the_breaker(expected):
    with make_service(
        retry=RetryPolicy(max_retries=0), breaker_threshold=1,
        breaker_reset_s=0.0, degrade=False,
    ) as service:
        # trip the breaker, then let the half-open probe stall past its
        # deadline: the probe dies with DeadlineExceeded, never calling
        # record_success/record_failure
        script = [None, "busy", None, "stall"]
        with injection(FaultInjector.scripted(script, stall_ms=500.0)):
            with pytest.raises(BackendUnavailable):
                service.execute(QUERY)
            with pytest.raises(DeadlineExceeded):
                service.execute(QUERY, deadline_s=0.05)
        # the probe slot was released on the way out: the next call is
        # admitted as a fresh probe, succeeds, and closes the breaker —
        # a leaked slot would refuse every call here forever
        assert service.execute(QUERY) == expected
        assert service._breaker.state == "closed"


def test_queue_cap_fast_fails_with_service_overloaded(expected):
    with make_service(queue_cap=1) as service:
        service._admission.enter()  # occupy the only slot
        try:
            with pytest.raises(ServiceOverloaded):
                service.execute(QUERY)
            with pytest.raises(ServiceOverloaded):
                service.submit(QUERY)
        finally:
            service._admission.exit()
        assert service.execute(QUERY) == expected
        assert service._admission.inflight == 0


def test_cancelled_queued_future_releases_its_admission_slot(expected):
    with QueryService(workers=1, queue_cap=1) as service:
        service.load(AUCTION_XML, "auction.xml")
        unblock = threading.Event()
        # wedge the only worker so the next submission stays queued
        service._ensure_executor().submit(unblock.wait)
        try:
            future = service.submit(QUERY)  # queued; holds the one slot
            with pytest.raises(ServiceOverloaded):
                service.submit(QUERY)
            assert future.cancel()  # _task never runs for this future
            # the done-callback released the slot anyway
            assert service._admission.inflight == 0
        finally:
            unblock.set()
        assert service.submit(QUERY).result(timeout=30) == expected


def test_run_many_drains_submitted_work_when_a_submit_overloads(expected):
    with QueryService(workers=1, queue_cap=1) as service:
        service.load(AUCTION_XML, "auction.xml")
        unblock = threading.Event()
        # wedge the only worker: the first batch entry queues, the
        # second overflows the admission cap mid-batch
        service._ensure_executor().submit(unblock.wait)
        try:
            with pytest.raises(ServiceOverloaded):
                service.run_many([QUERY, QUERY])
            # the already-submitted future was cancelled, not abandoned
            assert service._admission.inflight == 0
        finally:
            unblock.set()
        assert service.run_many([QUERY]) == [expected]


def test_submit_path_recovers_from_faults_too(expected):
    with make_service() as service:
        with injection(FaultInjector.scripted([None, "busy"])):
            future = service.submit(QUERY)
            assert future.result(timeout=30) == expected
        assert service._admission.inflight == 0


def test_stats_expose_the_resilience_block(expected):
    with make_service(deadline_s=5.0, queue_cap=16) as service:
        service.execute(QUERY)
        resilience = service.stats()["resilience"]
        assert resilience["deadline_s"] == 5.0
        assert resilience["queue_cap"] == 16
        assert resilience["breaker"] == "closed"
        assert resilience["degrade"] is True
        assert resilience["fault_accounting"] == {
            "retry": 0,
            "degrade": 0,
            "surface": 0,
        }


def test_organic_faults_recover_but_stay_off_the_ledger(expected):
    with make_service() as service:
        assert service.execute(QUERY) == expected
        # an *organic* retirement (no injector): the service must
        # recover identically but account nothing
        service._pool.retire()
        assert service.execute(QUERY) == expected
        assert service.fault_accounting == {
            "retry": 0,
            "degrade": 0,
            "surface": 0,
        }
