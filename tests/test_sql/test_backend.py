"""SQLite back-end tests: schema, index DDL, stacked SQL execution."""

import pytest

from repro.infoset import shred
from repro.pipeline import XQueryProcessor
from repro.sql import SQLiteBackend, TABLE6_INDEXES, generate_stacked_sql


@pytest.fixture()
def backend(fig2_store):
    with SQLiteBackend(fig2_store.table) as b:
        yield b


def test_doc_table_loaded(backend):
    rows = backend.run_raw("SELECT COUNT(*) FROM doc")
    assert rows == [(10,)]


def test_table6_indexes_created(backend):
    names = {
        r[0]
        for r in backend.run_raw(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )
    }
    assert set(TABLE6_INDEXES) <= names


def test_primary_key_is_pre(backend):
    row = backend.run_raw("SELECT name, value FROM doc WHERE pre = 2")
    assert row == [("id", "1")]


def test_custom_index_set():
    table = shred("<a><b/></a>")
    with SQLiteBackend(table, indexes={}) as bare:
        names = bare.run_raw(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )
        assert names == []


def test_stacked_sql_uses_window_functions(fig2_store):
    processor = XQueryProcessor(store=fig2_store)
    compiled = processor.compile(
        'for $x in doc("auction.xml")//bidder return $x/child::*'
    )
    stacked = generate_stacked_sql(compiled.stacked_plan)
    assert "RANK() OVER" in stacked.text
    assert stacked.text.startswith("WITH ")
    assert processor.backend.run(stacked) == [6, 8]


def test_explain_reports_index_usage(fig2_store):
    processor = XQueryProcessor(store=fig2_store)
    compiled = processor.compile('doc("auction.xml")//bidder')
    plan_lines = processor.backend.explain(compiled.joingraph_sql)
    assert any("idx_" in line for line in plan_lines)


def test_bulk_load_records_load_metric(fig2_store):
    from repro.obs import metrics_scope

    with metrics_scope() as metrics:
        with SQLiteBackend(fig2_store.table):
            pass
    load_ns = metrics.snapshot()["histograms"].get("sql.load_ns")
    assert load_ns is not None and load_ns["count"] == 1
    assert load_ns["total"] > 0


def test_attach_only_connection_sees_shared_database():
    table = shred("<a><b/></a>")
    uri = "file:test-backend-shared?mode=memory&cache=shared"
    with SQLiteBackend(table, database=uri, uri=True) as primary:
        with SQLiteBackend(None, database=uri, uri=True, load=False) as worker:
            assert worker.run_raw("SELECT COUNT(*) FROM doc") == [(3,)]
        assert primary.run_raw("SELECT COUNT(*) FROM doc") == [(3,)]


def test_attach_only_requires_no_table_but_load_does():
    with pytest.raises(ValueError):
        SQLiteBackend(None)
