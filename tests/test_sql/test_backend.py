"""SQLite back-end tests: schema, index DDL, stacked SQL execution."""

import pytest

from repro.infoset import shred
from repro.pipeline import XQueryProcessor
from repro.sql import SQLiteBackend, TABLE6_INDEXES, generate_stacked_sql


@pytest.fixture()
def backend(fig2_store):
    with SQLiteBackend(fig2_store.table) as b:
        yield b


def test_doc_table_loaded(backend):
    rows = backend.run_raw("SELECT COUNT(*) FROM doc")
    assert rows == [(10,)]


def test_table6_indexes_created(backend):
    names = {
        r[0]
        for r in backend.run_raw(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )
    }
    assert set(TABLE6_INDEXES) <= names


def test_primary_key_is_pre(backend):
    row = backend.run_raw("SELECT name, value FROM doc WHERE pre = 2")
    assert row == [("id", "1")]


def test_custom_index_set():
    table = shred("<a><b/></a>")
    with SQLiteBackend(table, indexes={}) as bare:
        names = bare.run_raw(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )
        assert names == []


def test_stacked_sql_uses_window_functions(fig2_store):
    processor = XQueryProcessor(store=fig2_store)
    compiled = processor.compile(
        'for $x in doc("auction.xml")//bidder return $x/child::*'
    )
    stacked = generate_stacked_sql(compiled.stacked_plan)
    assert "RANK() OVER" in stacked.text
    assert stacked.text.startswith("WITH ")
    assert processor.backend.run(stacked) == [6, 8]


def test_explain_reports_index_usage(fig2_store):
    processor = XQueryProcessor(store=fig2_store)
    compiled = processor.compile('doc("auction.xml")//bidder')
    plan_lines = processor.backend.explain(compiled.joingraph_sql)
    assert any("idx_" in line for line in plan_lines)
