"""Paper Fig. 8: the SQL encoding of Q1's join graph."""

import re

import pytest

from repro.pipeline import XQueryProcessor

Q1 = 'doc("auction.xml")/descendant::open_auction[bidder]'


@pytest.fixture()
def q1_sql(fig2_store):
    processor = XQueryProcessor(store=fig2_store)
    return processor.compile(Q1).joingraph_sql


def test_three_fold_self_join(q1_sql):
    """QSQL1 is a three-fold self-join of table doc."""
    assert q1_sql.doc_instances == 3
    assert q1_sql.text.count("doc AS") == 3


def test_select_distinct_single_result_column(q1_sql):
    """SELECT DISTINCT d2.pre — the open_auction instance's pre rank;
    our SELECT list may merge equal expressions into one alias."""
    assert q1_sql.distinct
    first_line = q1_sql.text.splitlines()[0]
    assert first_line.startswith("SELECT DISTINCT")
    # the item column is one alias's pre
    assert re.search(r"d\d+\.pre AS item", first_line)


def test_where_clause_content(q1_sql):
    """Node tests as kind/name equalities, axis steps as pre/size
    range conjuncts, child axis with the level adjacency."""
    where = q1_sql.text.split("WHERE", 1)[1]
    assert "= 'auction.xml'" in where
    assert "= 'open_auction'" in where
    assert "= 'bidder'" in where
    assert re.search(r"d\d+\.pre < d\d+\.pre", where)
    assert re.search(r"d\d+\.pre <= d\d+\.pre \+ d\d+\.size", where)
    assert re.search(r"d\d+\.level \+ 1 = d\d+\.level", where)


def test_order_by_result_pre(q1_sql):
    assert q1_sql.order_by
    assert q1_sql.text.strip().splitlines()[-1].startswith("ORDER BY")


def test_no_window_functions_or_subqueries(q1_sql):
    """The paper's point: plain SELECT-DISTINCT-FROM-WHERE-ORDER BY,
    no SQL/XML, no RANK(), no nesting."""
    text = q1_sql.text.upper()
    assert "RANK(" not in text
    assert "WITH " not in text
    assert text.count("SELECT") == 1


def test_executes_on_sqlite(fig2_store, q1_sql):
    processor = XQueryProcessor(store=fig2_store)
    assert processor.backend.run(q1_sql) == [1]
