"""Paper Fig. 9: the SQL encoding of Q2 — plan tail focus: the ORDER BY
and DISTINCT clauses reflect XQuery sequence order and duplicate
semantics."""

import re

import pytest

from repro.pipeline import XQueryProcessor
from repro.workloads import PAPER_QUERIES


@pytest.fixture(scope="module")
def q2_compiled(xmark_store):
    processor = XQueryProcessor(store=xmark_store, default_doc="auction.xml")
    return processor.compile(PAPER_QUERIES["Q2"].text)


def test_self_join_chain_size(q2_compiled):
    """The paper reports a 12-fold self-join; our compiler emits a few
    more instances (no step-knowledge-based order pruning), but the
    chain stays flat and compact."""
    sql = q2_compiled.joingraph_sql
    assert 12 <= sql.doc_instances <= 24


def test_order_by_loop_nesting(q2_compiled):
    """Fig. 9: ORDER BY lists the three for-loop binding keys before
    the result node order — nesting determines sequence order."""
    sql = q2_compiled.joingraph_sql
    assert len(sql.order_by) >= 3
    # order criteria are pre ranks of distinct aliases
    aliases = {term.split(".")[0].lstrip("+") for term in sql.order_by}
    assert len(aliases) >= 3


def test_distinct_retains_loop_keys(q2_compiled):
    """Duplicates are removed per location step but retained across
    for iterations: the loop keys appear in the DISTINCT clause."""
    sql = q2_compiled.joingraph_sql
    assert sql.distinct
    select_line = sql.text.splitlines()[0]
    pre_columns = set(re.findall(r"(d\d+\.pre)", select_line))
    assert len(pre_columns) >= 4  # item + three loop keys


def test_where_contains_value_join_and_price_predicate(q2_compiled):
    where = q2_compiled.joingraph_sql.text.split("WHERE", 1)[1]
    assert re.search(r"d\d+\.value = d\d+\.value", where)
    assert re.search(r"d\d+\.data > 500", where)
    assert "'closed_auction'" in where
    assert "'itemref'" in where
    assert "'incategory'" in where


def test_no_rowids_survive_isolation(q2_compiled):
    """Rule (21) grounds iteration identity in pre values: no
    ROW_NUMBER / surrogate machinery reaches the SQL."""
    text = q2_compiled.joingraph_sql.text.upper()
    assert "ROW_NUMBER" not in text
    assert "RANK(" not in text


def test_q2_runs_and_matches_reference(xmark_store, q2_compiled):
    processor = XQueryProcessor(store=xmark_store, default_doc="auction.xml")
    reference = processor.execute(q2_compiled, engine="interpreter")
    assert processor.execute(q2_compiled, engine="joingraph-sql") == reference
