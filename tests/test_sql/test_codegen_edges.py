"""Codegen edge cases and error paths."""

import pytest

from repro.algebra import (
    Comparison,
    Distinct,
    DocScan,
    LitTable,
    Project,
    RowId,
    Select,
    Serialize,
    col,
    lit,
)
from repro.errors import CodegenError
from repro.pipeline import XQueryProcessor
from repro.sql import flatten_query, generate_join_graph_sql
from repro.sql.codegen import _conjunct_aliases, _mapping_to_rename


def test_unisolated_plan_rejected(fig2_store):
    """The single-block generator refuses plans with blocking
    operators in the graph region (e.g. a surviving row id)."""
    doc = DocScan(fig2_store)
    body = RowId(Select(doc, Comparison("=", col("kind"), lit(1))), "rid")
    plan = Serialize(Project(body, [("item", "pre"), ("pos", "rid")]))
    with pytest.raises(CodegenError):
        generate_join_graph_sql(plan)


def test_multirow_literal_rejected():
    body = LitTable(("item", "pos"), [(1, 1), (2, 2)])
    with pytest.raises(CodegenError):
        generate_join_graph_sql(Serialize(body))


def test_single_row_literal_becomes_constants():
    body = LitTable(("item", "pos"), [(7, 1)])
    sql = generate_join_graph_sql(Serialize(body))
    assert "7 AS item" in sql.text
    assert sql.doc_instances == 0


def test_empty_literal_is_impossible():
    body = LitTable(("item", "pos"), [])
    flat = flatten_query(Serialize(body))
    assert flat.impossible
    sql = generate_join_graph_sql(Serialize(LitTable(("item", "pos"), [])))
    assert "1 = 0" in sql.text


def test_empty_result_query_executes(fig2_store):
    processor = XQueryProcessor(store=fig2_store)
    compiled = processor.compile('doc("missing.xml")//a')
    assert processor.execute(compiled) == []


def test_conjunct_alias_extraction():
    conjunct = Comparison("=", col("d3.pre"), col("d11.pre"))
    assert _conjunct_aliases(conjunct) == {"d3", "d11"}
    assert _conjunct_aliases(Comparison("=", col("d3.pre"), lit(1))) == {"d3"}


def test_mapping_to_rename_covers_all_doc_columns():
    rename = _mapping_to_rename({"d9": "d2"})
    assert rename["d9.pre"] == "d2.pre"
    assert rename["d9.value"] == "d2.value"
    assert len(rename) == 7


def test_order_by_uses_unary_plus_hint(fig2_store):
    processor = XQueryProcessor(store=fig2_store)
    sql = processor.compile('doc("auction.xml")//bidder').joingraph_sql
    order_line = sql.text.strip().splitlines()[-1]
    assert order_line.startswith("ORDER BY +")


def test_distinct_only_when_tail_delta_present(fig2_store):
    processor = XQueryProcessor(store=fig2_store)
    sql = processor.compile('doc("auction.xml")//bidder[time]').joingraph_sql
    assert sql.distinct


def test_flatten_query_does_not_mutate_plan(fig2_store):
    from repro.algebra.dagutils import plan_fingerprint

    processor = XQueryProcessor(store=fig2_store)
    compiled = processor.compile('doc("auction.xml")//bidder[time]')
    before = plan_fingerprint(compiled.isolated_plan)
    flatten_query(compiled.isolated_plan)
    flatten_query(compiled.isolated_plan)
    assert plan_fingerprint(compiled.isolated_plan) == before


def test_tail_distinct_retains_loop_keys_after_merging(xmark_store):
    """Witness merging must never merge away an alias that carries a
    loop key surfacing in the DISTINCT basis."""
    processor = XQueryProcessor(store=xmark_store, default_doc="auction.xml")
    query = (
        "for $a in //open_auction for $b in //open_auction "
        "return $b/initial"
    )
    compiled = processor.compile(query)
    reference = processor.execute(compiled, engine="interpreter")
    assert processor.execute(compiled, engine="joingraph-sql") == reference
    # nested iteration over the same n auctions yields n copies of each
    # of the n initial elements: duplicates retained across iterations
    distinct = len(set(reference))
    assert reference and len(reference) == distinct * distinct
