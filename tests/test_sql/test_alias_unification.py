"""Tests for the codegen-level alias unification and witness merging
(the passes that recover the paper's compact self-join chains from
DAG-expanded plans)."""

import pytest

from repro.algebra import run_plan
from repro.compiler import compile_core
from repro.infoset import DocumentStore
from repro.rewrite import isolate
from repro.sql import SQLiteBackend, flatten_query, generate_join_graph_sql
from repro.xquery import normalize, parse_xquery

XML = """\
<site>
  <a id="1"><p>600</p><q>x</q></a>
  <a id="2"><p>10</p><q>y</q></a>
  <a id="3"><p>700</p><q>x</q></a>
</site>
"""


@pytest.fixture()
def store():
    s = DocumentStore()
    s.load(XML, "s.xml")
    return s


def isolated_for(store, query):
    core = normalize(parse_xquery(query))
    return isolate(compile_core(core, store))[0]


def test_key_equal_aliases_merge(store):
    """A for-loop rebinding references the binding node from several
    plan positions; the flat SQL keeps ONE alias for them."""
    query = 'for $x in doc("s.xml")//a[p > 500] return $x/q'
    plan = isolated_for(store, query)
    flat = flatten_query(plan)
    # a, p, q, doc-root = 4 genuine roles; duplicates must be merged
    assert len(flat.aliases) <= 8
    with SQLiteBackend(store.table) as backend:
        reference = run_plan(plan)
        assert backend.run(generate_join_graph_sql(plan)) == reference


def test_redundant_witnesses_dropped(store):
    """Repeated expansions of a shared condition subplan collapse to
    one witness under the tail DISTINCT."""
    query = (
        'for $x in doc("s.xml")//a[p > 500] '
        'for $y in doc("s.xml")//a[p > 500] '
        "return $y/q"
    )
    plan = isolated_for(store, query)
    flat = flatten_query(plan)
    sql = generate_join_graph_sql(plan)
    # the p>500 chain appears for $x and $y plus condition references;
    # witness merging keeps the alias count well below the raw
    # expansion count
    assert sql.doc_instances == len(flat.aliases) <= 10
    with SQLiteBackend(store.table) as backend:
        assert backend.run(sql) == run_plan(plan)


def test_unification_preserves_multiplicity_semantics(store):
    """Merging must never change the result sequence — loop iteration
    duplicates included."""
    query = (
        'for $x in doc("s.xml")//a for $y in doc("s.xml")//a[q = "x"] '
        "return $y"
    )
    plan = isolated_for(store, query)
    reference = run_plan(plan)
    assert len(reference) == 6  # 3 iterations x 2 matches, dups retained
    with SQLiteBackend(store.table) as backend:
        assert backend.run(generate_join_graph_sql(plan)) == reference


def test_flat_query_exposes_structure(store):
    flat = flatten_query(isolated_for(store, 'doc("s.xml")//a[p > 500]'))
    assert flat.aliases
    assert flat.conjuncts
    assert flat.distinct is not None
    assert not flat.impossible
    rendered = " ".join(repr(c) for c in flat.conjuncts)
    assert "data > 500" in rendered
