"""Unit tests for the table algebra reference interpreter."""

import pytest

from repro.algebra import (
    And,
    Attach,
    Comparison,
    Cross,
    Distinct,
    DocScan,
    Join,
    LitTable,
    Or,
    Plus,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
    col,
    evaluate,
    lit,
    run_plan,
)
from repro.errors import RewriteError
from repro.infoset import DocumentStore


def table(cols, rows):
    return LitTable(cols, rows)


def test_project_renames_and_duplicates_columns():
    t = table(("a", "b"), [(1, 2), (3, 4)])
    p = Project(t, [("x", "a"), ("y", "a"), ("b", "b")])
    result = evaluate(p)
    assert result.columns == ("x", "y", "b")
    assert result.rows == [(1, 1, 2), (3, 3, 4)]


def test_select_null_comparisons_are_false():
    t = table(("a",), [(1,), (None,), (3,)])
    s = Select(t, Comparison("<", col("a"), lit(2)))
    assert evaluate(s).rows == [(1,)]
    s2 = Select(t, Comparison("!=", col("a"), lit(1)))
    assert evaluate(s2).rows == [(3,)]  # NULL != 1 is not true


def test_join_preserves_duplicates():
    left = table(("a",), [(1,), (1,)])
    right = table(("b",), [(1,), (1,)])
    j = Join(left, right, Comparison("=", col("a"), col("b")))
    assert len(evaluate(j).rows) == 4  # tables, not relations


def test_join_schema_overlap_rejected():
    left = table(("a",), [(1,)])
    with pytest.raises(RewriteError):
        Join(left, table(("a",), [(1,)]), Comparison("=", col("a"), col("a")))


def test_theta_join_with_range_predicate():
    left = table(("lo", "hi"), [(1, 3), (5, 6)])
    right = table(("v",), [(0,), (2,), (3,), (5,), (7,)])
    pred = And(
        [
            Comparison("<", col("lo"), col("v")),
            Comparison("<=", col("v"), col("hi")),
        ]
    )
    j = Join(left, right, pred)
    assert sorted(evaluate(j).rows) == [(1, 3, 2), (1, 3, 3)]


def test_band_join_with_arithmetic_bound():
    # mirrors the axis predicate shape: c < v <= c + w
    left = table(("v",), [(i,) for i in range(10)])
    right = table(("c", "w"), [(2, 3)])
    pred = And(
        [
            Comparison("<", col("c"), col("v")),
            Comparison("<=", col("v"), Plus(col("c"), col("w"))),
        ]
    )
    rows = evaluate(Join(left, right, pred)).rows
    assert sorted(r[0] for r in rows) == [3, 4, 5]


def test_join_with_or_predicate_falls_back():
    left = table(("a",), [(1,), (2,)])
    right = table(("b",), [(1,), (9,)])
    pred = Or(
        [Comparison("=", col("a"), col("b")), Comparison("=", col("b"), lit(9))]
    )
    rows = evaluate(Join(left, right, pred)).rows
    assert sorted(rows) == [(1, 1), (1, 9), (2, 9)]


def test_distinct_keeps_first_occurrence_order():
    t = table(("a",), [(2,), (1,), (2,), (1,)])
    assert evaluate(Distinct(t)).rows == [(2,), (1,)]


def test_attach_and_rowid():
    t = table(("a",), [(7,), (8,)])
    a = Attach(t, "c", "x")
    assert evaluate(a).rows == [(7, "x"), (8, "x")]
    r = RowId(a, "i")
    assert evaluate(r).rows == [(7, "x", 1), (8, "x", 2)]


def test_rank_with_ties_and_gaps():
    t = table(("a",), [(10,), (20,), (10,), (30,)])
    r = RowRank(t, "rk", ("a",))
    result = evaluate(r)
    ranks = {row[0]: row[1] for row in result.rows}
    assert ranks[10] == 1 and ranks[20] == 3 and ranks[30] == 4  # RANK()


def test_rank_multi_column_lexicographic():
    t = table(("a", "b"), [(1, 2), (1, 1), (0, 9)])
    r = RowRank(t, "rk", ("a", "b"))
    by_row = {row[:2]: row[2] for row in evaluate(r).rows}
    assert by_row[(0, 9)] == 1
    assert by_row[(1, 1)] == 2
    assert by_row[(1, 2)] == 3


def test_rank_nulls_first():
    t = table(("a",), [(5,), (None,)])
    r = RowRank(t, "rk", ("a",))
    by_row = {row[0]: row[1] for row in evaluate(r).rows}
    assert by_row[None] == 1 and by_row[5] == 2


def test_serialize_orders_by_pos_then_item():
    t = table(("pos", "item"), [(2, 9), (1, 5), (2, 3)])
    assert run_plan(Serialize(t)) == [5, 3, 9]


def test_cross_product():
    c = Cross(table(("a",), [(1,), (2,)]), table(("b",), [(3,)]))
    assert evaluate(c).rows == [(1, 3), (2, 3)]


def test_docscan_returns_encoding(fig2_store: DocumentStore):
    result = evaluate(DocScan(fig2_store))
    assert result.columns == ("pre", "size", "level", "kind", "name", "value", "data")
    assert len(result.rows) == 10


def test_dag_sharing_evaluated_once(fig2_store: DocumentStore):
    doc = DocScan(fig2_store)
    s1 = Select(doc, Comparison("=", col("kind"), lit(1)))
    p1 = Project(s1, [("a", "pre")])
    p2 = Project(s1, [("b", "pre")])
    j = Join(p1, p2, Comparison("=", col("a"), col("b")))
    cache: dict = {}
    evaluate(j, cache)
    assert id(s1) in cache  # shared node memoized
