"""Property inference tests (paper Tables 2–5)."""

from repro.algebra import (
    Attach,
    Comparison,
    Cross,
    Distinct,
    DocScan,
    Join,
    LitTable,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
    col,
    infer_properties,
    lit,
)


def rows(*values):
    return [(v,) for v in values]


def test_icols_seeded_at_serialize():
    t = LitTable(("iter", "pos", "item"), [(1, 1, 5)])
    root = Serialize(t)
    props = infer_properties(root)
    assert props.icols(t) == {"pos", "item"}


def test_icols_through_projection_rename():
    t = LitTable(("a", "b", "c"), [(1, 2, 3)])
    p = Project(t, [("item", "a"), ("pos", "b"), ("x", "c")])
    root = Serialize(p)
    props = infer_properties(root)
    assert props.icols(t) == {"a", "b"}  # c not needed


def test_icols_include_predicate_columns():
    t = LitTable(("item", "pos", "f"), [(1, 1, 0)])
    s = Select(t, Comparison("=", col("f"), lit(0)))
    props = infer_properties(Serialize(s))
    assert "f" in props.icols(t)


def test_icols_union_over_shared_consumers():
    t = LitTable(("item", "pos", "a", "b"), [(1, 1, 2, 3)])
    p1 = Project(t, [("item", "item"), ("pos", "pos"), ("x", "a")])
    p2 = Project(t, [("y", "b")])
    # p1 feeds serialize; p2 feeds a select whose pred needs y
    s = Select(p1, Comparison("=", col("x"), lit(2)))
    root = Serialize(s)
    props = infer_properties(root)
    assert props.icols(t) >= {"item", "pos", "a"}
    del p2


def test_const_from_attach_and_literal():
    t = LitTable(("a",), [(1,), (2,)])
    at = Attach(t, "c", 7)
    props = infer_properties(Serialize(Project(at, [("item", "a"), ("pos", "c")])))
    assert props.const(at)["c"] == 7
    single = LitTable(("x", "y"), [(1, "v")])
    props2 = infer_properties(
        Serialize(Project(single, [("item", "x"), ("pos", "y")]))
    )
    assert props2.const(single) == {"x": 1, "y": "v"}


def test_const_propagates_through_join():
    left = Attach(LitTable(("a",), [(1,)]), "c", 5)
    right = LitTable(("b",), [(1,)])
    j = Join(left, right, Comparison("=", col("a"), col("b")))
    props = infer_properties(Serialize(Project(j, [("item", "a"), ("pos", "c")])))
    assert props.const(j) == {"c": 5, "a": 1, "b": 1}


def test_keys_docscan_and_rowid():
    doc = DocScan.__new__(DocScan)  # structural only; no store access
    # use a literal stand-in instead: unique column detection
    t = LitTable(("a", "b"), [(1, 5), (2, 5)])
    r = RowId(t, "i")
    props = infer_properties(Serialize(Project(r, [("item", "a"), ("pos", "i")])))
    assert frozenset(("i",)) in props.keys(r)
    assert frozenset(("a",)) in props.keys(t)  # unique literal column
    del doc


def test_keys_distinct_adds_full_columns():
    t = LitTable(("a", "b"), [(1, 1), (1, 1), (2, 1)])
    d = Distinct(t)
    props = infer_properties(Serialize(Project(d, [("item", "a"), ("pos", "b")])))
    # δ makes the full column set a key; b is constant, so the
    # const-reduction strengthens it to {a}
    assert any(k <= frozenset(("a", "b")) for k in props.keys(d))


def test_keys_const_reduction():
    """A key containing a constant column shrinks by it — needed for
    rule (16) to find tail keys at the top-level pseudo loop."""
    t = LitTable(("a", "b"), [(1, 7), (2, 7)])
    d = Distinct(t)  # key {a, b}
    props = infer_properties(Serialize(Project(d, [("item", "a"), ("pos", "b")])))
    assert frozenset(("a",)) in props.keys(d)  # b is constant 7


def test_keys_equijoin_with_singleton_key_side():
    left = LitTable(("a", "x"), [(1, 8), (2, 9), (3, 9)])  # 'a' is a key
    right = LitTable(("b", "c"), [(1, 10), (2, 20)])  # 'b' is a key
    j = Join(left, right, Comparison("=", col("a"), col("b")))
    props = infer_properties(Serialize(Project(j, [("item", "a"), ("pos", "c")])))
    keys = props.keys(j)
    # {b} key on the probe side: each left row matches at most once,
    # so the left key {a} remains a key of the join output
    assert frozenset(("a",)) in keys
    # and symmetrically the right key survives
    assert frozenset(("b",)) in keys or frozenset(("c",)) in keys


def test_keys_equijoin_without_keys_yields_none():
    left = LitTable(("a",), [(1,), (2,), (2,)])  # duplicates: no key
    right = LitTable(("b", "c"), [(1, 10), (2, 20)])
    j = Join(left, right, Comparison("=", col("a"), col("b")))
    props = infer_properties(Serialize(Project(j, [("item", "a"), ("pos", "c")])))
    assert props.keys(j) == frozenset()


def test_rank_key_inference():
    t = LitTable(("a", "b"), [(1, 1), (1, 2), (2, 1)])
    d = Distinct(t)  # key {a,b}
    r = RowRank(d, "rk", ("b",))
    props = infer_properties(Serialize(Project(r, [("item", "a"), ("pos", "rk")])))
    # rank + (key minus order cols) is a key: {rk, a}
    assert frozenset(("rk", "a")) in props.keys(r)


def test_set_property_below_distinct():
    t = LitTable(("a",), [(1,), (1,)])
    d = Distinct(t)
    root = Serialize(Project(d, [("item", "a"), ("pos", "a")]))
    props = infer_properties(root)
    assert props.set_prop(t) is True
    assert props.set_prop(d) is False  # nothing dedups above δ


def test_set_property_blocked_by_rowid():
    t = LitTable(("a",), [(1,), (1,)])
    r = RowId(t, "i")
    d = Distinct(r)
    props = infer_properties(Serialize(Project(d, [("item", "a"), ("pos", "i")])))
    assert props.set_prop(t) is False  # row id sees multiplicities


def test_set_property_and_across_consumers():
    t = LitTable(("a",), [(1,), (1,)])
    d1 = Distinct(t)
    j = Join(
        Project(d1, [("x", "a")]),
        Project(t, [("y", "a")]),
        Comparison("=", col("x"), col("y")),
    )
    props = infer_properties(Serialize(Project(j, [("item", "x"), ("pos", "y")])))
    # t is consumed both below a δ and directly by the join: not set
    assert props.set_prop(t) is False


def test_cross_keys_are_unions():
    left = LitTable(("a",), [(1,), (2,)])
    right = LitTable(("b",), [(5,), (6,)])
    c = Cross(left, right)
    props = infer_properties(Serialize(Project(c, [("item", "a"), ("pos", "b")])))
    assert frozenset(("a", "b")) in props.keys(c)
