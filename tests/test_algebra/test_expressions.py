"""Expression tree unit tests: evaluation, renaming, substitution,
SQL rendering, structural equality."""

import pytest

from repro.algebra.expressions import (
    And,
    ColRef,
    Comparison,
    Const,
    In,
    MIRRORED,
    Or,
    Plus,
    col,
    conjoin,
    conjuncts,
    lit,
)


def test_evaluate_arithmetic_and_comparison():
    expr = Comparison("<=", col("a"), Plus(col("b"), lit(2)))
    assert expr.evaluate({"a": 5, "b": 3}) is True
    assert expr.evaluate({"a": 6, "b": 3}) is False


def test_null_semantics():
    assert Comparison("=", col("a"), lit(1)).evaluate({"a": None}) is False
    assert Comparison("!=", col("a"), lit(1)).evaluate({"a": None}) is False
    assert Plus(col("a"), lit(1)).evaluate({"a": None}) is None


def test_and_or_flatten():
    a, b, c = (Comparison("=", col(x), lit(1)) for x in "abc")
    nested = And([a, And([b, c])])
    assert len(nested.parts) == 3
    nested_or = Or([a, Or([b, c])])
    assert len(nested_or.parts) == 3


def test_structural_equality_and_hash():
    e1 = Comparison("<", col("a"), Plus(col("b"), lit(1)))
    e2 = Comparison("<", col("a"), Plus(col("b"), lit(1)))
    e3 = Comparison("<", col("a"), Plus(col("b"), lit(2)))
    assert e1 == e2 and hash(e1) == hash(e2)
    assert e1 != e3
    assert len({e1, e2, e3}) == 2


def test_rename():
    expr = And([Comparison("=", col("a"), col("b")), Comparison(">", col("a"), lit(0))])
    renamed = expr.rename({"a": "x"})
    assert renamed.cols() == {"x", "b"}
    assert expr.cols() == {"a", "b"}  # original untouched


def test_substitute_replaces_with_expressions():
    expr = Comparison("=", col("a"), col("b"))
    out = expr.substitute({"a": Plus(col("p"), lit(1)), "b": Const(7)})
    assert out.evaluate({"p": 6}) is True
    assert out.cols() == {"p"}


def test_mirrored():
    expr = Comparison("<", col("a"), col("b"))
    mirrored = expr.mirrored()
    assert mirrored.op == ">"
    assert mirrored.left == col("b")
    for op, dual in MIRRORED.items():
        assert MIRRORED[dual] == op


def test_to_sql_rendering():
    expr = And(
        [
            Comparison("=", col("name"), lit("o'hara")),
            Or([Comparison("!=", col("kind"), lit(2)), Comparison("=", col("pre"), col("q"))]),
        ]
    )
    sql = expr.to_sql(lambda c: f"t.{c}")
    assert "t.name = 'o''hara'" in sql  # quote escaping
    assert "(t.kind <> 2 OR t.pre = t.q)" in sql


def test_null_renders_as_null():
    assert Const(None).to_sql(lambda c: c) == "NULL"


def test_conjuncts_and_conjoin():
    a = Comparison("=", col("a"), lit(1))
    b = Comparison("=", col("b"), lit(2))
    assert conjuncts(a) == (a,)
    both = conjoin([a, b])
    assert isinstance(both, And) and conjuncts(both) == (a, b)
    assert conjoin([a]) is a


def test_is_col_eq_col():
    assert Comparison("=", col("a"), col("b")).is_col_eq_col() == ("a", "b")
    assert Comparison("=", col("a"), lit(1)).is_col_eq_col() is None
    assert Comparison("<", col("a"), col("b")).is_col_eq_col() is None


def test_unknown_operator_rejected():
    with pytest.raises(ValueError):
        Comparison("===", col("a"), col("b"))


def test_empty_and_rejected():
    with pytest.raises(ValueError):
        And([])
    with pytest.raises(ValueError):
        Or([])


def test_in_membership_semantics():
    expr = In(col("name"), ["a.xml", "b.xml"])
    assert expr.evaluate({"name": "a.xml"}) is True
    assert expr.evaluate({"name": "c.xml"}) is False
    assert expr.cols() == {"name"}


def test_in_null_semantics():
    # SQL NULL: a NULL probe never matches, and NULL members never match
    expr = In(col("name"), ["a.xml", None])
    assert expr.evaluate({"name": None}) is False
    assert expr.evaluate({"name": "a.xml"}) is True
    assert expr.evaluate({"name": "b.xml"}) is False


def test_in_to_sql_renders_one_membership_predicate():
    sql = In(col("name"), ["a.xml", "o'hara"]).to_sql(lambda c: f"d1.{c}")
    assert sql == "d1.name IN ('a.xml', 'o''hara')"


def test_in_rename_and_substitute():
    expr = In(col("name"), ["a.xml"])
    assert expr.rename({"name": "n2"}) == In(col("n2"), ["a.xml"])
    out = expr.substitute({"name": col("other")})
    assert out == In(col("other"), ["a.xml"])


def test_in_structural_equality():
    assert In(col("a"), [1, 2]) == In(col("a"), (1, 2))
    assert In(col("a"), [1, 2]) != In(col("a"), [2, 1])


def test_empty_in_rejected():
    with pytest.raises(ValueError):
        In(col("a"), [])
