"""DAG utility tests: traversal, replacement, fingerprints, validation."""

import pytest

from repro.algebra import (
    Comparison,
    Distinct,
    Join,
    LitTable,
    Project,
    Select,
    Serialize,
    col,
    lit,
)
from repro.algebra.dagutils import (
    all_nodes,
    count_ops,
    parents_map,
    plan_fingerprint,
    plan_to_text,
    reachable,
    replace_node,
    validate_plan,
)
from repro.errors import RewriteError


def small_plan():
    base = LitTable(("item", "pos"), [(1, 1)])
    left = Project(base, [("a", "item")])
    right = Project(base, [("b", "item")])
    join = Join(left, right, Comparison("=", col("a"), col("b")))
    return Serialize(Project(join, [("item", "a"), ("pos", "b")])), base, join


def test_all_nodes_visits_shared_once():
    root, base, _ = small_plan()
    nodes = all_nodes(root)
    assert sum(1 for n in nodes if n is base) == 1
    assert nodes[-1] is root  # post-order: root last


def test_parents_map_counts_per_slot():
    root, base, _ = small_plan()
    parents = parents_map(root)
    assert len(parents[id(base)]) == 2  # shared by both projections


def test_reachability():
    root, base, join = small_plan()
    assert reachable(root, base)
    assert reachable(join, base)
    assert not reachable(base, join)


def test_replace_node_keeps_sharing():
    root, base, _ = small_plan()
    new_base = LitTable(("item", "pos"), [(2, 1)])
    root = replace_node(root, base, new_base)
    nodes = all_nodes(root)
    assert not any(n is base for n in nodes)
    assert sum(1 for n in nodes if n is new_base) == 1
    parents = parents_map(root)
    assert len(parents[id(new_base)]) == 2


def test_replace_root():
    root, base, _ = small_plan()
    other = Serialize(base)
    assert replace_node(root, root, other) is other


def test_fingerprint_is_structural():
    r1, _, _ = small_plan()
    r2, _, _ = small_plan()
    assert plan_fingerprint(r1) == plan_fingerprint(r2)
    r3, base3, _ = small_plan()
    # labels carry shape, not literal row values: a different row count
    # changes the fingerprint (a different value alone would not)
    replace_node(r3, base3, LitTable(("item", "pos"), [(9, 9), (8, 8)]))
    assert plan_fingerprint(r3) != plan_fingerprint(r1)


def test_fingerprint_sensitive_to_sharing():
    base = LitTable(("item", "pos"), [(1, 1)])
    shared = Serialize(
        Project(
            Join(
                Project(base, [("a", "item")]),
                Project(base, [("b", "item")]),
                Comparison("=", col("a"), col("b")),
            ),
            [("item", "a"), ("pos", "b")],
        )
    )
    base2 = LitTable(("item", "pos"), [(1, 1)])
    unshared = Serialize(
        Project(
            Join(
                Project(base, [("a", "item")]),
                Project(base2, [("b", "item")]),
                Comparison("=", col("a"), col("b")),
            ),
            [("item", "a"), ("pos", "b")],
        )
    )
    assert plan_fingerprint(shared) != plan_fingerprint(unshared)


def test_count_ops():
    root, _, _ = small_plan()
    ops = count_ops(root)
    assert ops["Project"] == 3 and ops["Join"] == 1 and ops["LitTable"] == 1


def test_plan_to_text_marks_shared_nodes():
    root, _, _ = small_plan()
    text = plan_to_text(root)
    assert "(=1)" in text and "*1" in text


def test_validate_plan_catches_missing_columns():
    base = LitTable(("a",), [(1,)])
    select = Select(base, Comparison("=", col("a"), lit(1)))
    # sabotage: swap the child for one lacking column a
    select.children[0] = LitTable(("b",), [(1,)])
    with pytest.raises(RewriteError):
        validate_plan(select)


def test_validate_plan_catches_join_overlap():
    left = LitTable(("a",), [(1,)])
    right = LitTable(("b",), [(1,)])
    join = Join(left, right, Comparison("=", col("a"), col("b")))
    join.children[1] = LitTable(("a",), [(1,)])  # overlap after mutation
    with pytest.raises(RewriteError):
        validate_plan(join)


def test_validate_plan_accepts_consistent_plans():
    root, _, _ = small_plan()
    validate_plan(root)  # no exception


def test_distinct_over_join_shapes():
    root, _, join = small_plan()
    replaced = replace_node(root, join, Distinct(join))
    assert count_ops(replaced)["Distinct"] == 1
    validate_plan(replaced)
