"""Axis navigation tests: every axis against hand-computed results on
the Fig. 2 document, plus cross-checks of the axis dualities."""

import pytest

from repro.infoset import shred
from repro.infoset.navigation import (
    AXES,
    DUAL_AXIS,
    axis_nodes,
    kind_name_test,
    parent_of,
)

AUCTION = """\
<open_auction id="1">
  <initial>15</initial>
  <bidder>
    <time>18:43</time>
    <increase>4.20</increase>
  </bidder>
</open_auction>
"""
# pre: 0 doc, 1 open_auction, 2 @id, 3 initial, 4 "15",
#      5 bidder, 6 time, 7 "18:43", 8 increase, 9 "4.20"


@pytest.fixture(scope="module")
def table():
    return shred(AUCTION, uri="auction.xml")


def test_child_excludes_attributes(table):
    assert axis_nodes(table, 1, "child") == [3, 5]


def test_attribute_axis(table):
    assert axis_nodes(table, 1, "attribute") == [2]
    assert axis_nodes(table, 5, "attribute") == []


def test_descendant(table):
    assert axis_nodes(table, 5, "descendant") == [6, 7, 8, 9]
    assert axis_nodes(table, 1, "descendant") == [3, 4, 5, 6, 7, 8, 9]


def test_descendant_or_self(table):
    assert axis_nodes(table, 5, "descendant-or-self") == [5, 6, 7, 8, 9]


def test_parent(table):
    assert axis_nodes(table, 6, "parent") == [5]
    assert axis_nodes(table, 2, "parent") == [1]  # attribute owner
    assert axis_nodes(table, 0, "parent") == []


def test_ancestor_and_or_self(table):
    assert axis_nodes(table, 7, "ancestor") == [0, 1, 5, 6]
    assert axis_nodes(table, 7, "ancestor-or-self") == [0, 1, 5, 6, 7]


def test_following_and_preceding(table):
    assert axis_nodes(table, 3, "following") == [5, 6, 7, 8, 9]
    assert axis_nodes(table, 8, "preceding") == [3, 4, 6, 7]
    # preceding excludes ancestors
    assert 5 not in axis_nodes(table, 8, "preceding")


def test_siblings(table):
    assert axis_nodes(table, 3, "following-sibling") == [5]
    assert axis_nodes(table, 5, "preceding-sibling") == [3]
    assert axis_nodes(table, 6, "following-sibling") == [8]


def test_self(table):
    assert axis_nodes(table, 4, "self") == [4]


def test_parent_of_everything(table):
    assert parent_of(table, 0) is None
    assert parent_of(table, 1) == 0
    assert parent_of(table, 9) == 8


def test_all_axes_enumerable(table):
    for axis in AXES:
        axis_nodes(table, 5, axis)  # must not raise


def test_axis_duality_roundtrip(table):
    """v in axis(c) iff c in dual(axis)(v) — the pre/size duality the
    optimizer exploits for axis reversal (paper Section 4.1)."""
    verifiable = (
        "child",
        "descendant",
        "following",
        "preceding",
        "ancestor",
        "parent",
        "following-sibling",
        "preceding-sibling",
    )
    attr = 2  # attributes are excluded from the non-attribute axes,
    # so the duality is stated over non-attribute nodes only
    for axis in verifiable:
        dual = DUAL_AXIS[axis]
        for context in range(len(table)):
            if table.kind[context] == attr:
                continue
            for hit in axis_nodes(table, context, axis):
                assert context in axis_nodes(table, hit, dual), (
                    f"{axis}/{dual} duality broken at {context}->{hit}"
                )


def test_kind_name_tests(table):
    assert kind_name_test(table, 1, "element", "open_auction")
    assert not kind_name_test(table, 1, "element", "bidder")
    assert kind_name_test(table, 2, "attribute", "id")
    assert kind_name_test(table, 4, "text", None)
    assert kind_name_test(table, 4, None, None)  # node()
    assert kind_name_test(table, 0, "document-node", None)
    assert not kind_name_test(table, 4, "element", None)
