"""Round-trip: XML text -> doc table -> serialized XML."""

from repro.infoset import shred
from repro.infoset.serialize import serialize_nodes, serialize_sequence
from repro.xmltree import parse_fragment, serialize


def canon(text: str) -> str:
    return serialize(parse_fragment(text))


def test_serialize_element_subtree():
    table = shred('<a x="1"><b>t</b><c/></a>')
    assert canon(serialize_nodes(table, 1)) == canon('<a x="1"><b>t</b><c/></a>')


def test_serialize_inner_node():
    table = shred("<a><b><c>deep</c></b></a>")
    assert serialize_nodes(table, 2) == "<b><c>deep</c></b>"


def test_serialize_text_and_attribute_rows():
    table = shred('<a x="v&quot;q">t&amp;u</a>')
    # pre 0 doc, 1 a, 2 @x, 3 text
    assert serialize_nodes(table, 2) == 'x="v&quot;q"'
    assert serialize_nodes(table, 3) == "t&amp;u"


def test_serialize_document_row_yields_whole_document():
    table = shred("<a><b/></a>", uri="d.xml")
    assert serialize_nodes(table, 0) == "<a><b/></a>"


def test_serialize_sequence_concatenates():
    table = shred("<a><b>1</b><b>2</b></a>")
    bs = [p for p in range(len(table)) if table.name[p] == "b"]
    assert serialize_sequence(table, bs) == "<b>1</b><b>2</b>"


def test_empty_elements_and_attribute_only_elements():
    table = shred('<a><e/><f k="1"/><g k="2">x</g></a>')
    root = serialize_nodes(table, 1)
    assert canon(root) == canon('<a><e/><f k="1"/><g k="2">x</g></a>')


def test_roundtrip_with_comments_and_pis():
    source = "<a><!--c--><?pi body?><b>t</b></a>"
    table = shred(source)
    assert canon(serialize_nodes(table, 1)) == canon(source)


def test_roundtrip_deep_nesting():
    source = "<a>" + "<x>" * 30 + "leaf" + "</x>" * 30 + "</a>"
    table = shred(source)
    assert serialize_nodes(table, 1) == source
