"""Encoding validator tests."""

import random

import pytest

from repro.errors import DocumentError
from repro.infoset import DocumentStore, shred
from repro.infoset.validate import validate_encoding
from repro.workloads import XMarkConfig, generate_xmark


def test_shredded_documents_validate():
    validate_encoding(shred("<a><b>1</b><c x='2'><d/></c></a>"))


def test_multi_document_store_validates():
    store = DocumentStore()
    store.load("<a><b/></a>", "a.xml")
    store.load("<c/>", "c.xml")
    validate_encoding(store.table)


def test_generated_workload_validates():
    store = DocumentStore()
    store.load_tree(generate_xmark(XMarkConfig(factor=0.001)))
    validate_encoding(store.table)


def test_detects_level_break():
    table = shred("<a><b/></a>")
    table.level[2] = 5  # b should be level 2
    with pytest.raises(DocumentError):
        validate_encoding(table)


def test_detects_leaking_subtree():
    table = shred("<a><b/><c/></a>")
    table.size[2] = 3  # b's subtree now leaks past a's end
    with pytest.raises(DocumentError):
        validate_encoding(table)


def test_detects_misplaced_doc_row():
    table = shred("<a><b/></a>")
    table.kind[2] = 0  # an interior DOC row
    with pytest.raises(DocumentError):
        validate_encoding(table)


def test_detects_attr_with_subtree():
    table = shred("<a x='1'><b/></a>")
    table.size[2] = 1  # the attribute swallows b
    with pytest.raises(DocumentError):
        validate_encoding(table)


def test_detects_value_on_wide_subtree():
    table = shred("<a><b/><c/></a>")
    table.value[1] = "nope"  # a has size 2
    with pytest.raises(DocumentError):
        validate_encoding(table)


def test_random_documents_validate():
    rng = random.Random(7)
    for _ in range(20):
        tags = "xyz"
        budget = [rng.randint(3, 40)]

        def node(depth):
            budget[0] -= 1
            tag = rng.choice(tags)
            attrs = f' k="{rng.randint(0, 9)}"' if rng.random() < 0.3 else ""
            children = []
            while budget[0] > 0 and rng.random() < (0.6 if depth < 5 else 0.1):
                if rng.random() < 0.3:
                    budget[0] -= 1
                    children.append("t")
                else:
                    children.append(node(depth + 1))
            return f"<{tag}{attrs}>{''.join(children)}</{tag}>"

        validate_encoding(shred(node(0)))
