"""Loop-lifted staircase join tests: pruning and scans agree with the
naive per-context union on random documents and context sets."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infoset import shred
from repro.infoset.staircase import (
    STAIRCASE_AXES,
    naive_union,
    prune_contexts,
    staircase_join,
)

XML = "<a><b><c/><c/></b><b><c><d/></c></b><e/></a>"
# 0 doc, 1 a, 2 b, 3 c, 4 c, 5 b, 6 c, 7 d, 8 e


@pytest.fixture(scope="module")
def table():
    return shred(XML)


def test_descendant_pruning_drops_nested_contexts(table):
    # context 2 (b) contains 3 (c): 3 contributes nothing new
    assert prune_contexts(table, [2, 3], "descendant") == [2]
    # disjoint subtrees both kept
    assert prune_contexts(table, [2, 5], "descendant") == [2, 5]


def test_following_pruning_keeps_earliest_subtree_end(table):
    # following is dominated by the context whose subtree ends first
    assert prune_contexts(table, [2, 5], "following") == [2]


def test_preceding_pruning_keeps_latest_pre(table):
    assert prune_contexts(table, [3, 6], "preceding") == [6]


@pytest.mark.parametrize("axis", STAIRCASE_AXES)
def test_staircase_matches_naive_union(table, axis):
    contexts = {1: [2, 3, 5], 2: [6], 3: [], 4: [8, 1]}
    assert staircase_join(table, contexts, axis) == naive_union(
        table, contexts, axis
    )


def test_ancestor_chains_shared(table):
    result = staircase_join(table, {1: [4, 7]}, "ancestor")
    # ancestors of c(4): b(2), a(1), doc(0); of d(7): c(6), b(5), a, doc
    assert result[1] == [0, 1, 2, 5, 6]


def test_unsupported_axis_rejected(table):
    with pytest.raises(ValueError):
        staircase_join(table, {1: [1]}, "child")


def random_xml(rng: random.Random) -> str:
    budget = [rng.randint(4, 50)]

    def node(depth: int) -> str:
        budget[0] -= 1
        tag = rng.choice("xyz")
        children = []
        while budget[0] > 0 and rng.random() < (0.7 if depth < 5 else 0.15):
            children.append(node(depth + 1))
        return f"<{tag}>{''.join(children)}</{tag}>"

    return node(0)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_staircase_random_documents(seed):
    rng = random.Random(seed)
    table = shred(random_xml(rng), uri="t.xml")
    n = len(table)
    contexts = {
        i: [rng.randrange(n) for _ in range(rng.randint(0, 6))]
        for i in range(1, 4)
    }
    for axis in STAIRCASE_AXES:
        per_iter = {
            i: [c for c in cs if table.kind[c] != 2] for i, cs in contexts.items()
        }
        assert staircase_join(table, per_iter, axis) == naive_union(
            table, per_iter, axis
        ), (axis, per_iter)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_pruning_preserves_the_union(seed):
    rng = random.Random(seed)
    table = shred(random_xml(rng), uri="t.xml")
    contexts = [rng.randrange(len(table)) for _ in range(5)]
    for axis in STAIRCASE_AXES:
        pruned = prune_contexts(table, contexts, axis)
        assert set(pruned) <= set(contexts)
        full = naive_union(table, {0: contexts}, axis)[0]
        reduced = naive_union(table, {0: pruned}, axis)[0]
        assert full == reduced, axis
