"""Reproduction of paper Fig. 2: the encoding of auction.xml.

The paper's running example document is shredded and the resulting
``doc`` table is compared row by row against the figure.
"""

from repro.infoset import shred
from repro.xmltree.model import NodeKind

AUCTION_XML = """\
<open_auction id="1">
  <initial>15</initial>
  <bidder>
    <time>18:43</time>
    <increase>4.20</increase>
  </bidder>
</open_auction>
"""

DOC = int(NodeKind.DOC)
ELEM = int(NodeKind.ELEM)
ATTR = int(NodeKind.ATTR)
TEXT = int(NodeKind.TEXT)

# pre, size, level, kind, name, value, data  (Fig. 2)
FIG2_ROWS = [
    (0, 9, 0, DOC, "auction.xml", None, None),
    (1, 8, 1, ELEM, "open_auction", None, None),
    (2, 0, 2, ATTR, "id", "1", 1.0),
    (3, 1, 2, ELEM, "initial", "15", 15.0),
    (4, 0, 3, TEXT, None, "15", 15.0),
    (5, 4, 2, ELEM, "bidder", None, None),
    (6, 1, 3, ELEM, "time", "18:43", None),
    (7, 0, 4, TEXT, None, "18:43", None),
    (8, 1, 3, ELEM, "increase", "4.20", 4.2),
    (9, 0, 4, TEXT, None, "4.20", 4.2),
]


def test_fig2_encoding_matches_paper():
    table = shred(AUCTION_XML, uri="auction.xml")
    assert len(table) == 10
    for expected in FIG2_ROWS:
        row = table.row(expected[0])
        assert tuple(row) == expected, f"row {expected[0]} mismatch: {row}"


def test_doc_registry():
    table = shred(AUCTION_XML, uri="auction.xml")
    assert table.doc_uris == ["auction.xml"]
    assert table.root_of("auction.xml") == 0
    assert table.document_of(7) == 0


def test_string_value_of_large_subtree_is_computed():
    table = shred(AUCTION_XML, uri="auction.xml")
    # bidder (pre=5) has size 4 > 1: value column is None, string value
    # is the concatenation of descendant text.
    assert table.value[5] is None
    assert table.string_value(5) == "18:434.20"
    assert table.string_value(2) == "1"
    assert table.string_value(3) == "15"
