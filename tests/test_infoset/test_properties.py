"""Property-based invariants of the tabular infoset encoding."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infoset import DocumentStore, shred
from repro.infoset.navigation import axis_nodes, parent_of
from repro.infoset.serialize import serialize_nodes
from repro.xmltree import parse_fragment, serialize
from repro.xmltree.model import NodeKind


def random_xml(rng: random.Random, max_nodes: int = 30) -> str:
    budget = [rng.randint(3, max_nodes)]

    def element(depth: int) -> str:
        budget[0] -= 1
        tag = rng.choice("abcd")
        attrs = (
            f' k="{rng.randint(0, 9)}"' if rng.random() < 0.3 else ""
        )
        children = []
        while budget[0] > 0 and rng.random() < (0.65 if depth < 5 else 0.1):
            if rng.random() < 0.4:
                budget[0] -= 1
                children.append(str(rng.randint(0, 99)))
            else:
                children.append(element(depth + 1))
        return f"<{tag}{attrs}>{''.join(children)}</{tag}>"

    return element(0)


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_encoding_invariants(seed):
    """pre/size/level structural invariants hold for every document:

    * the DOC row spans the whole tree;
    * every subtree range nests properly (no partial overlap);
    * level equals the number of ancestors;
    * size equals the subtree row count.
    """
    table = shred(random_xml(random.Random(seed)), uri="t.xml")
    n = len(table)
    assert table.size[0] == n - 1 and table.level[0] == 0

    for pre in range(n):
        end = pre + table.size[pre]
        assert end < n
        # containment is proper nesting
        for other in range(pre + 1, end + 1):
            assert other + table.size[other] <= end
        # level = number of ancestors
        ancestors = axis_nodes(table, pre, "ancestor")
        assert table.level[pre] == len(ancestors)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_parent_child_inverse(seed):
    table = shred(random_xml(random.Random(seed)), uri="t.xml")
    attr = int(NodeKind.ATTR)
    for pre in range(1, len(table)):
        parent = parent_of(table, pre)
        assert parent is not None
        if table.kind[pre] == attr:
            assert pre in axis_nodes(table, parent, "attribute")
        else:
            assert pre in axis_nodes(table, parent, "child")


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_shred_serialize_roundtrip(seed):
    source = random_xml(random.Random(seed))
    canonical = serialize(parse_fragment(source))
    table = shred(source, uri="t.xml")
    assert serialize(parse_fragment(serialize_nodes(table, 1))) == canonical


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_following_preceding_partition(seed):
    """For a non-attribute context, {self+descendants, ancestors,
    following, preceding} partitions the non-attribute rows."""
    table = shred(random_xml(random.Random(seed)), uri="t.xml")
    attr = int(NodeKind.ATTR)
    rng = random.Random(seed + 1)
    candidates = [p for p in range(len(table)) if table.kind[p] != attr]
    context = rng.choice(candidates)
    groups = (
        set(axis_nodes(table, context, "descendant-or-self")),
        set(axis_nodes(table, context, "ancestor")),
        set(axis_nodes(table, context, "following")),
        set(axis_nodes(table, context, "preceding")),
    )
    union = set().union(*groups)
    assert union == set(candidates)
    total = sum(len(g) for g in groups)
    assert total == len(union)  # pairwise disjoint


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_multi_document_ranges_disjoint(seed):
    rng = random.Random(seed)
    store = DocumentStore()
    store.load(random_xml(rng), "a.xml")
    store.load(random_xml(rng), "b.xml")
    table = store.table
    root_b = table.root_of("b.xml")
    assert table.root_of("a.xml") == 0
    assert table.size[0] + 1 == root_b  # b starts right after a's tree
    assert table.document_of(root_b + 1) == root_b
