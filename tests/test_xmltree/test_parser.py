"""XML parser unit tests: well-formed input, entities, CDATA,
comments/PIs, and rejection of malformed documents."""

import pytest

from repro.errors import XMLParseError
from repro.xmltree import (
    CommentNode,
    ElementNode,
    PINode,
    TextNode,
    parse_document,
    parse_fragment,
    serialize,
)


def test_simple_element_tree():
    root = parse_fragment("<a><b>x</b><c/></a>")
    assert root.tag == "a"
    assert [c.tag for c in root.children] == ["b", "c"]
    assert root.children[0].children[0].text == "x"


def test_attributes_both_quote_styles():
    root = parse_fragment("""<a x="1" y='two'/>""")
    assert root.get_attribute("x") == "1"
    assert root.get_attribute("y") == "two"


def test_attribute_order_preserved():
    root = parse_fragment('<a z="1" a="2" m="3"/>')
    assert [attr.name for attr in root.attributes] == ["z", "a", "m"]


def test_predefined_entities_in_text_and_attributes():
    root = parse_fragment('<a t="&lt;&amp;&gt;&quot;&apos;">&amp;x&lt;y</a>')
    assert root.get_attribute("t") == "<&>\"'"
    assert root.string_value() == "&x<y"


def test_numeric_character_references():
    root = parse_fragment("<a>&#65;&#x42;</a>")
    assert root.string_value() == "AB"


def test_cdata_section():
    root = parse_fragment("<a><![CDATA[<not> &parsed;]]></a>")
    assert root.string_value() == "<not> &parsed;"


def test_comment_and_pi_nodes():
    root = parse_fragment(
        "<a><!--note--><?target body?><b/></a>", keep_whitespace=False
    )
    kinds = [type(c) for c in root.children]
    assert kinds == [CommentNode, PINode, ElementNode]
    assert root.children[0].text == "note"
    assert root.children[1].target == "target"


def test_xml_declaration_and_doctype_skipped():
    doc = parse_document(
        '<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a ANY>]><a/>', uri="u"
    )
    assert doc.root_element.tag == "a"
    assert doc.uri == "u"


def test_whitespace_only_text_dropped_by_default():
    root = parse_fragment("<a>\n  <b/>\n  <c/>\n</a>")
    assert all(isinstance(c, ElementNode) for c in root.children)


def test_whitespace_kept_on_request():
    root = parse_fragment("<a>\n<b/></a>", keep_whitespace=True)
    assert isinstance(root.children[0], TextNode)


def test_mixed_content():
    root = parse_fragment("<p>one<b>two</b>three</p>")
    assert root.string_value() == "onetwothree"
    assert len(root.children) == 3


@pytest.mark.parametrize(
    "bad",
    [
        "<a><b></a></b>",  # mismatched nesting
        "<a>",  # unterminated element
        "<a x=1/>",  # unquoted attribute
        '<a x="1" x="2"/>',  # duplicate attribute
        "<a/><b/>",  # two roots
        "text only",  # no root element
        "<a>&undefined;</a>",  # unknown entity
        "<a><!-- unterminated </a>",
    ],
)
def test_malformed_documents_rejected(bad):
    with pytest.raises(XMLParseError):
        parse_document(bad)


def test_parse_error_carries_position():
    try:
        parse_document("<a>\n<b></c></a>")
    except XMLParseError as error:
        assert error.line == 2
    else:  # pragma: no cover
        raise AssertionError("expected XMLParseError")


def test_roundtrip_through_serializer():
    text = '<a x="1"><b>hi &amp; ho</b><c/><d>t1<e/>t2</d></a>'
    root = parse_fragment(text)
    again = parse_fragment(serialize(root))
    assert serialize(again) == serialize(root)


def test_serializer_escapes_special_characters():
    root = ElementNode("a")
    root.set_attribute("q", 'say "<hi>"')
    root.append(TextNode("a < b & c > d"))
    out = serialize(root)
    assert "&lt;" in out and "&amp;" in out
    assert parse_fragment(out).get_attribute("q") == 'say "<hi>"'


def test_pretty_printing_indents_elements():
    root = parse_fragment("<a><b><c/></b></a>")
    pretty = serialize(root, indent=2)
    assert "\n  <b>" in pretty and "\n    <c/>" in pretty


def test_subtree_node_count_matches_size_semantics():
    root = parse_fragment('<a x="1"><b>t</b></a>')
    # a: attribute + b + text = 3 nodes below
    assert root.subtree_node_count() == 3
