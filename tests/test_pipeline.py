"""End-to-end pipeline / public API tests."""

import pytest

from repro import (
    DocumentStore,
    XQueryProcessor,
    XQuerySyntaxError,
    XQueryTypeError,
)


@pytest.fixture()
def processor(fig2_store):
    return XQueryProcessor(store=fig2_store)


def test_run_serializes_result(processor):
    out = processor.run('doc("auction.xml")//bidder/time')
    assert out == "<time>18:43</time>"


def test_default_doc_set_on_first_load():
    processor = XQueryProcessor()
    processor.load("<a><b/></a>", "x.xml")
    assert processor.execute("/a/b") == [2]


def test_engines_agree(processor):
    compiled = processor.compile('doc("auction.xml")//open_auction[initial = "15"]')
    reference = processor.execute(compiled, engine="interpreter")
    for engine in ("isolated-interpreter", "stacked-sql", "joingraph-sql"):
        assert processor.execute(compiled, engine=engine) == reference


def test_compiled_artifacts_exposed(processor):
    compiled = processor.compile('doc("auction.xml")//bidder')
    assert compiled.core is not None
    assert compiled.stacked_plan is not compiled.isolated_plan
    assert "SELECT DISTINCT" in compiled.joingraph_sql.text
    assert compiled.stacked_sql.text.startswith("WITH")
    assert compiled.isolation_stats.total() > 0


def test_backend_reloads_after_new_document(processor):
    assert processor.execute('doc("auction.xml")//bidder') == [5]
    processor.load("<z><bidder/></z>", "z.xml")
    # z.xml: DOC=10, z=11, bidder=12
    assert processor.execute('doc("z.xml")//bidder') == [12]


def test_compile_tuple_requires_sequence_return(processor):
    with pytest.raises(XQueryTypeError):
        processor.compile_tuple('doc("auction.xml")//bidder')


def test_compile_tuple_components(processor):
    components = processor.compile_tuple(
        'for $b in doc("auction.xml")//bidder return ($b/time, $b/increase)'
    )
    assert len(components) == 2
    assert processor.execute(components[0]) == [6]
    assert processor.execute(components[1]) == [8]


def test_syntax_error_propagates(processor):
    with pytest.raises(XQuerySyntaxError):
        processor.compile("for $x in")


def test_serialize_step_expands_results(fig2_store):
    processor = XQueryProcessor(store=fig2_store, serialize_step=True)
    items = processor.execute('doc("auction.xml")//bidder')
    # bidder subtree without attributes: bidder, time, text, increase, text
    assert items == [5, 6, 7, 8, 9]


def test_disabled_rules_pipeline(fig2_store):
    processor = XQueryProcessor(
        store=fig2_store, disabled_rules={"16", "19", "20", "21"}
    )
    compiled = processor.compile('doc("auction.xml")//bidder')
    # result still correct via the interpreter even if SQL codegen is
    # out of reach for some ablations
    assert processor.execute(compiled, engine="interpreter") == [5]


def test_unknown_engine(processor):
    with pytest.raises(ValueError):
        processor.execute('doc("auction.xml")//bidder', engine="warp")


def test_explain_convenience(processor):
    text = processor.explain('doc("auction.xml")//open_auction[bidder]')
    assert "IXSCAN" in text and "continuations" in text
    sampled = processor.explain(
        'doc("auction.xml")//open_auction[bidder]', mode="sampling"
    )
    assert "IXSCAN" in sampled


def test_compile_loop_lifts_once(processor):
    """The front end clones the stacked DAG for isolation instead of
    compiling it twice (the PR-3 double-compile fix)."""
    from repro.obs import Tracer, get_tracer, set_tracer

    previous = get_tracer()
    tracer = set_tracer(Tracer())
    try:
        processor.compile('doc("auction.xml")//bidder')
    finally:
        set_tracer(previous)
    looplifts = [s for s in tracer.walk() if s.name == "looplift"]
    assert len(looplifts) == 1


def test_backend_not_stale_after_store_swap():
    """Swapping in a different store with the *same row count* must
    reload the backend (regression: staleness was keyed on len())."""
    first = DocumentStore()
    first.load("<a><b>old</b></a>", "swap.xml")
    second = DocumentStore()
    second.load("<a><b>new</b></a>", "swap.xml")
    assert len(first.table) == len(second.table)

    processor = XQueryProcessor(store=first, default_doc="swap.xml")
    assert processor.run("/a/b") == "<b>old</b>"
    processor.store = second
    assert processor.run("/a/b") == "<b>new</b>"


def test_backend_not_stale_after_gc_address_reuse():
    """Swapping in a *fresh* store each generation must always reload
    the backend (regression: staleness was keyed on ``id(table)``,
    and the allocator hands a freed table's address to the next one —
    same id, same version counter, stale backend).  The token now uses
    the minted :attr:`DocTable.uid`, which no two tables ever share."""
    processor = XQueryProcessor(default_doc="swap.xml")
    seen_uids = set()
    for generation in range(50):
        store = DocumentStore()
        store.load(f"<a><b>gen{generation}</b></a>", "swap.xml")
        seen_uids.add(store.table.uid)
        processor.store = store
        assert processor.run("/a/b") == f"<b>gen{generation}</b>"
        del store
    assert len(seen_uids) == 50
    assert processor._backend_token is not None
    uid, version = processor._backend_token
    assert isinstance(uid, str)  # the minted identity, never id()


def test_store_version_counts_loads():
    store = DocumentStore()
    assert store.version == 0
    store.load("<a/>", "one.xml")
    store.load("<b/>", "two.xml")
    assert store.version == 2
