"""Loop-lifting compiler tests (paper Fig. 13 + Section 2.2)."""

import pytest

from repro.algebra import count_ops, run_plan
from repro.compiler import compile_core
from repro.errors import CompileError
from repro.infoset import DocumentStore
from repro.xquery import normalize, parse_xquery


def compiled(store, text):
    return compile_core(normalize(parse_xquery(text)), store)


def run(store, text):
    return run_plan(compiled(store, text))


def test_section_2_2_worked_example(fig2_store):
    """Q0 = doc(...)/descendant::bidder/child::*/child::text() yields
    the text nodes with pre ranks 7 and 9 (paper Section 2.2)."""
    q0 = 'doc("auction.xml")/descendant::bidder/child::*/child::text()'
    assert run(fig2_store, q0) == [7, 9]


def test_doc_rule(fig2_store):
    assert run(fig2_store, 'doc("auction.xml")') == [0]


def test_unknown_document_yields_empty(fig2_store):
    assert run(fig2_store, 'doc("nope.xml")/child::*') == []


@pytest.mark.parametrize(
    ("query", "expected"),
    [
        ('doc("auction.xml")/child::open_auction', [1]),
        ('doc("auction.xml")/descendant::text()', [4, 7, 9]),
        ('doc("auction.xml")//bidder/child::node()', [6, 8]),
        ('doc("auction.xml")//time/self::time', [6]),
        ('doc("auction.xml")//time/self::bidder', []),
        ('doc("auction.xml")//increase/parent::node()', [5]),
        ('doc("auction.xml")//time/ancestor::*', [1, 5]),
        ('doc("auction.xml")//time/ancestor-or-self::node()', [0, 1, 5, 6]),
        ('doc("auction.xml")//initial/following::text()', [7, 9]),
        ('doc("auction.xml")//increase/preceding::*', [3, 6]),
        ('doc("auction.xml")//initial/following-sibling::*', [5]),
        ('doc("auction.xml")//bidder/preceding-sibling::node()', [3]),
        ('doc("auction.xml")//open_auction/attribute::id', [2]),
        ('doc("auction.xml")//open_auction/@*', [2]),
        ('doc("auction.xml")/descendant-or-self::node()/child::time', [6]),
    ],
)
def test_all_axes_compile_and_evaluate(fig2_store, query, expected):
    assert run(fig2_store, query) == expected


def test_for_loop_order_preserved(fig2_store):
    """Sequence order: outer binding order dominates inner order."""
    q = (
        'for $x in doc("auction.xml")//bidder/child::* '
        "return $x/child::text()"
    )
    assert run(fig2_store, q) == [7, 9]


def test_nested_for_over_same_sequence(fig2_store):
    q = (
        'for $x in doc("auction.xml")//time '
        'for $y in doc("auction.xml")//increase '
        "return $y"
    )
    assert run(fig2_store, q) == [8]


def test_duplicates_across_iterations_retained(fig2_store):
    """Two bidder children each select their parent: the parent node
    appears twice (duplicates retained across for iterations)."""
    q = 'for $x in doc("auction.xml")//bidder/* return $x/parent::node()'
    assert run(fig2_store, q) == [5, 5]


def test_ddo_removes_in_step_duplicates(fig2_store):
    """Within one step, fs:ddo removes duplicate nodes: two children
    stepping to the same parent inside a path yield it once."""
    q = 'doc("auction.xml")//bidder/*/parent::node()'
    assert run(fig2_store, q) == [5]


def test_if_existence_condition(fig2_store):
    q = (
        'for $x in doc("auction.xml")//open_auction '
        "return if ($x/bidder) then $x else ()"
    )
    assert run(fig2_store, q) == [1]
    q2 = (
        'for $x in doc("auction.xml")//open_auction '
        "return if ($x/nonexistent) then $x else ()"
    )
    assert run(fig2_store, q2) == []


def test_valcomp_numeric_uses_typed_data(fig2_store):
    assert run(fig2_store, 'doc("auction.xml")//open_auction[initial > 10]') == [1]
    assert run(fig2_store, 'doc("auction.xml")//open_auction[initial > 20]') == []


def test_valcomp_string_uses_untyped_value(fig2_store):
    assert run(fig2_store, 'doc("auction.xml")//bidder[time = "18:43"]') == [5]
    assert run(fig2_store, 'doc("auction.xml")//bidder[time = "19:00"]') == []


def test_general_comp_two_node_sequences(fig2_store):
    # @id = "1" and initial = "15": both present on pre 1
    q = 'doc("auction.xml")//open_auction[@id = "1"]'
    assert run(fig2_store, q) == [1]


def test_comp_node_vs_node(fig2_store):
    store = DocumentStore()
    store.load('<r><a k="x"/><b k="x"/><b k="y"/></r>', "c.xml")
    # doc: 0, r: 1, a: 2 (@k=x: 3), b: 4 (@k=x: 5), b: 6 (@k=y: 7)
    q = 'for $a in doc("c.xml")//a for $b in doc("c.xml")//b where $a/@k = $b/@k return $b'
    assert run(store, q) == [4]


def test_let_binding_shared(fig2_store):
    q = (
        'let $d := doc("auction.xml") '
        "for $x in $d//bidder return $x/child::increase"
    )
    assert run(fig2_store, q) == [8]


def test_unbound_variable_raises(fig2_store):
    with pytest.raises(CompileError):
        compiled(fig2_store, "$nope/child::a")


def test_plan_is_dag_with_single_doc_leaf(fig2_store):
    plan = compiled(
        fig2_store, 'doc("auction.xml")//bidder[time]/increase'
    )
    assert count_ops(plan)["DocScan"] == 1


def test_empty_sequence_in_for(fig2_store):
    assert run(fig2_store, "for $x in () return $x") == []
