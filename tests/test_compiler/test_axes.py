"""Unit tests for the Fig. 3 axis / node-test predicate builders."""

import pytest

from repro.algebra.expressions import And, Comparison, Or
from repro.compiler.axes import (
    PAIRWISE_AXES,
    SIBLING_AXES,
    axis_predicate,
    node_test_predicate,
)
from repro.errors import CompileError
from repro.xmltree.model import NodeKind


def render(expr):
    return repr(expr)


def test_node_test_element_with_name():
    pred = node_test_predicate("element", "bidder")
    text = render(pred)
    assert f"kind = {int(NodeKind.ELEM)}" in text
    assert "name = 'bidder'" in text


def test_node_test_kind_only():
    pred = node_test_predicate("text", None)
    assert render(pred) == f"kind = {int(NodeKind.TEXT)}"


def test_node_test_vacuous():
    assert node_test_predicate("node", None) is None
    assert node_test_predicate(None, "*") is None


def test_node_test_wildcard_name_ignored():
    pred = node_test_predicate("element", "*")
    assert "name" not in render(pred)


def test_unknown_kind_test_rejected():
    with pytest.raises(CompileError):
        node_test_predicate("banana", None)


def test_descendant_predicate_is_range():
    pred = axis_predicate("descendant", "1", kind_pinned=True)
    text = render(pred)
    assert "pre1 < pre" in text
    assert "pre <= pre1 + size1" in text
    assert "kind" not in text  # pinned: no ATTR guard


def test_attr_guard_added_when_unpinned():
    pred = axis_predicate("descendant", "1", kind_pinned=False)
    assert f"kind <> {int(NodeKind.ATTR)}" in render(pred)


def test_child_predicate_has_level_adjacency():
    pred = axis_predicate("child", "2", kind_pinned=True)
    assert "level2 + 1 = level" in render(pred)


def test_parent_predicate_is_the_child_dual():
    """pre/size duality (paper Fig. 3): parent swaps the roles."""
    pred = axis_predicate("parent", "3", kind_pinned=True)
    text = render(pred)
    assert "pre < pre3" in text
    assert "pre3 <= pre + size" in text
    assert "level + 1 = level3" in text


def test_following_and_preceding():
    assert "pre1 + size1 < pre" in render(
        axis_predicate("following", "1", kind_pinned=True)
    )
    assert "pre + size < pre1" in render(
        axis_predicate("preceding", "1", kind_pinned=True)
    )


def test_attribute_axis_pins_kind_when_test_does_not():
    pred = axis_predicate("attribute", "1", kind_pinned=False)
    assert f"kind = {int(NodeKind.ATTR)}" in render(pred)
    pred_pinned = axis_predicate("attribute", "1", kind_pinned=True)
    assert "kind" not in render(pred_pinned)


def test_descendant_or_self_has_attr_disjunct():
    pred = axis_predicate("descendant-or-self", "1", kind_pinned=False)
    assert isinstance(pred, And)
    assert any(isinstance(p, Or) for p in pred.parts)


def test_self_is_pre_equality():
    pred = axis_predicate("self", "9", kind_pinned=False)
    assert isinstance(pred, Comparison)
    assert render(pred) == "pre = pre9"


def test_sibling_axes_have_no_pairwise_predicate():
    for axis in SIBLING_AXES:
        with pytest.raises(CompileError):
            axis_predicate(axis, "1", kind_pinned=True)
    assert not (SIBLING_AXES & PAIRWISE_AXES)
