"""XQuery Core normalization tests (paper Section 2.3 / [9])."""

import pytest

from repro.errors import XQueryTypeError
from repro.xquery import normalize, parse_xquery
from repro.xquery.core import (
    CoreComp,
    CoreDdo,
    CoreDoc,
    CoreFor,
    CoreIf,
    CoreLet,
    CoreStep,
    CoreValComp,
    CoreVar,
    core_to_text,
)


def norm(text: str, default_doc: str | None = None):
    return normalize(parse_xquery(text), default_doc=default_doc)


def test_steps_wrapped_in_ddo():
    core = norm('doc("a.xml")/descendant::b/child::c')
    assert isinstance(core, CoreDdo)
    step = core.expr
    assert isinstance(step, CoreStep) and step.axis == "child"
    assert isinstance(step.input, CoreDdo)


def test_q1_normalization_matches_paper():
    """Section 2.4: Q1 normalizes to
    for $x in fs:ddo(doc(...)/descendant::open_auction)
    return if (fn:boolean(fs:ddo($x/child::bidder))) then $x else ()"""
    core = norm('doc("auction.xml")/descendant::open_auction[bidder]')
    assert isinstance(core, CoreFor)
    assert isinstance(core.sequence, CoreDdo)
    assert isinstance(core.sequence.expr, CoreStep)
    assert core.sequence.expr.axis == "descendant"
    body = core.ret
    assert isinstance(body, CoreIf)
    assert isinstance(body.cond, CoreDdo)
    cond_step = body.cond.expr
    assert cond_step.axis == "child" and cond_step.name_test == "bidder"
    assert isinstance(cond_step.input, CoreVar)
    assert isinstance(body.then, CoreVar)
    assert body.then.name == core.var


def test_double_slash_name_becomes_descendant():
    core = norm('doc("a.xml")//b')
    assert core.expr.axis == "descendant"


def test_double_slash_attribute_keeps_dos_step():
    core = norm('doc("a.xml")//@id')
    step = core.expr
    assert step.axis == "attribute"
    inner = step.input
    assert inner.expr.axis == "descendant-or-self"
    assert inner.expr.kind_test == "node"


def test_where_becomes_conditional():
    core = norm("for $x in $y//a where $x/b return $x")
    # unbound $y is a compile-time (not normalize-time) concern
    assert isinstance(core, CoreFor)
    assert isinstance(core.ret, CoreIf)


def test_and_becomes_nested_ifs():
    core = norm("for $x in $y//a where $x/b and $x/c return $x")
    outer = core.ret
    assert isinstance(outer, CoreIf)
    assert isinstance(outer.then, CoreIf)
    assert isinstance(outer.then.then, CoreVar)


def test_multi_for_nests():
    core = norm("for $a in $d//x, $b in $d//y return $b")
    assert isinstance(core, CoreFor)
    assert isinstance(core.ret, CoreFor)


def test_let_preserved():
    core = norm('let $a := doc("d.xml") return $a/child::b')
    assert isinstance(core, CoreLet)


def test_comparison_with_literal_is_valcomp():
    core = norm("for $x in $d//a where $x/b > 5 return $x")
    cond = core.ret.cond
    assert isinstance(cond, CoreValComp)
    assert cond.op == ">" and cond.value == 5


def test_literal_on_left_mirrors_operator():
    core = norm("for $x in $d//a where 5 < $x/b return $x")
    cond = core.ret.cond
    assert isinstance(cond, CoreValComp)
    assert cond.op == ">"  # 5 < e  ==  e > 5


def test_node_node_comparison_is_comp():
    core = norm("for $x in $d//a where $x/@i = $x/@j return $x")
    cond = core.ret.cond
    assert isinstance(cond, CoreComp)


def test_predicate_desugars_to_for_if():
    core = norm("$d//a[b]")
    assert isinstance(core, CoreFor)
    assert core.var.startswith("#")
    assert isinstance(core.ret, CoreIf)


def test_stacked_predicates_nest():
    core = norm("$d//a[b][c]")
    assert isinstance(core, CoreFor)
    assert isinstance(core.sequence, CoreFor)


def test_absolute_path_uses_default_doc():
    core = norm("/site/regions", default_doc="auction.xml")
    doc = core.expr.input.expr.input
    assert isinstance(doc, CoreDoc) and doc.uri == "auction.xml"


def test_absolute_path_without_default_doc_rejected():
    with pytest.raises(XQueryTypeError):
        norm("/site/regions")


def test_else_must_be_empty():
    with pytest.raises(XQueryTypeError):
        norm("if ($x/a) then $x else $x")


def test_positional_predicate_rejected():
    with pytest.raises(XQueryTypeError):
        norm("$d//a[1]")


def test_two_literal_comparison_rejected():
    with pytest.raises(XQueryTypeError):
        norm("for $x in $d//a where 1 = 2 return $x")


def test_context_item_outside_predicate_rejected():
    with pytest.raises(XQueryTypeError):
        norm("./a")


def test_core_to_text_smoke():
    core = norm('doc("a.xml")//b[c > 1]')
    text = core_to_text(core)
    assert "fs:ddo" in text and "valcomp" in text
