"""Parser tests for the workhorse fragment's surface syntax."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery import parse_xquery
from repro.xquery import ast


def test_simple_path():
    expr = parse_xquery('doc("a.xml")/descendant::open_auction')
    assert isinstance(expr, ast.StepExpr)
    assert expr.axis == "descendant"
    assert expr.test.name == "open_auction"
    assert isinstance(expr.input, ast.DocCall)
    assert expr.input.uri == "a.xml"


def test_default_axis_is_child():
    expr = parse_xquery('doc("a.xml")/b')
    assert expr.axis == "child"


def test_double_slash_flag():
    expr = parse_xquery('doc("a.xml")//b')
    assert expr.double_slash


def test_attribute_abbreviation():
    expr = parse_xquery('doc("a.xml")/a/@id')
    assert expr.axis == "attribute"
    assert expr.test.kind == "attribute"
    assert expr.test.name == "id"


def test_kind_tests():
    for text, kind in [
        ("text()", "text"),
        ("node()", "node"),
        ("comment()", "comment"),
        ("element()", "element"),
        ("element(b)", "element"),
        ("processing-instruction()", "processing-instruction"),
    ]:
        expr = parse_xquery(f'doc("a.xml")/child::{text}')
        assert expr.test.kind == kind


def test_wildcard():
    expr = parse_xquery('doc("a.xml")/*')
    assert expr.test.name == "*"


def test_predicates_attach_to_step():
    expr = parse_xquery('doc("a.xml")//a[b][c = "1"]')
    assert len(expr.predicates) == 2
    assert isinstance(expr.predicates[1].expr, ast.Comparison)


def test_all_twelve_axes_parse():
    from repro.xquery.ast import ALL_AXES

    for axis in ALL_AXES:
        expr = parse_xquery(f'doc("a.xml")/{axis}::node()')
        assert expr.axis == axis


def test_flwor_multi_for_where():
    expr = parse_xquery(
        'let $a := doc("x.xml") '
        "for $b in $a//b, $c in $a//c "
        "where $b/@i = $c/@j return $c/name"
    )
    assert isinstance(expr, ast.FLWOR)
    assert len(expr.clauses) == 3
    assert isinstance(expr.clauses[0], ast.LetClause)
    assert expr.where is not None


def test_if_then_else():
    expr = parse_xquery('if ($x/b) then $x else ()')
    assert isinstance(expr, ast.IfExpr)
    assert isinstance(expr.orelse, ast.EmptySequence)


def test_comparison_operators():
    for op in ("=", "!=", "<", "<=", ">", ">="):
        expr = parse_xquery(f"$x/a {op} 5")
        assert isinstance(expr, ast.Comparison)
        assert expr.op == op


def test_and_in_predicate():
    expr = parse_xquery('/dblp/*[@key = "k" and editor and title]/title')
    inner = expr.input
    assert isinstance(inner.predicates[0].expr, ast.AndExpr)


def test_absolute_path_root():
    expr = parse_xquery("/site/people")
    step = expr
    while isinstance(step, ast.StepExpr):
        step = step.input
    assert isinstance(step, ast.PathRoot)


def test_sequence_return():
    expr = parse_xquery("for $t in /a/b return ($t/x, $t/y)")
    assert isinstance(expr.ret, ast.SequenceExpr)
    assert len(expr.ret.items) == 2


def test_comments_are_skipped():
    expr = parse_xquery('doc("a.xml") (: a (: nested :) comment :) /b')
    assert isinstance(expr, ast.StepExpr)


def test_parenthesized_expression():
    expr = parse_xquery('(doc("a.xml")/a)/b')
    assert expr.axis == "b" or expr.test.name == "b"


@pytest.mark.parametrize(
    "bad",
    [
        "for $x in return $x",
        'doc("a.xml")/',
        "if ($x) then $y",  # missing else
        "$x[",
        'doc(unquoted)',
        "let $x = 3 return $x",  # := not =
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(XQuerySyntaxError):
        parse_xquery(bad)


def test_error_reports_offset():
    try:
        parse_xquery("for $x in $y return @@")
    except XQuerySyntaxError as error:
        assert error.position is not None
    else:  # pragma: no cover
        raise AssertionError("expected XQuerySyntaxError")
