"""Tokenizer unit tests."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery.lexer import Token, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]  # drop eof


def test_symbols_maximal_munch():
    assert kinds("// / :: = != <= >=")[0] == ("symbol", "//")
    out = [t for _, t in kinds("a//b")]
    assert out == ["a", "//", "b"]
    out = [t for _, t in kinds("$x!=1")]
    assert "!=" in out


def test_axis_separator_vs_prefixed_name():
    # ':: ' is the axis separator; a single ':' joins a QName prefix
    out = kinds("child::a")
    assert out == [("name", "child"), ("symbol", "::"), ("name", "a")]
    out = kinds("fn:doc")
    assert out == [("name", "fn:doc")]


def test_keywords_detected():
    out = dict(
        (t, k) for k, t in kinds("for let in return if then else where and or")
    )
    assert all(v == "keyword" for v in out.values())


def test_names_with_dash_and_dot():
    out = kinds("descendant-or-self::node()")
    assert out[0] == ("name", "descendant-or-self")


def test_numbers():
    assert kinds("42")[0] == ("number", "42")
    assert kinds("4.25")[0] == ("number", "4.25")


def test_strings_both_quotes():
    assert kinds('"a b"')[0] == ("string", "a b")
    assert kinds("'x'")[0] == ("string", "x")


def test_nested_comments():
    out = kinds("a (: outer (: inner :) still :) b")
    assert [t for _, t in out] == ["a", "b"]


def test_unterminated_comment_and_string():
    with pytest.raises(XQuerySyntaxError):
        tokenize("(: never closed")
    with pytest.raises(XQuerySyntaxError):
        tokenize('"never closed')


def test_unexpected_character():
    with pytest.raises(XQuerySyntaxError):
        tokenize("a ; b")


def test_positions_recorded():
    tokens = tokenize("for $x")
    assert tokens[0].pos == 0
    assert tokens[1].text == "$" and tokens[1].pos == 4


def test_eof_token_terminates():
    tokens = tokenize("")
    assert len(tokens) == 1 and tokens[0].kind == "eof"
