"""Unit tests for the sharded multi-document collection store:
placement, global/local pre-rank translation, the lazily grafted
combined table, glob resolution, and serialization."""

from __future__ import annotations

import random

import pytest

from repro.errors import DocumentError
from repro.infoset import DocumentStore
from repro.store import Collection
from tests.genquery import random_document

DOCS = [f"g{i}.xml" for i in range(6)]


def _texts(seed: int = 5) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    return [(random_document(rng), uri) for uri in DOCS]


def _loaded(shards: int, seed: int = 5) -> Collection:
    collection = Collection(shards)
    for text, uri in _texts(seed):
        collection.load(text, uri)
    return collection


def test_shard_of_is_stable_and_in_range():
    collection = Collection(4)
    for uri in DOCS:
        shard = collection.shard_of(uri)
        assert 0 <= shard < 4
        assert shard == collection.shard_of(uri)  # deterministic


def test_hash_placement_spreads_a_uri_family():
    # the crc32 predecessor collapsed xmark{i}.xml families into one
    # shard (CRC32 is GF(2)-linear); blake2b must not
    collection = Collection(4)
    shards = {collection.shard_of(f"xmark{i}.xml") for i in range(32)}
    assert len(shards) > 1


def test_explicit_shard_override_and_validation():
    collection = Collection(3)
    entry = collection.load("<a/>", "pinned.xml", shard=2)
    assert entry.shard == 2
    assert collection.entry("pinned.xml").shard == 2
    with pytest.raises(ValueError):
        collection.load("<a/>", "bad.xml", shard=3)
    with pytest.raises(ValueError):
        collection.load("<a/>", "bad.xml", shard=-1)


def test_duplicate_uri_rejected():
    collection = Collection(2)
    collection.load("<a/>", "dup.xml")
    with pytest.raises(DocumentError):
        collection.load("<b/>", "dup.xml")


def test_global_ranges_follow_load_order():
    collection = _loaded(3)
    expected_root = 0
    for uri in DOCS:
        entry = collection.entry(uri)
        assert entry.global_root == expected_root
        expected_root += entry.size + 1
    assert collection.doc_uris == DOCS


def test_to_global_to_local_round_trip_every_node():
    collection = _loaded(3)
    for shard in range(3):
        table = collection.stores[shard].table
        for pre in range(len(table)):
            (global_pre,) = collection.to_global(shard, [pre])
            assert collection.to_local(global_pre) == (shard, pre)


def test_to_local_roots_cache_invalidated_by_load():
    # to_local memoizes the global_root offsets; a subsequent load
    # must drop the cache so new documents resolve
    collection = Collection(2)
    first = collection.load("<a><b/></a>", "one.xml", shard=0)
    assert collection.to_local(first.global_root) == (0, first.shard_root)
    second = collection.load("<c><d/></c>", "two.xml", shard=1)
    assert collection.to_local(second.global_root + 1) == (
        1,
        second.shard_root + 1,
    )
    assert collection.to_local(first.global_root) == (0, first.shard_root)


def test_translation_rejects_out_of_range_ranks():
    collection = Collection(2)
    collection.load("<a><b/></a>", "one.xml", shard=0)
    with pytest.raises(DocumentError):
        collection.to_global(0, [99])
    with pytest.raises(DocumentError):
        collection.to_local(99)


def test_combined_store_equals_serial_load():
    collection = _loaded(4)
    serial = DocumentStore()
    for text, uri in _texts():
        serial.load(text, uri)
    combined = collection.combined_store().table
    reference = serial.table
    assert len(combined) == len(reference)
    for column in ("size", "level", "kind", "name", "value", "data"):
        assert getattr(combined, column) == getattr(reference, column)
    assert combined.doc_uris == reference.doc_uris


def test_combined_store_stays_in_sync_with_later_loads():
    collection = _loaded(2)
    before = len(collection.combined_store().table)  # materialize now
    collection.load("<late><x/></late>", "late.xml")
    after = collection.combined_store().table
    assert len(after) == before + 3
    assert "late.xml" in after.doc_uris


def test_resolve_globs_in_global_order():
    collection = _loaded(3)
    assert collection.resolve(()) == tuple(DOCS)
    assert collection.resolve(("*",)) == tuple(DOCS)
    assert collection.resolve(("g1.xml",)) == ("g1.xml",)
    assert collection.resolve(("g1*", "g3*")) == ("g1.xml", "g3.xml")
    assert collection.resolve(("nomatch-*",)) == ()


def test_shards_of_deduplicates_and_sorts():
    collection = Collection(4)
    for index, uri in enumerate(DOCS):
        collection.load("<a/>", uri, shard=index % 2)
    assert collection.shards_of(DOCS) == [0, 1]
    assert collection.shards_of(["g0.xml"]) == [0]
    with pytest.raises(DocumentError):
        collection.shards_of(["unknown.xml"])


def test_serialize_matches_combined_table():
    from repro.infoset.serialize import serialize_nodes

    collection = _loaded(3)
    combined = collection.combined_store().table
    roots = [collection.entry(uri).global_root for uri in DOCS]
    expected = "".join(serialize_nodes(combined, root) for root in roots)
    assert collection.serialize(roots) == expected


def test_stats_shape_and_version():
    collection = _loaded(3)
    stats = collection.stats()
    assert stats["shards"] == 3
    assert stats["documents"] == len(DOCS)
    assert stats["version"] == len(DOCS)
    assert sum(p["documents"] for p in stats["per_shard"]) == len(DOCS)
    assert stats["rows"] == sum(
        len(store.table) for store in collection.stores
    )
