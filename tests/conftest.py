"""Shared fixtures: the paper's running example document and small
pre-built workload stores."""

from __future__ import annotations

import sys

import pytest

from repro.infoset import DocumentStore
from repro.workloads import (
    DBLPConfig,
    XMarkConfig,
    generate_dblp,
    generate_xmark,
)

sys.setrecursionlimit(100_000)

#: the document of paper Fig. 2
AUCTION_XML = """\
<open_auction id="1">
  <initial>15</initial>
  <bidder>
    <time>18:43</time>
    <increase>4.20</increase>
  </bidder>
</open_auction>
"""


@pytest.fixture()
def fig2_store() -> DocumentStore:
    store = DocumentStore()
    store.load(AUCTION_XML, "auction.xml")
    return store


@pytest.fixture(scope="session")
def xmark_store() -> DocumentStore:
    store = DocumentStore()
    store.load_tree(generate_xmark(XMarkConfig(factor=0.002)))
    return store


@pytest.fixture(scope="session")
def dblp_store() -> DocumentStore:
    store = DocumentStore()
    store.load_tree(generate_dblp(DBLPConfig(factor=0.0005)))
    return store
