"""Exporter tests: golden-schema Chrome trace, metrics JSON, and the
human-readable tree report."""

from __future__ import annotations

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    metrics_json,
    tree_report,
    validate_chrome_trace,
    write_chrome_trace,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        self.now += 1_000_000  # 1 ms per reading
        return self.now


def _traced() -> Tracer:
    tracer = Tracer(clock=FakeClock())
    with tracer.span("compile", query="//a"):
        with tracer.span("parse"):
            pass
        with tracer.span("isolate") as span:
            span.event("rule(17)", rule="17")
    with tracer.span("execute", engine="joingraph-sql"):
        pass
    return tracer


def test_chrome_trace_golden_schema():
    """The emitted trace is exactly the event shapes we claim to
    produce: one metadata record, one complete (``X``) event per span,
    one instant (``i``) event per span event."""
    trace = chrome_trace(_traced())
    assert validate_chrome_trace(trace) == []
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]

    meta = [e for e in events if e["ph"] == "M"]
    assert len(meta) == 1
    assert meta[0]["name"] == "process_name"
    assert meta[0]["args"] == {"name": "repro"}

    complete = {e["name"]: e for e in events if e["ph"] == "X"}
    assert set(complete) == {"compile", "parse", "isolate", "execute"}
    instant = [e for e in events if e["ph"] == "i"]
    assert [e["name"] for e in instant] == ["rule(17)"]
    assert instant[0]["s"] == "t"
    assert instant[0]["args"] == {"rule": "17"}

    # ts/dur are microseconds derived from the ns clock
    compile_evt = complete["compile"]
    assert compile_evt["ts"] == 1000.0  # first clock tick, 1 ms
    assert compile_evt["dur"] > 0
    assert compile_evt["args"] == {"query": "//a"}
    assert compile_evt["cat"] == "compile"
    assert complete["isolate"]["cat"] == "rewrite"
    assert complete["execute"]["cat"] == "execute"

    # child events nest inside the parent on the timeline
    parse = complete["parse"]
    assert compile_evt["ts"] < parse["ts"]
    assert parse["ts"] + parse["dur"] <= compile_evt["ts"] + compile_evt["dur"]


def test_chrome_trace_is_json_serializable_with_rich_attributes():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("sql.run", query_plan=["SCAN doc", "USE INDEX"], obj=object()):
        pass
    trace = chrome_trace(tracer)
    text = json.dumps(trace)
    assert "SCAN doc" in text
    assert validate_chrome_trace(json.loads(text)) == []


def test_validate_rejects_malformed_traces():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    assert validate_chrome_trace({"traceEvents": [{"ph": "Z"}]}) != []
    missing_dur = {"traceEvents": [{"ph": "X", "name": "a"}]}
    assert any("missing" in p for p in validate_chrome_trace(missing_dur))
    negative = {
        "traceEvents": [
            {
                "name": "a",
                "cat": "c",
                "ph": "X",
                "ts": 0,
                "dur": -1,
                "pid": 1,
                "tid": 1,
                "args": {},
            }
        ]
    }
    assert "event 0: negative duration" in validate_chrome_trace(negative)


def test_write_chrome_trace_round_trip(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(_traced(), str(path))
    loaded = json.loads(path.read_text())
    assert validate_chrome_trace(loaded) == []
    assert any(e["name"] == "compile" for e in loaded["traceEvents"])


def test_metrics_json_matches_snapshot():
    metrics = MetricsRegistry()
    metrics.count("pipeline.compiles")
    metrics.observe("sql.run_ns", 1500)
    dump = metrics_json(metrics)
    assert dump["schema"] == "repro.obs.metrics/v1"
    assert {k: v for k, v in dump.items() if k != "schema"} == metrics.snapshot()
    json.dumps(dump)  # JSON-ready


def test_tree_report_shows_hierarchy_and_events():
    report = tree_report(_traced())
    lines = report.splitlines()
    assert lines[0].startswith("compile")
    assert any(line.startswith("  parse") for line in lines)
    assert any("+1 event(s)" in line for line in lines)
    assert "ms" in lines[0]
    # min_ms filter drops everything when set absurdly high
    assert tree_report(_traced(), min_ms=1e9) == "(no spans recorded)"


def test_tree_report_empty_tracer():
    assert tree_report(Tracer()) == "(no spans recorded)"
