"""End-to-end observability: a full compile + execute run under
tracing emits the expected phase and rule spans, and the metrics
registry agrees with the engine's own :class:`IsolationStats`."""

from __future__ import annotations

import pytest

from repro.obs import chrome_trace, metrics_scope, tracing, validate_chrome_trace
from repro.pipeline import XQueryProcessor
from repro.rewrite.engine import PHASE_NAMES

QUERY = (
    'for $b in doc("auction.xml")//bidder '
    "where $b/increase > 2 return $b/time"
)


@pytest.fixture()
def processor(fig2_store):
    return XQueryProcessor(store=fig2_store, default_doc="auction.xml")


def test_compile_emits_phase_spans(processor):
    with tracing() as tracer:
        compiled = processor.compile(QUERY)
    compile_span = tracer.find("compile")
    assert compile_span is not None
    assert compile_span.attributes["query"] == QUERY
    # every front-end phase appears, nested under compile
    for phase in ("parse", "normalize", "looplift", "isolate"):
        child = compile_span.find(phase)
        assert child is not None, f"missing {phase} span"
    # isolation exposes one sub-span per driver phase
    isolate_span = compile_span.find("isolate")
    for phase_name in PHASE_NAMES:
        phase_span = isolate_span.find(f"isolate.phase:{phase_name}")
        assert phase_span is not None
        assert phase_span.attributes["rules"] > 0
        assert "applications" in phase_span.attributes
    assert isolate_span.attributes["nodes_before"] > 0
    assert (
        isolate_span.attributes["nodes_after"]
        <= isolate_span.attributes["nodes_before"]
    )
    assert compile_span.attributes["rule_applications"] == (
        compiled.isolation_stats.steps
    )


def test_rule_events_match_isolation_stats(processor):
    with tracing() as tracer:
        compiled = processor.compile(QUERY)
    stats = compiled.isolation_stats
    assert stats.steps > 0
    rule_events = [
        event
        for span in tracer.walk()
        if span.name.startswith("isolate.phase:")
        for event in span.events
    ]
    # one instant event per successful rule application, in step order
    assert len(rule_events) == stats.steps
    assert [e.attributes["step"] for e in rule_events] == list(
        range(1, stats.steps + 1)
    )
    fired = {e.attributes["rule"] for e in rule_events}
    assert fired == {rule for rule, n in stats.applications.items() if n}


def test_metrics_agree_with_isolation_stats(processor):
    with metrics_scope() as metrics:
        compiled = processor.compile(QUERY)
    stats = compiled.isolation_stats
    assert metrics.counters["pipeline.compiles"] == 1
    assert metrics.counters["rewrite.runs"] == 1
    assert metrics.counters["rewrite.steps"] == stats.steps
    fired = metrics.prefixed("rewrite.rule_fired")
    assert fired == {r: n for r, n in stats.applications.items() if n}
    assert metrics.gauges["rewrite.nodes_before"] == stats.nodes_before
    assert metrics.gauges["rewrite.nodes_after"] == stats.nodes_after
    assert metrics.gauges["rewrite.nodes_removed"] == stats.nodes_removed
    for phase_name in PHASE_NAMES:
        assert metrics.histograms[f"rewrite.phase_ns.{phase_name}"].count == 1


def test_isolation_stats_timing_and_shrink(processor):
    compiled = processor.compile(QUERY)
    stats = compiled.isolation_stats
    assert set(stats.phase_ns) == set(PHASE_NAMES)
    assert all(ns >= 0 for ns in stats.phase_ns.values())
    assert stats.total_ns == sum(stats.phase_ns.values())
    assert stats.nodes_before > stats.nodes_after > 0
    assert stats.nodes_removed > 0
    assert sum(stats.phase_applications.values()) == stats.steps


def test_execute_emits_sql_spans_and_metrics(processor):
    compiled = processor.compile(QUERY)
    with tracing() as tracer, metrics_scope() as metrics:
        items = processor.execute(compiled, engine="joingraph-sql")
    execute_span = tracer.find("execute")
    assert execute_span is not None
    assert execute_span.attributes == {
        "engine": "joingraph-sql",
        "items": len(items),
    }
    assert tracer.find("codegen.joingraph") is not None
    run_span = tracer.find("sql.run")
    assert run_span is not None
    assert run_span.attributes["rows"] == len(items)
    # tracing was on, so the EXPLAIN QUERY PLAN text rides on the span
    assert run_span.attributes["query_plan"]
    assert metrics.counters["pipeline.executions.joingraph-sql"] == 1
    assert metrics.counters["sql.statements"] >= 1
    assert metrics.histograms["sql.run_ns"].count >= 1


def test_full_run_trace_is_schema_valid(processor):
    with tracing() as tracer:
        compiled = processor.compile(QUERY)
        processor.execute(compiled, engine="joingraph-sql")
        processor.execute(compiled, engine="interpreter")
    trace = chrome_trace(tracer)
    assert validate_chrome_trace(trace) == []
    names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert {"compile", "parse", "isolate", "execute", "sql.run"} <= names
    assert any(n.startswith("isolate.phase:") for n in names)
    # rule applications show up as instant events
    assert any(e["ph"] == "i" for e in trace["traceEvents"])


def test_disabled_tracer_changes_nothing(processor):
    """With the default (disabled) tracer the pipeline produces the
    same results and records no spans."""
    reference = processor.execute(processor.compile(QUERY), engine="interpreter")
    with tracing() as tracer:
        traced = processor.execute(processor.compile(QUERY), engine="interpreter")
    assert traced == reference
    assert tracer.find("compile") is not None


def test_checked_run_with_no_findings_keeps_analysis_clean(fig2_store):
    processor = XQueryProcessor(
        store=fig2_store, default_doc="auction.xml", checked=True
    )
    with metrics_scope() as metrics:
        processor.compile(QUERY)
    assert metrics.prefixed("analysis.diagnostics") == {}
