"""Tracer unit tests: nesting, ordering, the disabled no-op path."""

from __future__ import annotations

import time

from repro.obs import (
    NULL_SPAN,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)
from repro.obs.tracer import NullSpan


class FakeClock:
    """Deterministic ns clock advancing 1000 ns per reading."""

    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        self.now += 1000
        return self.now


def test_span_nesting_and_ordering():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            with tracer.span("inner"):
                pass
    assert [r.name for r in tracer.roots] == ["outer"]
    outer = tracer.roots[0]
    assert [c.name for c in outer.children] == ["first", "second"]
    assert [c.name for c in outer.children[1].children] == ["inner"]
    # children are strictly inside the parent and ordered in time
    first, second = outer.children
    assert outer.start_ns < first.start_ns
    assert first.end_ns is not None and first.end_ns <= second.start_ns
    assert second.end_ns is not None and second.end_ns <= outer.end_ns


def test_span_durations_monotonic_clock():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a") as span:
        pass
    assert span.duration_ns == 1000
    assert span.duration_ms == 0.001


def test_attributes_and_events():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("work", phase=1) as span:
        span.set(extra="yes")
        span.event("milestone", step=7)
    assert span.attributes == {"phase": 1, "extra": "yes"}
    [event] = span.events
    assert event.name == "milestone"
    assert event.attributes == {"step": 7}
    assert span.start_ns < event.ts_ns < span.end_ns


def test_tracer_event_outside_any_span_becomes_root():
    tracer = Tracer(clock=FakeClock())
    tracer.event("lonely", k=1)
    [root] = tracer.roots
    assert root.name == "lonely"
    assert root.duration_ns == 0


def test_current_and_find_and_walk():
    tracer = Tracer()
    assert tracer.current is None
    with tracer.span("a"):
        with tracer.span("b") as b:
            assert tracer.current is b
    assert tracer.current is None
    assert tracer.find("b") is b
    assert tracer.find("nope") is None
    assert [s.name for s in tracer.walk()] == ["a", "b"]


def test_disabled_tracer_records_nothing_and_shares_null_span():
    tracer = Tracer(enabled=False)
    span = tracer.span("anything", attr=1)
    assert span is NULL_SPAN
    assert isinstance(span, NullSpan)
    with span as inner:
        inner.set(x=1)
        inner.event("no-op")
    tracer.event("ignored")
    assert tracer.roots == []
    assert tracer.current is None


def test_disabled_span_is_cheap():
    """The no-op path must be within an order of magnitude of a bare
    function call — the <2% overhead budget on bench_isolation rests
    on this."""
    tracer = Tracer(enabled=False)
    n = 20_000
    start = time.perf_counter()
    for _ in range(n):
        with tracer.span("x"):
            pass
    elapsed = time.perf_counter() - start
    assert elapsed / n < 5e-6  # < 5µs per disabled span (CI-safe bound)


def test_mismatched_exit_recovers():
    tracer = Tracer()
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer.__enter__()
    inner.__enter__()
    # closing the outer span abandons the still-open inner one
    outer.__exit__(None, None, None)
    assert tracer.current is None


def test_reset_drops_spans():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    tracer.reset()
    assert tracer.roots == []


def test_global_tracer_default_disabled_and_restorable():
    default = get_tracer()
    assert default.enabled is False
    replacement = Tracer()
    assert set_tracer(replacement) is replacement
    assert get_tracer() is replacement
    set_tracer(None)
    assert get_tracer() is default


def test_tracing_context_manager_installs_and_restores():
    before = get_tracer()
    with tracing() as tracer:
        assert get_tracer() is tracer
        assert tracer.enabled
        with tracer.span("inside"):
            pass
    assert get_tracer() is before
    assert tracer.find("inside") is not None
