"""The Prometheus text exposition: emit → parse round-trip, value
fidelity, name sanitization, and validator rejections."""

from __future__ import annotations

import math

from repro.obs import (
    MetricsRegistry,
    prometheus_text,
    validate_prometheus_text,
)
from repro.obs.flight import FlightContext, FlightRecorder


def _registry() -> MetricsRegistry:
    metrics = MetricsRegistry()
    metrics.count("service.queries", 42)
    metrics.count("service.cache.hits", 17)
    metrics.count("rewrite.rule_fired.17", 3)
    metrics.gauge("service.pool.connections", 4)
    for value in (100.0, 2_000.0, 450_000.0, 90_000_000.0):
        metrics.observe("service.query_ns", value)
    return metrics


def _parse_samples(text: str) -> dict[str, float]:
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


def test_exposition_round_trips_through_the_validator():
    text = prometheus_text(_registry())
    assert validate_prometheus_text(text) == []


def test_counter_gauge_and_summary_values_survive():
    metrics = _registry()
    samples = _parse_samples(prometheus_text(metrics))
    assert samples["repro_service_queries_total"] == 42
    assert samples["repro_service_cache_hits_total"] == 17
    assert samples["repro_service_pool_connections"] == 4
    assert samples["repro_service_query_ns_count"] == 4
    assert samples["repro_service_query_ns_sum"] == sum(
        (100.0, 2_000.0, 450_000.0, 90_000_000.0)
    )
    # every exposed quantile is a live histogram estimate, within the
    # documented ~5% relative error of the true p50 (2000)
    p50 = samples['repro_service_query_ns{quantile="0.5"}']
    assert math.isclose(p50, 2_000.0, rel_tol=0.05)


def test_flight_recorder_metrics_are_included():
    recorder = FlightRecorder(slow_threshold_s=10.0)
    context = FlightContext()
    context.note_cache("exact")
    recorder.record(
        query_text="//a",
        engine="joingraph-sql",
        status="ok",
        context=context,
        elapsed_ns=5_000_000,
    )
    text = prometheus_text(MetricsRegistry(), flight=recorder)
    assert validate_prometheus_text(text) == []
    samples = _parse_samples(text)
    assert samples["repro_flight_recorded"] == 1
    assert samples["repro_flight_latency_ns_count"] == 1


def test_hostile_names_are_sanitized_not_emitted_raw():
    metrics = MetricsRegistry()
    metrics.count("bad name{with}=chars\n", 1)
    metrics.count("analysis.diagnostics.JGI-031", 2)
    text = prometheus_text(metrics)
    assert validate_prometheus_text(text) == []
    # the raw name survives only inside escaped HELP text, never in a
    # sample line
    samples = [ln for ln in text.splitlines() if ln and not ln.startswith("#")]
    assert all("{with}" not in line for line in samples)
    assert "repro_analysis_diagnostics_JGI_031_total 2" in text


def test_colliding_sanitized_counters_sum_not_duplicate():
    metrics = MetricsRegistry()
    metrics.count("cache.hits", 2)
    metrics.count("cache,hits", 3)  # sanitizes to the same name
    text = prometheus_text(metrics)
    assert validate_prometheus_text(text) == []
    assert _parse_samples(text)["repro_cache_hits_total"] == 5
    assert text.count("# TYPE repro_cache_hits_total") == 1


def test_prefixless_exposition_is_still_valid():
    text = prometheus_text(_registry(), prefix="")
    assert validate_prometheus_text(text) == []
    assert "service_queries_total 42" in text


def test_validator_rejects_malformed_expositions():
    assert validate_prometheus_text("9bad_name 1\n") != []
    assert validate_prometheus_text("no_type_declared 1\n") != []
    assert validate_prometheus_text(
        "# TYPE m wrongkind\nm 1\n"
    ) != []
    assert validate_prometheus_text(
        "# TYPE m counter\nm not-a-float\n"
    ) != []
    assert validate_prometheus_text(
        '# TYPE m summary\nm{quantile="1.5"} 1\n'
    ) != []
    assert validate_prometheus_text(
        '# TYPE m counter\nm{l="bad\\q"} 1\n'
    ) != []
    assert validate_prometheus_text(
        "# TYPE m counter\nm 1\n# TYPE m counter\n"
    ) != []


def test_validator_accepts_the_format_corners_we_emit():
    text = (
        "# HELP m a\\\\slash and a\\nnewline\n"
        "# TYPE m counter\n"
        "m 1\n"
        "# TYPE s summary\n"
        's{quantile="0.99"} 0.5\n'
        "s_sum 1.5\n"
        "s_count 3\n"
    )
    assert validate_prometheus_text(text) == []
