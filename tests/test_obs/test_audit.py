"""Planner estimate-vs-actual audit tests (q-error)."""

from __future__ import annotations

import pytest

from repro.compiler import compile_core
from repro.infoset import DocumentStore
from repro.obs import (
    OperatorAudit,
    audit_plan,
    metrics_scope,
    qerror,
    qerror_table,
    tracing,
)
from repro.planner import JoinGraphPlanner, explain_plan
from repro.planner.explain import audit_explain
from repro.rewrite import isolate
from repro.sql import flatten_query
from repro.xquery import normalize, parse_xquery

XML = """\
<lib>
  <shelf id="s1">
    <book y="1990"><t>A</t></book>
    <book y="2001"><t>B</t></book>
  </shelf>
  <shelf id="s2">
    <book y="2001"><t>C</t></book>
  </shelf>
</lib>
"""


@pytest.fixture(scope="module")
def store():
    s = DocumentStore()
    s.load(XML, "lib.xml")
    return s


def plan_for(store, query):
    core = normalize(parse_xquery(query), default_doc="lib.xml")
    isolated, _ = isolate(compile_core(core, store))
    return JoinGraphPlanner(store.table).plan(flatten_query(isolated))


def test_qerror_symmetric_and_floored():
    assert qerror(10, 10) == 1.0
    assert qerror(10, 100) == qerror(100, 10) == 10.0
    # empty intermediates stay finite thanks to the 0.5-row floor
    assert qerror(0, 0) == 1.0
    assert qerror(4, 0) == 8.0


def test_operator_audit_properties():
    audit = OperatorAudit(
        position=0,
        alias="d1",
        kind="leaf",
        operator="IndexScan",
        estimated=2.0,
        actual=6,
    )
    assert audit.q == 3.0
    assert audit.underestimated
    over = OperatorAudit(
        position=1,
        alias="d2",
        kind="nljoin",
        operator="NLJoin",
        estimated=9.0,
        actual=3,
    )
    assert over.q == 3.0
    assert not over.underestimated


def test_audit_plan_counts_actual_rows(store):
    plan = plan_for(store, 'doc("lib.xml")//book/t')
    expected = plan_for(store, 'doc("lib.xml")//book/t').execute()
    items, audits = audit_plan(plan)
    assert items == expected
    assert len(audits) == len(plan.steps)
    for audit, step in zip(audits, plan.steps):
        assert audit.alias == step.alias
        assert audit.estimated == step.estimated_cardinality
        assert audit.actual >= 0
        assert audit.q >= 1.0
    # the final step must have produced at least the result rows
    assert audits[-1].actual >= len(items)


def test_audit_plan_annotates_operators_and_explain(store):
    plan = plan_for(store, 'doc("lib.xml")//shelf/book')
    assert "[rows=" not in explain_plan(plan)
    audit_plan(plan)
    assert "[rows=" in explain_plan(plan)


def test_audit_explain_composes_plan_and_table(store):
    plan = plan_for(store, 'doc("lib.xml")//shelf/book')
    text = audit_explain(plan)
    assert "estimate audit:" in text
    assert "q-error" in text
    assert "worst q-error" in text


def test_audit_plan_records_metrics_and_span(store):
    plan = plan_for(store, 'doc("lib.xml")//book[t]')
    with tracing() as tracer, metrics_scope() as metrics:
        audit_plan(plan)
    assert metrics.histograms["planner.qerror"].count == len(plan.steps)
    assert metrics.histograms["planner.qerror_max"].count == 1
    aliases = {step.alias for step in plan.steps}
    for alias in aliases:
        assert f"planner.qerror.{alias}" in metrics.gauges
        assert f"planner.actual_rows.{alias}" in metrics.gauges
    span = tracer.find("planner.audit")
    assert span is not None
    assert span.attributes["steps"] == len(plan.steps)
    assert "worst_alias" in span.attributes
    assert tracer.find("planner.execute") is not None


def test_audit_empty_result_plan(store):
    plan = plan_for(store, 'doc("lib.xml")//nothing')
    items, audits = audit_plan(plan)
    assert items == []
    for audit in audits:
        assert audit.q >= 1.0  # floored, never inf/nan


def test_qerror_table_rendering(store):
    plan = plan_for(store, 'doc("lib.xml")//shelf/book')
    _, audits = audit_plan(plan)
    table = qerror_table(audits)
    assert "alias" in table.splitlines()[0]
    assert "worst q-error" in table.splitlines()[-1]
    assert qerror_table([]) == "(no planner steps audited)"
