"""The query flight recorder: ring semantics, context plumbing,
slow-log promotion, and end-to-end capture through both services."""

from __future__ import annotations

import threading

import pytest

import repro
from repro.errors import DeadlineExceeded
from repro.obs import validate_flight_snapshot
from repro.obs.flight import (
    FlightContext,
    FlightRecorder,
    adopt_context,
    current_context,
    flight_capture,
    query_hash,
)


def _record(recorder, *, elapsed_ms=1.0, status="ok", context=None, **kw):
    if context is None:
        context = FlightContext()
        context.note_cache("exact")
    return recorder.record(
        query_text="//item/name",
        engine="joingraph-sql",
        status=status,
        context=context,
        elapsed_ns=int(elapsed_ms * 1e6),
        **kw,
    )


# -- the ring --------------------------------------------------------------


def test_ring_retains_newest_and_keeps_counting():
    recorder = FlightRecorder(capacity=3, slow_threshold_s=10.0)
    for _ in range(7):
        _record(recorder)
    counts = recorder.counts()
    assert counts["recorded"] == 7
    assert counts["retained"] == 3
    assert [r.seq for r in recorder.records()] == [5, 6, 7]
    # latency percentiles survive ring eviction
    assert recorder.stats()["latency_ns"]["count"] == 7


def test_sequence_numbers_are_unique_under_contention():
    recorder = FlightRecorder(capacity=4096, slow_threshold_s=10.0)

    def hammer():
        for _ in range(200):
            _record(recorder)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seqs = [record.seq for record in recorder.records()]
    assert len(seqs) == len(set(seqs)) == 1600


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(slow_capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(slow_threshold_s=-1.0)


# -- promotion -------------------------------------------------------------


def test_promotion_reasons_rank_surfaced_over_degraded_over_slow():
    recorder = FlightRecorder(slow_threshold_s=0.01)
    _record(recorder, elapsed_ms=1.0)  # fast, clean: not promoted
    _record(recorder, elapsed_ms=50.0)  # over threshold
    degraded = FlightContext()
    degraded.note_degraded()
    _record(recorder, elapsed_ms=50.0, context=degraded)
    _record(recorder, elapsed_ms=1.0, status="error:BackendUnavailable")
    reasons = [capture.reason for capture in recorder.slow()]
    assert reasons == ["slow", "degraded", "surfaced"]
    counts = recorder.counts()
    assert counts["promoted"] == 3
    assert counts["errors"] == 1
    assert counts["degraded"] == 1


def test_detail_callable_only_runs_on_promotion():
    recorder = FlightRecorder(slow_threshold_s=0.01)
    calls = []

    def detail():
        calls.append(1)
        return {"explain": ["SCAN doc"], "trace": []}

    _record(recorder, elapsed_ms=1.0, detail=detail)
    assert calls == []
    _record(recorder, elapsed_ms=50.0, detail=detail)
    assert calls == [1]
    [capture] = recorder.slow()
    assert capture.explain == ["SCAN doc"]
    # no live trace: spans are synthesized from the phase clock
    assert capture.trace == []


def test_failing_detail_never_breaks_recording():
    recorder = FlightRecorder(slow_threshold_s=0.0)

    def detail():
        raise RuntimeError("diagnostics exploded")

    record = _record(recorder, detail=detail)
    assert record.seq == 1
    [capture] = recorder.slow()
    assert any("capture failed" in line for line in capture.explain)


# -- context plumbing ------------------------------------------------------


def test_flight_capture_scopes_context_per_thread():
    assert current_context() is None
    with flight_capture(own=True) as outer:
        assert current_context() is outer
        with flight_capture(own=False) as seen:
            assert seen is outer  # nested boundary annotates the caller
    assert current_context() is None


def test_adopt_context_carries_annotations_across_threads():
    with flight_capture(own=True) as context:
        def worker():
            with adopt_context(context):
                active = current_context()
                assert active is context
                active.note_retry()
                active.add_phase("sql", 500)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert context.retries == 1
        assert context.phases_ns["sql"] == 500


def test_cache_and_scatter_notes_are_set_once():
    context = FlightContext()
    context.note_cache("exact")
    context.note_cache("miss")  # the serving boundary wins
    context.note_scatter("scatter", 4)
    context.note_scatter("serial", 1)
    assert context.cache == "exact"
    assert context.scatter == "scatter"
    assert context.fanout == 4


def test_query_hash_is_stable_and_short():
    assert query_hash("//a") == query_hash("//a")
    assert query_hash("//a") != query_hash("//b")
    assert len(query_hash("//a")) == 16


# -- through the single-backend service ------------------------------------


def test_service_records_one_flight_record_per_query():
    with repro.connect() as session:
        session.load("<a><b>1</b><b>2</b></a>", "doc.xml")
        session.execute("//b")
        session.execute("//b")  # exact cache hit
        recorder = session.service.flight
        records = recorder.records()
    assert [r.seq for r in records] == [1, 2]
    assert records[0].cache == "miss"
    assert records[1].cache == "exact"
    assert records[0].rows == 2
    assert "compile" in records[0].phases_ns
    assert "sql" in records[0].phases_ns
    # the cold compile paid the front-end rewrite, the hit did not
    assert "rewrite" in records[0].phases_ns
    assert "rewrite" not in records[1].phases_ns
    assert validate_flight_snapshot(recorder.snapshot()) == []


def test_service_flight_disabled_records_nothing():
    with repro.connect(flight=False) as session:
        session.load("<a><b>1</b></a>", "doc.xml")
        session.execute("//b")
        assert session.service.flight is None
        assert session.stats()["flight"] is None


def test_surfaced_error_is_recorded_and_promoted():
    with repro.connect(deadline_s=1e-9) as session:
        session.load("<a><b>1</b></a>", "doc.xml")
        with pytest.raises(DeadlineExceeded):
            session.execute("//b")
        recorder = session.service.flight
        [record] = recorder.records()
        assert record.status == "error:DeadlineExceeded"
        assert record.surfaced
        assert record.deadline_consumed == 1.0
        [capture] = recorder.slow()
        assert capture.reason == "surfaced"
        assert capture.trace  # synthesized from phases when untraced
    assert validate_flight_snapshot(recorder.snapshot()) == []


def test_deadline_budget_consumption_recorded():
    with repro.connect(deadline_s=60.0) as session:
        session.load("<a><b>1</b></a>", "doc.xml")
        session.execute("//b")
        [record] = session.service.flight.records()
    assert record.deadline_budget_s == 60.0
    assert record.deadline_consumed is not None
    assert 0.0 < record.deadline_consumed < 0.5


# -- through the sharded service -------------------------------------------


def _sharded_session(shards=2, **kw):
    session = repro.connect(shards=shards, **kw)
    for index in range(4):
        session.service.load(
            f"<doc><item><name>n{index}</name></item></doc>",
            f"doc{index}.xml",
            shard=index % shards,
        )
    return session


def test_sharded_service_records_scatter_decision():
    with _sharded_session() as session:
        session.execute("collection()//item[name]")
        [record] = session.service.flight.records()
    assert record.scatter == "scatter"
    assert record.fanout == 2
    assert record.shards == 2
    assert record.pattern_classified
    assert record.rows == 4
    assert "merge" in record.phases_ns


def test_sharded_shard_services_annotate_not_record():
    """Exactly one record per query: the shard-level services run with
    recording off and annotate the boundary's context instead."""
    with _sharded_session() as session:
        session.execute("collection()//item[name]")
        service = session.service
        assert all(s.flight is None for s in service._shard_services)
        assert service.flight.counts()["recorded"] == 1


def test_sharded_single_doc_query_routes():
    with _sharded_session() as session:
        session.execute('doc("doc0.xml")//name')
        [record] = session.service.flight.records()
    assert record.scatter == "route"
    assert record.fanout == 1


def test_sharded_unsafe_query_falls_serial():
    with _sharded_session() as session:
        # a FLWOR result is not scatter-safe: the classifier sends it
        # to the combined serial store
        session.execute("for $x in collection()//item return $x/name")
        [record] = session.service.flight.records()
    assert record.scatter == "serial"
    assert record.fanout == 1


def test_sharded_snapshot_validates():
    with _sharded_session(slow_threshold_s=0.0) as session:
        session.execute("collection()//item[name]")
        snapshot = session.service.flight.snapshot()
    assert validate_flight_snapshot(snapshot) == []
    [capture] = snapshot["slow"]
    assert capture["reason"] == "slow"
    assert capture["explain"]  # EXPLAIN rows from a shard backend


# -- latency epochs (corpus-change invalidation) ---------------------------


def test_mark_epoch_restarts_percentiles_but_not_counts():
    """Regression: ``stats()`` percentiles used to aggregate across
    corpus changes, so ``Session.stats()["flight"]`` reported latencies
    of plans that no longer exist.  An epoch mark restarts the
    percentile population; cumulative counts and the ring survive."""
    recorder = FlightRecorder(capacity=16, slow_threshold_s=10.0)
    for _ in range(5):
        _record(recorder, elapsed_ms=100.0)
    before = recorder.stats()
    assert before["latency_ns"]["count"] == 5
    assert before["epochs"] == 0

    recorder.mark_epoch()
    after = recorder.stats()
    assert after["latency_ns"]["count"] == 0
    assert after["epochs"] == 1
    assert after["recorded"] == 5  # cumulative counts survive
    assert len(recorder.records()) == 5  # the ring survives
    # the full snapshot stays cumulative for offline analysis
    assert recorder.snapshot()["latency_ns"]["count"] == 5

    _record(recorder, elapsed_ms=1.0)
    fresh = recorder.stats()
    assert fresh["latency_ns"]["count"] == 1
    # percentiles now describe only the new epoch: ~1ms, not ~100ms
    assert fresh["latency_ns"]["p99"] < 50e6


def test_session_flight_percentiles_recompute_after_graft():
    """A collection graft invalidates every compiled plan; the serving
    percentiles must roll with it (satellite regression)."""
    with _sharded_session() as session:
        session.execute("collection()//item[name]")
        before = session.stats()["flight"]
        assert before["latency_ns"]["count"] >= 1
        session.load("<doc><item><name>n</name></item></doc>", "late.xml")
        after = session.stats()["flight"]
        assert after["epochs"] == before["epochs"] + 1
        assert after["latency_ns"]["count"] == 0
        assert after["recorded"] == before["recorded"]
        # new executions repopulate the fresh epoch
        session.execute("collection()//item[name]")
        repopulated = session.stats()["flight"]
        assert repopulated["latency_ns"]["count"] == 1
