"""MetricsRegistry unit tests: counters, gauges, histograms, merge,
the thread-local scope, and diagnostic recording."""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import (
    Histogram,
    MetricsRegistry,
    get_metrics,
    metrics_scope,
    record_diagnostics,
    set_metrics,
)


def test_counters_accumulate():
    metrics = MetricsRegistry()
    metrics.count("a")
    metrics.count("a", 4)
    metrics.count("b")
    assert metrics.counters == {"a": 5, "b": 1}


def test_gauges_overwrite():
    metrics = MetricsRegistry()
    metrics.gauge("depth", 3)
    metrics.gauge("depth", 7.5)
    assert metrics.gauges == {"depth": 7.5}


def test_histogram_observe_and_summary():
    hist = Histogram()
    for value in (10, 20, 30):
        hist.observe(value)
    assert hist.count == 3
    assert hist.total == 60
    assert hist.minimum == 10
    assert hist.maximum == 30
    assert hist.mean == 20
    summary = hist.summary()
    assert summary["count"] == 3
    assert summary["mean"] == 20


def test_histogram_empty_mean():
    assert Histogram().mean == 0.0


def test_registry_observe_creates_histograms():
    metrics = MetricsRegistry()
    metrics.observe("lat", 5)
    metrics.observe("lat", 15)
    assert metrics.histograms["lat"].count == 2


def test_merge_combines_all_kinds():
    a = MetricsRegistry()
    a.count("hits", 2)
    a.gauge("size", 10)
    a.observe("lat", 1)
    b = MetricsRegistry()
    b.count("hits", 3)
    b.count("misses")
    b.gauge("size", 20)
    b.observe("lat", 9)
    b.observe("other", 4)
    a.merge(b)
    assert a.counters == {"hits": 5, "misses": 1}
    assert a.gauges == {"size": 20}  # incoming gauge wins
    assert a.histograms["lat"].count == 2
    assert a.histograms["lat"].total == 10
    assert a.histograms["other"].count == 1


def test_snapshot_round_trips_to_plain_data():
    metrics = MetricsRegistry()
    metrics.count("c", 2)
    metrics.gauge("g", 1.5)
    metrics.observe("h", 4)
    snap = metrics.snapshot()
    assert snap["counters"] == {"c": 2}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["histograms"]["h"]["count"] == 1


def test_prefixed_filters_by_dotted_prefix():
    metrics = MetricsRegistry()
    metrics.count("rewrite.rule_fired.R1", 2)
    metrics.count("rewrite.rule_fired.R2")
    metrics.count("sql.statements")
    fired = metrics.prefixed("rewrite.rule_fired")
    assert fired == {"R1": 2, "R2": 1}


def test_reset_clears_everything():
    metrics = MetricsRegistry()
    metrics.count("c")
    metrics.gauge("g", 1)
    metrics.observe("h", 1)
    metrics.reset()
    assert metrics.counters == {}
    assert metrics.gauges == {}
    assert metrics.histograms == {}


def test_global_registry_set_and_restore():
    default = get_metrics()
    replacement = MetricsRegistry()
    assert set_metrics(replacement) is replacement
    assert get_metrics() is replacement
    set_metrics(None)
    assert get_metrics() is default


def test_metrics_scope_installs_and_restores():
    before = get_metrics()
    with metrics_scope() as metrics:
        assert get_metrics() is metrics
        get_metrics().count("inside")
    assert get_metrics() is before
    assert metrics.counters == {"inside": 1}
    assert "inside" not in before.counters


@dataclass
class _Diag:
    code: str
    severity: str


def test_record_diagnostics_counts_by_code_and_severity():
    with metrics_scope() as metrics:
        record_diagnostics(
            [
                _Diag("JGI030", "error"),
                _Diag("JGI030", "error"),
                _Diag("JGI050", "warning"),
            ]
        )
    assert metrics.counters["analysis.diagnostics.JGI030"] == 2
    assert metrics.counters["analysis.diagnostics.JGI050"] == 1
    assert metrics.counters["analysis.errors"] == 2
    assert metrics.counters["analysis.warnings"] == 1
