"""Property tests for the log-bucketed quantile histogram.

The histogram backs every latency percentile the serving stack
reports, so its two contracts are checked against randomized inputs:

* **merge is lossless**: merging histograms in any order/grouping
  produces exactly the state one histogram would have after observing
  every sample (bucket counts are integers, so associativity and
  commutativity are exact; totals are float sums, compared with
  tolerance).
* **quantile error bound**: against a sorted-sample nearest-rank
  oracle, every reported quantile of a positive distribution is within
  the documented relative error of ``sqrt(GAMMA) - 1`` (< 5%).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import _GAMMA, Histogram

#: the documented relative error bound, padded a hair for float round-off
_ERROR_FACTOR = math.sqrt(_GAMMA) * 1.0001

#: latency-like positive samples spanning nanoseconds to minutes
positive_samples = st.lists(
    st.floats(min_value=1.0, max_value=1e11, allow_nan=False,
              allow_infinity=False),
    min_size=1,
    max_size=200,
)

#: samples including zero and negatives (clock-skew deltas)
any_samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e11, allow_nan=False,
              allow_infinity=False),
    max_size=120,
)

quantiles = st.sampled_from((0.5, 0.9, 0.95, 0.99))


def _fill(samples) -> Histogram:
    histogram = Histogram()
    for sample in samples:
        histogram.observe(sample)
    return histogram


def _assert_same_state(left: Histogram, right: Histogram) -> None:
    assert left.count == right.count
    assert left.underflow == right.underflow
    assert left.buckets == right.buckets
    assert left.minimum == right.minimum
    assert left.maximum == right.maximum
    assert math.isclose(left.total, right.total, rel_tol=1e-9, abs_tol=1e-6)


@given(any_samples, any_samples)
@settings(max_examples=80)
def test_merge_is_commutative(a, b):
    ab = _fill(a)
    ab.merge(_fill(b))
    ba = _fill(b)
    ba.merge(_fill(a))
    _assert_same_state(ab, ba)


@given(any_samples, any_samples, any_samples)
@settings(max_examples=80)
def test_merge_is_associative(a, b, c):
    # (a + b) + c
    left = _fill(a)
    left.merge(_fill(b))
    left.merge(_fill(c))
    # a + (b + c)
    bc = _fill(b)
    bc.merge(_fill(c))
    right = _fill(a)
    right.merge(bc)
    _assert_same_state(left, right)


@given(any_samples, any_samples)
@settings(max_examples=80)
def test_merge_equals_single_recorder(a, b):
    """Worker/shard registry merges must reproduce the histogram one
    registry would have recorded — the claim metrics.py makes."""
    merged = _fill(a)
    merged.merge(_fill(b))
    single = _fill(a + b)
    _assert_same_state(merged, single)


@given(positive_samples, quantiles)
@settings(max_examples=150)
def test_quantile_within_relative_error_of_oracle(samples, q):
    histogram = _fill(samples)
    ordered = sorted(samples)
    rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
    oracle = ordered[rank - 1]
    estimate = histogram.quantile(q)
    assert oracle / _ERROR_FACTOR <= estimate <= oracle * _ERROR_FACTOR


@given(positive_samples)
@settings(max_examples=60)
def test_quantiles_are_monotone_and_clamped(samples):
    histogram = _fill(samples)
    values = [histogram.quantile(q) for q in (0.5, 0.9, 0.95, 0.99)]
    assert values == sorted(values)
    for value in values:
        assert min(samples) <= value <= max(samples)


def test_empty_histogram_reports_zeros():
    histogram = Histogram()
    assert histogram.quantile(0.5) == 0.0
    assert histogram.mean == 0.0
    summary = histogram.summary()
    assert summary["count"] == 0
    assert summary["p99"] == 0.0


def test_single_sample_is_exactly_recovered():
    histogram = Histogram()
    histogram.observe(1234.5)
    for q in (0.5, 0.9, 0.95, 0.99):
        assert histogram.quantile(q) == 1234.5
    assert histogram.summary()["max"] == 1234.5


def test_non_positive_samples_collapse_into_underflow():
    histogram = Histogram()
    histogram.observe(-5.0)
    histogram.observe(0.0)
    histogram.observe(10.0)
    assert histogram.underflow == 2
    assert histogram.quantile(0.5) == -5.0  # reported as the minimum
    assert histogram.quantile(0.99) <= 10.0
