"""Cross-process state marshalling of metrics.

The process shard executor ships each worker's :class:`MetricsRegistry`
back as a plain-data ``state()`` snapshot and folds it in with
``merge_state``.  These properties pin the lossless-merge contract the
executor depends on: a histogram round-trips bucket-for-bucket, and
merging snapshots is indistinguishable from merging the live objects.
"""

from __future__ import annotations

import json
import random

from repro.obs.metrics import Histogram, MetricsRegistry


def _observed(rng: random.Random, n: int) -> Histogram:
    histogram = Histogram()
    for _ in range(n):
        # span the bucket range: sub-bucket values (underflow), mid
        # range, and huge outliers that land in the top bucket
        histogram.observe(rng.choice((0, 1, rng.randrange(1, 10**10))))
    return histogram


def test_histogram_state_round_trips_bucket_for_bucket():
    rng = random.Random(7)
    for trial in range(25):
        histogram = _observed(rng, rng.randrange(0, 200))
        state = histogram.state()
        json.dumps(state)  # must survive a pickle/JSON boundary
        clone = Histogram.from_state(state)
        assert clone.state() == state
        assert clone.summary() == histogram.summary()
        assert clone.percentiles() == histogram.percentiles()


def test_histogram_state_merge_equals_live_merge():
    rng = random.Random(11)
    for trial in range(25):
        a = _observed(rng, rng.randrange(1, 150))
        b = _observed(rng, rng.randrange(1, 150))
        live = Histogram.from_state(a.state())
        live.merge(b)
        remote = Histogram.from_state(a.state())
        remote.merge(Histogram.from_state(b.state()))
        assert remote.state() == live.state()


def _registry(rng: random.Random) -> MetricsRegistry:
    registry = MetricsRegistry()
    for _ in range(rng.randrange(1, 40)):
        registry.count("calls." + rng.choice("xyz"), rng.randrange(1, 5))
    for _ in range(rng.randrange(1, 5)):
        registry.gauge("level." + rng.choice("pq"), rng.randrange(100))
    for _ in range(rng.randrange(1, 60)):
        registry.observe(
            "latency." + rng.choice("ab"), rng.randrange(1, 10**9)
        )
    return registry


def test_registry_merge_state_equals_live_merge():
    rng = random.Random(13)
    for trial in range(20):
        parts = [_registry(rng) for _ in range(rng.randrange(1, 5))]
        live = MetricsRegistry()
        marshalled = MetricsRegistry()
        for part in parts:
            live.merge(part)
            state = part.state()
            json.dumps(state)
            marshalled.merge_state(state)
        assert marshalled.state() == live.state()
        assert marshalled.snapshot() == live.snapshot()


def test_registry_state_survives_a_pickle_boundary():
    import pickle

    rng = random.Random(17)
    part = _registry(rng)
    shipped = pickle.loads(pickle.dumps(part.state()))
    merged = MetricsRegistry()
    merged.merge_state(shipped)
    assert merged.state() == part.state()
