"""Section 4.1 / Fig. 3 — axis reversal: a query written with a reverse
axis and its forward-dual formulation produce equivalent join graphs,
and the back-end is free to evaluate either direction.

``//price/ancestor::closed_auction`` and
``//closed_auction[price]`` select the same closed_auction elements;
the paper's point is that the pre/size duality makes the two
directions interchangeable for the optimizer.
"""

from __future__ import annotations

import pytest

PAIRS = [
    (
        'doc("auction.xml")//price/parent::closed_auction',
        'doc("auction.xml")//closed_auction[price]',
    ),
    (
        'doc("auction.xml")//bidder/ancestor::open_auction',
        'doc("auction.xml")//open_auction[descendant::bidder]',
    ),
]


@pytest.mark.parametrize("reverse_query,forward_query", PAIRS)
def test_dual_formulations_agree(harness, reverse_query, forward_query):
    processor = harness.processors["xmark"]
    reverse_result = processor.execute(processor.compile(reverse_query))
    forward_result = processor.execute(processor.compile(forward_query))
    assert reverse_result == forward_result
    assert len(reverse_result) > 0


@pytest.mark.parametrize(
    "direction,query",
    [
        ("reverse", 'doc("auction.xml")//price/ancestor::closed_auction'),
        ("forward", 'doc("auction.xml")//closed_auction[price]'),
    ],
)
def test_direction_timing(benchmark, harness, direction, query):
    """Both directions execute at comparable speed on the join graph —
    the axis predicates are symmetric range conditions."""
    processor = harness.processors["xmark"]
    compiled = processor.compile(query)
    reference = processor.execute(compiled, engine="interpreter")
    result = benchmark.pedantic(
        lambda: processor.execute(compiled, engine="joingraph-sql"),
        rounds=3,
        iterations=1,
    )
    assert result == reference
    benchmark.group = "axis-reversal"


def test_planner_chooses_direction_by_selectivity(harness):
    """Given a highly selective test on the structurally lower node,
    the planner binds it first and probes upward (axis reversal), even
    though the query was written top-down."""
    from repro.planner import JoinGraphPlanner, plan_phenomena
    from repro.sql import flatten_query

    processor = harness.processors["xmark"]
    compiled = processor.compile(
        'doc("auction.xml")//closed_auction[price > 500]'
    )
    planner = JoinGraphPlanner(harness.stores["xmark"].table)
    plan = planner.plan(flatten_query(compiled.isolated_plan))
    phenomena = plan_phenomena(plan)
    assert plan.steps[0].node_test.get("name") == "price"
    assert phenomena.axis_reversal
