"""TPoX query-section workloads (paper [17]): the paper reports
execution-time improvements on this benchmark family as well; every
query runs as a verified single-block join graph."""

from __future__ import annotations

import pytest

from repro.infoset import DocumentStore
from repro.pipeline import XQueryProcessor
from repro.workloads import TPOX_QUERIES, TPoXConfig, generate_tpox


@pytest.fixture(scope="module")
def tpox_processor():
    store = DocumentStore()
    for uri, document in generate_tpox(TPoXConfig(factor=0.002)).items():
        store.load_tree(document)
    return XQueryProcessor(store, default_doc="custacc.xml")


@pytest.mark.parametrize("name", sorted(TPOX_QUERIES))
def test_tpox_joingraph(benchmark, tpox_processor, name):
    query = TPOX_QUERIES[name]
    compiled = tpox_processor.compile(query.text)
    reference = tpox_processor.execute(compiled, engine="interpreter")
    result = benchmark.pedantic(
        lambda: tpox_processor.execute(compiled, engine="joingraph-sql"),
        rounds=3,
        iterations=1,
    )
    assert result == reference
    benchmark.group = "tpox"


@pytest.mark.parametrize("name", ["T4", "T5"])
def test_tpox_isolation_beats_stacked(tpox_processor, name):
    """The join-heavy TPoX workloads benefit from isolation just like
    Q2 does."""
    import time

    query = TPOX_QUERIES[name]
    compiled = tpox_processor.compile(query.text)
    reference = tpox_processor.execute(compiled, engine="interpreter")

    start = time.perf_counter()
    assert tpox_processor.execute(compiled, engine="stacked-sql") == reference
    stacked = time.perf_counter() - start

    start = time.perf_counter()
    assert tpox_processor.execute(compiled, engine="joingraph-sql") == reference
    isolated = time.perf_counter() - start
    assert isolated < stacked
