"""Ablation — which isolation rules carry the technique?

Disabling rule families and measuring what still isolates quantifies
each design choice DESIGN.md calls out:

* without rule (16) there is no tail δ and the plan keeps its stacked
  distincts;
* without the key-self-join collapses (19)/(20)/(21) the For/If/Comp
  equi-joins (and the ``#`` row-ids) survive, so the plan cannot reach
  single-block SQL at all for loop-carrying queries;
* without the rank rules (9)–(13) the ρ operators stay scattered.
"""

from __future__ import annotations

import pytest

from repro.algebra import count_ops, run_plan
from repro.compiler import compile_core
from repro.errors import CodegenError
from repro.rewrite import is_join_graph, isolate
from repro.sql import generate_join_graph_sql
from repro.workloads import PAPER_QUERIES
from repro.xquery import normalize, parse_xquery

ABLATIONS = {
    "full": set(),
    "no-tail-distinct": {"16"},
    "no-key-collapse": {"19", "20", "21"},
    "no-rank-goal": {"9", "10", "11", "12", "13"},
    "no-join-pushdown": {"17", "18"},
}


@pytest.fixture(scope="module")
def q1_core(harness):
    return normalize(parse_xquery(PAPER_QUERIES["Q1"].text))


@pytest.mark.parametrize("ablation", list(ABLATIONS))
def test_ablated_isolation_still_correct(benchmark, harness, q1_core, ablation):
    """Whatever subset of rules runs, rewriting must preserve the
    result — and only the full rule set reaches join graph shape."""
    store = harness.stores["xmark"]
    reference = run_plan(compile_core(q1_core, store))

    def ablated():
        return isolate(compile_core(q1_core, store), disabled=ABLATIONS[ablation])[0]

    isolated = benchmark.pedantic(ablated, rounds=3, iterations=1)
    assert run_plan(isolated) == reference
    benchmark.group = "ablation-q1"


def test_full_rule_set_reaches_join_graph(harness, q1_core):
    store = harness.stores["xmark"]
    isolated, _ = isolate(compile_core(q1_core, store))
    assert is_join_graph(isolated)
    generate_join_graph_sql(isolated)  # single block renders


def test_without_key_collapse_rowids_survive(harness, q1_core):
    store = harness.stores["xmark"]
    isolated, _ = isolate(
        compile_core(q1_core, store), disabled=ABLATIONS["no-key-collapse"]
    )
    ops = count_ops(isolated)
    assert ops.get("RowId", 0) >= 1
    with pytest.raises(CodegenError):
        generate_join_graph_sql(isolated)


def test_without_tail_distinct_blocking_distincts_survive(harness, q1_core):
    store = harness.stores["xmark"]
    full, _ = isolate(compile_core(q1_core, store))
    ablated, _ = isolate(
        compile_core(q1_core, store), disabled=ABLATIONS["no-tail-distinct"]
    )
    assert count_ops(ablated)["Distinct"] >= count_ops(full)["Distinct"]


def test_without_rank_goal_ranks_survive(harness, q1_core):
    store = harness.stores["xmark"]
    ablated, _ = isolate(
        compile_core(q1_core, store), disabled=ABLATIONS["no-rank-goal"]
    )
    assert count_ops(ablated).get("RowRank", 0) >= 1
