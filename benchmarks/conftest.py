"""Shared benchmark fixtures: one harness per session.

Scale factors are chosen so the whole benchmark suite runs in minutes
on a laptop while preserving the paper's entity-count *ratios* (and
thus all relative plan behaviour).  Scale up via environment variables
``REPRO_XMARK_FACTOR`` / ``REPRO_DBLP_FACTOR`` to stress the engines.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.bench import BenchHarness

sys.setrecursionlimit(100_000)

XMARK_FACTOR = float(os.environ.get("REPRO_XMARK_FACTOR", "0.01"))
DBLP_FACTOR = float(os.environ.get("REPRO_DBLP_FACTOR", "0.002"))


@pytest.fixture(scope="session")
def harness() -> BenchHarness:
    return BenchHarness(xmark_factor=XMARK_FACTOR, dblp_factor=DBLP_FACTOR)
