"""Section 2.2 — join-based XPath location step evaluation: the worked
Q0 example and per-axis step costs across engines."""

from __future__ import annotations

import pytest

from repro.workloads.queries import Q0

AXES = (
    "child",
    "descendant",
    "descendant-or-self",
    "parent",
    "ancestor",
    "following",
    "preceding",
    "following-sibling",
    "preceding-sibling",
    "attribute",
)


def test_q0_worked_example(harness):
    """doc(...)/descendant::bidder/child::*/child::text() — the
    three-step path of Section 2.2 agrees across engines (on the
    Fig. 2 snippet it returns pre ranks 7 and 9; here on XMark)."""
    processor = harness.processors["xmark"]
    compiled = processor.compile(Q0)
    reference = processor.execute(compiled, engine="interpreter")
    assert processor.execute(compiled, engine="joingraph-sql") == reference
    assert len(reference) > 0


@pytest.mark.parametrize("axis", AXES)
def test_axis_step_joingraph(benchmark, harness, axis):
    """One location step along each axis, via the join graph SQL."""
    processor = harness.processors["xmark"]
    query = f'doc("auction.xml")//bidder/{axis}::*'
    if axis == "attribute":
        query = f'doc("auction.xml")//itemref/{axis}::*'
    compiled = processor.compile(query)
    reference = processor.execute(compiled, engine="interpreter")
    result = benchmark.pedantic(
        lambda: processor.execute(compiled, engine="joingraph-sql"),
        rounds=3,
        iterations=1,
    )
    assert result == reference
    benchmark.group = "axis-steps"
