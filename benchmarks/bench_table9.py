"""Paper Table 9 — wall-clock execution times of Q1–Q6 across the four
engine configurations (plus our own physical planner).

Every cell is verified against the reference interpreter before being
timed.  The assertions at the bottom pin down the *shape* claims of
the paper's Table 9 (who wins, roughly by how much), which is what a
reproduction on a different substrate can and should check.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ENGINES, format_table9

QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6")
TABLE9_ENGINES = (
    "stacked-sql",
    "joingraph-sql",
    "planner",
    "purexml-whole",
    "purexml-segmented",
)

_timings: dict[tuple[str, str], float] = {}


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("engine", TABLE9_ENGINES)
def test_table9_cell(benchmark, harness, query, engine):
    reference = harness.reference(harness.query(query))

    def run():
        return harness.execute(query, engine)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result == reference, f"{query}/{engine} diverges from reference"
    _timings[(query, engine)] = benchmark.stats.stats.mean
    benchmark.group = f"table9-{query}"


def test_table9_shape_claims(harness):
    """The relative factors of Table 9, asserted on our substrate."""
    runs = {key: harness.run(*key[::-1]) for key in ()}
    del runs
    timing = dict(_timings)
    if len(timing) < len(QUERIES) * len(TABLE9_ENGINES):
        # cells are filled by the parametrized benchmarks above; when
        # running this test alone, measure directly.
        for query in QUERIES:
            for engine in TABLE9_ENGINES:
                if (query, engine) not in timing:
                    timing[(query, engine)] = harness.run(query, engine).seconds

    def t(query: str, engine: str) -> float:
        return max(timing[(query, engine)], 1e-6)

    # (1) Join graph isolation beats the stacked plan clearly on Q1
    #     (paper: 63.0s -> 11.8s, a five-fold reduction).
    assert t("Q1", "joingraph-sql") * 2 < t("Q1", "stacked-sql")

    # (2) Q2: the stacked plan "did not complete within 20 hours";
    #     isolation makes it run in sub-second time.  Here: at least
    #     an order of magnitude.
    assert t("Q2", "joingraph-sql") * 10 < t("Q2", "stacked-sql")

    # (3) Q2 overwhelms pureXML in both setups (paper: dnf) while the
    #     join graph sails through.
    assert t("Q2", "joingraph-sql") * 10 < t("Q2", "purexml-whole")
    assert t("Q2", "joingraph-sql") * 10 < t("Q2", "purexml-segmented")

    # (4) point queries (Q3, Q5) are the best case for the segmented
    #     pureXML setup: the XMLPATTERN lookup beats whole-document
    #     traversal.
    assert t("Q3", "purexml-segmented") <= t("Q3", "purexml-whole") * 1.5
    assert t("Q5", "purexml-segmented") * 2 < t("Q5", "purexml-whole")

    # (5) raw path traversal (Q4): the B-tree-supported join graph is
    #     competitive with (our) native traversal — the paper reports a
    #     >20-fold Pathfinder advantage on DB2's substrate.
    assert t("Q4", "joingraph-sql") < t("Q4", "purexml-whole") * 2


def test_print_table9(harness, capsys):
    """Regenerate the Table 9 grid (printed with -s)."""
    runs = harness.table9(queries=QUERIES, engines=TABLE9_ENGINES)
    assert all(r.correct for r in runs)
    with capsys.disabled():
        print()
        print("Table 9 (reproduced; seconds, single run, verified):")
        print(format_table9(runs))
        print(
            f"[xmark: {harness.node_count('xmark')} nodes, "
            f"dblp: {harness.node_count('dblp')} nodes]"
        )
