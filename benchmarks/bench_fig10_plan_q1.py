"""Paper Fig. 10 — the optimizer's execution plan for Q1.

The relational planner, given nothing but the Table 6 B-trees and
statistics, produces an NLJOIN/IXSCAN pipeline with the features the
paper highlights: path stitching via index continuations and the
early-out semi-join for the ``[bidder]`` existence predicate.
"""

from __future__ import annotations

import pytest

from repro.planner import JoinGraphPlanner, explain_plan, plan_phenomena
from repro.sql import flatten_query


@pytest.fixture(scope="module")
def q1_plan(harness):
    compiled = harness.compiled(harness.query("Q1"))
    planner = JoinGraphPlanner(harness.stores["xmark"].table)
    return planner.plan(flatten_query(compiled.isolated_plan))


def test_plan_executes_correctly(benchmark, harness, q1_plan):
    from collections import Counter

    reference = harness.execute("Q1", "joingraph-sql")  # result multiset
    result = benchmark(lambda: q1_plan.execute())
    assert Counter(result) == reference


def test_nljoin_ixscan_pipeline(q1_plan):
    """Fig. 10's shape: a chain of index nested-loop joins."""
    kinds = [s.kind for s in q1_plan.steps]
    assert kinds[0] == "leaf"
    assert all(k == "nljoin" for k in kinds[1:])
    assert all(s.index is not None for s in q1_plan.steps)


def test_bidder_leg_is_early_out_semijoin(q1_plan):
    """Fig. 10 marks the bidder NLJOIN early-out: the predicate only
    filters, its nodes are never returned."""
    phenomena = plan_phenomena(q1_plan)
    assert phenomena.early_out_aliases, explain_plan(q1_plan)
    early_tests = {
        s.node_test.get("name")
        for s in q1_plan.steps
        if s.early_out
    }
    assert "bidder" in early_tests


def test_continuations_are_resumed_from_bound_aliases(q1_plan):
    """Path stitching: every non-leading leg resumes from a previously
    bound alias (the paper's continuation points)."""
    planned: set[str] = set()
    for step in q1_plan.steps:
        if step.kind != "leaf":
            assert step.bound_sources <= planned or not step.bounds
        planned.add(step.alias)


def test_explain_renders(q1_plan, capsys):
    text = explain_plan(q1_plan)
    assert "NLJOIN" in text and "IXSCAN" in text and "continuations" in text
    with capsys.disabled():
        print()
        print("Fig. 10 (reproduced): execution plan for Q1")
        print(text)
