"""Paper Table 6 — the B-tree index set proposed by the design advisor
for the Q2-representative workload, and the utility of those indexes.

Checks that (a) the advisor proposes the paper's key family, and
(b) executing the join graph with the Table 6 index set is much faster
than with no indexes (the "utility of the proposed indexes will be
high" claim).
"""

from __future__ import annotations

import pytest

from repro.planner import advise_indexes
from repro.sql import SQLiteBackend, flatten_query
from repro.workloads import PAPER_QUERIES

PAPER_TABLE6 = {"nkspl", "nksp", "nlkp", "nlkps", "vnlkp", "nlkpv", "nkdlp", "p|nvkls"}


@pytest.fixture(scope="module")
def workload(harness):
    queries = []
    for name in ("Q1", "Q2", "Q3", "Q4"):
        compiled = harness.compiled(harness.query(name))
        queries.append(flatten_query(compiled.isolated_plan))
    return queries


def test_advisor_proposes_table6_keys(workload, capsys):
    advised = advise_indexes(workload)
    proposed = {a.short_name for a in advised}
    assert proposed == PAPER_TABLE6
    with capsys.disabled():
        print()
        print("Table 6 (reproduced): B-tree indexes proposed by the advisor")
        for a in advised:
            print(f"  {a.short_name:8} {','.join(a.key):32} {a.deployment}")


def test_advisor_on_single_path_query(harness):
    """A pure path workload needs no value indexes."""
    compiled = harness.compiled(harness.query("Q1"))
    advised = advise_indexes([flatten_query(compiled.isolated_plan)])
    names = {a.short_name for a in advised}
    assert "nksp" in names
    assert "vnlkp" not in names  # no value comparison in Q1


def test_index_utility(benchmark, harness):
    """Join graph execution with vs without the Table 6 indexes.

    Q1's three-fold self-join is used: without indexes the back-end is
    reduced to nested table scans (Q2's twenty-fold chain would not
    terminate in bench-able time without indexes, which is the point).
    """
    compiled = harness.compiled(harness.query("Q1"))
    sql = compiled.joingraph_sql
    table = harness.stores["xmark"].table
    with SQLiteBackend(table) as indexed, SQLiteBackend(table, indexes={}) as bare:
        reference = indexed.run(sql)
        result = benchmark.pedantic(lambda: indexed.run(sql), rounds=3, iterations=1)
        assert result == reference
        import time

        start = time.perf_counter()
        assert bare.run(sql) == reference
        bare_seconds = time.perf_counter() - start
    assert benchmark.stats.stats.mean < bare_seconds
