"""Section 4.2's storage-design sensitivity: pureXML "favors database
designs that lead to comparably small XML document segments".

This bench varies the segmented store's granularity (cut depth) and
the availability of an eligible XMLPATTERN index, showing the two
regimes of Table 9's right-hand columns: point queries fly when an
index pinpoints a few small segments, and degrade toward
whole-document traversal when no index applies or segments are large.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.infoset.encoding import node_pre_map
from repro.purexml import PureXMLEngine
from repro.workloads import PAPER_QUERIES

Q3 = PAPER_QUERIES["Q3"].text  # indexed point query
Q4 = PAPER_QUERIES["Q4"].text  # raw traversal: no index applies


@pytest.fixture(scope="module")
def setups(harness):
    document = harness.xmark_doc
    patterns = ("/site/people/person/@id",)
    return {
        "whole": PureXMLEngine({"auction.xml": document}),
        "segmented-indexed": PureXMLEngine(
            {"auction.xml": document},
            segmented=True,
            cut_depth=2,
            patterns=patterns,
        ),
        "segmented-noindex": PureXMLEngine(
            {"auction.xml": document}, segmented=True, cut_depth=2
        ),
        "segmented-coarse": PureXMLEngine(
            {"auction.xml": document},
            segmented=True,
            cut_depth=1,
            patterns=patterns,
        ),
    }


@pytest.fixture(scope="module")
def reference(harness):
    pre_map = node_pre_map(harness.xmark_doc)
    def result_of(engine, query):
        return Counter(pre_map[id(n)] for n in engine.run(query))
    return result_of


@pytest.mark.parametrize("setup", ["whole", "segmented-indexed",
                                   "segmented-noindex", "segmented-coarse"])
@pytest.mark.parametrize("query_name,query", [("Q3", Q3), ("Q4", Q4)])
def test_segmentation_grid(benchmark, setups, reference, setup, query_name, query):
    engine = setups[setup]
    expected = reference(setups["whole"], query)
    result = benchmark.pedantic(
        lambda: reference(engine, query), rounds=3, iterations=1
    )
    assert result == expected
    benchmark.group = f"purexml-{query_name}"


def test_index_matters_for_point_queries(setups, reference):
    import time

    expected = reference(setups["whole"], Q3)

    def seconds(engine):
        start = time.perf_counter()
        assert reference(engine, Q3) == expected
        return time.perf_counter() - start

    indexed = seconds(setups["segmented-indexed"])
    unindexed = seconds(setups["segmented-noindex"])
    # without an eligible XMLPATTERN index every segment is scanned
    assert indexed < unindexed


def test_segment_counts(setups):
    fine = setups["segmented-indexed"].store.segment_count
    coarse = setups["segmented-coarse"].store.segment_count
    assert fine > coarse  # deeper cut => more, smaller segments
