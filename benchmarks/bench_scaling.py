"""Scaling behaviour — the paper's claim that the relational XQuery
processor "can perfectly cope with large XML instances" (Section 1):
join graph execution time grows gently with document size, while the
native whole-document XSCAN grows linearly with the instance.
"""

from __future__ import annotations

import time

import pytest

from repro.infoset import DocumentStore
from repro.infoset.encoding import node_pre_map
from repro.pipeline import XQueryProcessor
from repro.purexml import PureXMLEngine
from repro.workloads import PAPER_QUERIES, XMarkConfig, generate_xmark

FACTORS = (0.002, 0.01, 0.03)


@pytest.fixture(scope="module")
def scaled_instances():
    instances = []
    for factor in FACTORS:
        document = generate_xmark(XMarkConfig(factor=factor))
        store = DocumentStore()
        store.load_tree(document)
        instances.append(
            {
                "factor": factor,
                "document": document,
                "store": store,
                "processor": XQueryProcessor(store, default_doc="auction.xml"),
                "native": PureXMLEngine({"auction.xml": document}),
            }
        )
    return instances


@pytest.mark.parametrize("index", range(len(FACTORS)))
def test_q1_joingraph_scaling(benchmark, scaled_instances, index):
    instance = scaled_instances[index]
    processor = instance["processor"]
    compiled = processor.compile(PAPER_QUERIES["Q1"].text)
    reference = processor.execute(compiled, engine="interpreter")
    result = benchmark.pedantic(
        lambda: processor.execute(compiled, engine="joingraph-sql"),
        rounds=3,
        iterations=1,
    )
    assert result == reference
    benchmark.group = "scaling-q1-joingraph"
    benchmark.extra_info["nodes"] = len(instance["store"].table)


def test_scaling_shape(scaled_instances, capsys):
    """Q4 (raw traversal): the native engine's cost tracks the
    document size; the indexed join graph stays ahead at every scale
    and the gap does not shrink."""
    rows = []
    for instance in scaled_instances:
        processor = instance["processor"]
        compiled = processor.compile(PAPER_QUERIES["Q4"].text)
        pre_map = node_pre_map(instance["document"])
        start = time.perf_counter()
        relational = processor.execute(compiled, engine="joingraph-sql")
        relational_seconds = time.perf_counter() - start
        start = time.perf_counter()
        native_nodes = instance["native"].run(PAPER_QUERIES["Q4"].text)
        native_seconds = time.perf_counter() - start
        assert sorted(pre_map[id(n)] for n in native_nodes) == sorted(relational)
        rows.append(
            (
                len(instance["store"].table),
                relational_seconds,
                native_seconds,
            )
        )
    with capsys.disabled():
        print()
        print("scaling (Q4): nodes  joingraph-sql  purexml-whole")
        for nodes, rel, native in rows:
            print(f"  {nodes:>8}  {rel:>12.4f}s  {native:>12.4f}s")
    # the native engine's cost must grow with the instance…
    assert rows[-1][2] > rows[0][2]
    # …and the relational engine stays competitive at the largest scale
    assert rows[-1][1] < rows[-1][2] * 5
