"""Section 5 follow-up (ROX [2]) — runtime optimization on top of join
graphs: sampling-based join ordering vs classical statistics.

The workload is engineered to defeat uniform-distribution statistics:
a value predicate on a heavily skewed attribute looks selective on
paper (1/distinct-values) but matches almost everything.  The
statistics planner anchors the plan on it; the sampling planner
*measures* candidate fan-outs on a small sample of the intermediate
result and avoids the trap — the paper's motivation for starting
runtime optimization from isolated join graphs.
"""

from __future__ import annotations

import random

import pytest

from repro.infoset import DocumentStore
from repro.pipeline import XQueryProcessor
from repro.planner import JoinGraphPlanner
from repro.sql import flatten_query


def skewed_document(groups: int = 120, rare: int = 3) -> str:
    """Most rows carry status='hot' (skew); only ``rare`` are 'cold',
    and a sibling marker makes a structural alternative attractive."""
    rng = random.Random(5)
    parts = ["<db>"]
    for i in range(groups):
        status = "cold" if i < rare else "hot"
        marked = "<marked/>" if i % 40 == 0 else ""
        parts.append(
            f'<rec id="r{i}"><status>{status}</status>{marked}'
            f"<load>{rng.randint(1, 9)}</load></rec>"
        )
    parts.append("</db>")
    return "".join(parts)


QUERY = 'doc("skew.xml")//rec[status = "hot"][marked]/load'


@pytest.fixture(scope="module")
def skew_env():
    store = DocumentStore()
    store.load(skewed_document(), "skew.xml")
    processor = XQueryProcessor(store, default_doc="skew.xml")
    compiled = processor.compile(QUERY)
    reference = processor.execute(compiled, engine="interpreter")
    flat = flatten_query(compiled.isolated_plan)
    return store, flat, reference


@pytest.mark.parametrize("mode", ["statistics", "sampling"])
def test_mode_correctness_and_speed(benchmark, skew_env, mode):
    store, flat, reference = skew_env
    planner = JoinGraphPlanner(store.table, mode=mode)

    def plan_and_run():
        return planner.plan(flat).execute()

    result = benchmark.pedantic(plan_and_run, rounds=3, iterations=1)
    assert result == reference
    benchmark.group = "rox-sampling"


def test_sampling_sees_through_the_skew(skew_env, capsys):
    store, flat, reference = skew_env
    static_plan = JoinGraphPlanner(store.table, mode="statistics").plan(flat)
    sampled_plan = JoinGraphPlanner(store.table, mode="sampling").plan(flat)
    assert static_plan.execute() == reference
    assert sampled_plan.execute() == reference

    def total_estimated(plan) -> float:
        return sum(s.estimated_cardinality for s in plan.steps)

    with capsys.disabled():
        print()
        print("ROX-style sampling vs statistics (skewed value predicate):")
        print(f"  statistics order: {static_plan.join_order}")
        print(f"  sampling order:   {sampled_plan.join_order}")

    # both must at least be correct; the orders may legitimately agree
    # on tiny data, but the sampling plan must never be *worse* in its
    # own measured units than a pure guess: it consumed the same graph
    assert sampled_plan.join_order
    assert static_plan.join_order
