"""Paper Figs. 4 & 7 — compilation and join graph isolation itself:
plan sizes before/after, rewriting cost, and the blocking-operator
elimination that defines the technique.
"""

from __future__ import annotations

import pytest

from repro.algebra import count_ops
from repro.compiler import compile_core
from repro.rewrite import is_join_graph, isolate
from repro.workloads import PAPER_QUERIES
from repro.xquery import normalize, parse_xquery

QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4")


@pytest.mark.parametrize("name", QUERY_NAMES)
def test_isolation_speed(benchmark, harness, name):
    """Wall-clock of the rewriting procedure (compile + isolate)."""
    query = harness.query(name)
    store = harness.stores[query.document]
    default = "auction.xml" if query.document == "xmark" else "dblp.xml"
    core = normalize(parse_xquery(query.text), default_doc=default)

    def compile_and_isolate():
        return isolate(compile_core(core, store))[0]

    isolated = benchmark.pedantic(compile_and_isolate, rounds=3, iterations=1)
    assert is_join_graph(isolated)


@pytest.mark.parametrize("name", QUERY_NAMES)
def test_blocking_operators_eliminated(harness, name, capsys):
    """Fig. 4 -> Fig. 7: scattered δ/%/# become a single tail δ."""
    query = harness.query(name)
    store = harness.stores[query.document]
    default = "auction.xml" if query.document == "xmark" else "dblp.xml"
    core = normalize(parse_xquery(query.text), default_doc=default)
    stacked = compile_core(core, store)
    isolated, stats = isolate(compile_core(core, store))
    before, after = count_ops(stacked), count_ops(isolated)

    assert before["RowRank"] >= 2
    assert after.get("RowRank", 0) <= 1
    assert after.get("RowId", 0) == 0
    assert after.get("Distinct", 0) <= 1
    assert after["DocScan"] == 1
    with capsys.disabled():
        print(
            f"\n{name}: ops {sum(before.values())} -> {sum(after.values())}"
            f"  (rank {before['RowRank']}->{after.get('RowRank', 0)},"
            f" distinct {before['Distinct']}->{after.get('Distinct', 0)},"
            f" rowid {before.get('RowId', 0)}->0;"
            f" {stats.total()} rule applications)"
        )


def test_stacked_vs_isolated_execution(benchmark, harness):
    """The headline claim on Q1: isolation speeds up back-end
    execution several-fold (paper: 63.0s -> 11.8s on DB2)."""
    import time

    compiled = harness.compiled(harness.query("Q1"))
    processor = harness.processors["xmark"]
    reference = processor.execute(compiled, engine="joingraph-sql")

    start = time.perf_counter()
    assert processor.execute(compiled, engine="stacked-sql") == reference
    stacked_seconds = time.perf_counter() - start

    result = benchmark.pedantic(
        lambda: processor.execute(compiled, engine="joingraph-sql"),
        rounds=3,
        iterations=1,
    )
    assert result == reference
    assert benchmark.stats.stats.mean * 2 < stacked_seconds
