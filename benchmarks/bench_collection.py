"""Shard-scaling collection benchmark — emits ``BENCH_collection.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_collection.py [--quick] \\
        [--documents 8] [--factor 0.02] [--repeat 5] [--shards 1,2,4] \\
        [--out BENCH_collection.json] [--check]

Measures scatter-gather throughput of :class:`repro.service.ShardedService`
over a multi-document XMark corpus against a single combined-table
baseline (see ``docs/performance.md``).  Every configuration is verified
item- and byte-identical to the serial answer before timing.  ``--check``
exits non-zero unless the widest shard point beats 1 shard (the CI
smoke gate; the full acceptance bar is >= 2x at 4 shards).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.collection import (
    DEFAULT_COLLECTION_QUERIES,
    format_collection_bench,
    run_collection_bench,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--documents", type=int, default=8)
    parser.add_argument("--factor", type=float, default=0.02)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts for the scaling curve",
    )
    parser.add_argument(
        "--queries",
        default=",".join(DEFAULT_COLLECTION_QUERIES),
        help="comma-separated collection query names",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke size: tiny documents, few repeats",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="shard execution mode for every curve point: 'thread' "
        "stays in-process, 'process' runs one worker process per "
        "shard over the zero-copy attach",
    )
    parser.add_argument(
        "--out",
        default="BENCH_collection.json",
        metavar="FILE",
        help="where to write the JSON document",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the widest fan-out beats 1 shard",
    )
    args = parser.parse_args(argv)
    sys.setrecursionlimit(100_000)

    try:
        queries = {
            name: DEFAULT_COLLECTION_QUERIES[name]
            for name in args.queries.split(",")
        }
    except KeyError as missing:
        print(f"unknown query name {missing}", file=sys.stderr)
        return 2

    report = run_collection_bench(
        documents=args.documents,
        factor=args.factor,
        repeat=args.repeat,
        shards=tuple(int(n) for n in args.shards.split(",")),
        queries=queries,
        quick=args.quick,
        executor=args.executor,
    )
    Path(args.out).write_text(json.dumps(report, indent=1) + "\n")
    print(format_collection_bench(report))
    print(f"-- wrote {args.out}")

    if args.check:
        widest = max(report["curve"], key=lambda point: point["shards"])
        if widest["speedup_vs_1_shard"] <= 1.0:
            print(
                f"FAIL: {widest['shards']}-shard fan-out not above the "
                f"1-shard baseline "
                f"({widest['speedup_vs_1_shard']:.2f}x)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
