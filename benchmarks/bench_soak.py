"""Open-loop multi-tenant soak benchmark — emits ``BENCH_soak.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_soak.py [--quick] \\
        [--duration 5.0] [--load-points 0.5,1.0,2.0] [--fault-rate 0.12] \\
        [--executor thread|process] [--working-set-mb N] \\
        [--out BENCH_soak.json]

Drives the asyncio front door (:class:`repro.service.FrontDoor`) with
open-loop Poisson arrivals from three tenant personas across an
offered-load multiplier curve, optionally under fault injection (see
``docs/serving.md``).  The report carries the goodput-vs-offered curve
and its knee, per-tenant latency percentiles and chaos ledgers, Jain's
fairness index at saturation, and a differential gate that re-executes
sampled responses serially and byte-compares them.  Exits non-zero
when any report gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.workloads.soak import SoakConfig, format_soak_report, run_soak


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument(
        "--load-points",
        default="0.5,1.0,2.0",
        help="comma-separated offered-load multipliers (of each "
        "tenant's contracted rate)",
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--documents", type=int, default=4)
    parser.add_argument("--factor", type=float, default=0.005)
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="shard execution mode of the backing ShardedService",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="fault-injection rate (0 disables chaos)",
    )
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument(
        "--differential-rate",
        type=float,
        default=0.05,
        help="fraction of OK responses sampled for serial re-execution",
    )
    parser.add_argument(
        "--working-set-mb",
        type=float,
        default=None,
        help="working-set byte budget in MiB (process executor only)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke size: short points, tiny corpus",
    )
    parser.add_argument(
        "--out",
        default="BENCH_soak.json",
        metavar="FILE",
        help="where to write the JSON document",
    )
    args = parser.parse_args(argv)
    sys.setrecursionlimit(100_000)

    config = SoakConfig(
        seed=args.seed,
        duration_s=args.duration,
        load_points=tuple(float(m) for m in args.load_points.split(",")),
        shards=args.shards,
        documents=args.documents,
        factor=args.factor,
        executor=args.executor,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
        differential_rate=args.differential_rate,
        working_set_bytes=(
            None
            if args.working_set_mb is None
            else int(args.working_set_mb * 1024 * 1024)
        ),
    )
    if args.quick:
        config = config.quick()

    report = run_soak(config)
    Path(args.out).write_text(json.dumps(report, indent=1) + "\n")
    print(format_soak_report(report))
    print(f"-- wrote {args.out}")

    if not report["gates"]["passed"]:
        failed = [
            name
            for name, ok in report["gates"].items()
            if name != "passed" and not ok
        ]
        print(f"FAIL: soak gates not met: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
