"""Paper Fig. 11 — the optimizer's execution plan for Q2.

Section 4.1's two phenomena must emerge from plain cost-based join
ordering:

* **step reordering**: the plan's very first index scan evaluates the
  ``price > 500`` / ``closed_auction`` tests *before* any document
  context exists — it starts in the middle of the step sequence;
* **axis reversal**: the plan then resolves the containing
  ``closed_auction`` / document nodes by probing *upwards* (descendant
  traded for ancestor), visible as reverse-direction range edges.
"""

from __future__ import annotations

import pytest

from repro.planner import JoinGraphPlanner, explain_plan, plan_phenomena
from repro.sql import flatten_query


@pytest.fixture(scope="module")
def q2_plan(harness):
    compiled = harness.compiled(harness.query("Q2"))
    planner = JoinGraphPlanner(harness.stores["xmark"].table)
    return planner.plan(flatten_query(compiled.isolated_plan))


def test_plan_executes_correctly(benchmark, harness, q2_plan):
    from collections import Counter

    reference = harness.execute("Q2", "joingraph-sql")  # result multiset
    result = benchmark.pedantic(lambda: q2_plan.execute(), rounds=3, iterations=1)
    assert Counter(result) == reference


def test_leading_scan_is_the_value_selective_test(q2_plan):
    """Fig. 11: the very first IXSCAN evaluates the price (value) or
    closed_auction test, long before the document node provides any
    context — cost-based step reordering."""
    phenomena = plan_phenomena(q2_plan)
    assert phenomena.leading_node_test in ("::price", "::closed_auction"), (
        explain_plan(q2_plan)
    )
    leading = q2_plan.steps[0]
    assert leading.node_test.get("name") in ("price", "closed_auction")
    # the typed-value index serves the price predicate
    if leading.node_test.get("name") == "price":
        assert leading.index == "idx_nkdlp"


def test_step_reordering_detected(q2_plan):
    assert plan_phenomena(q2_plan).step_reordering


def test_axis_reversal_detected(q2_plan):
    """At least one structural edge runs against its XQuery direction
    (e.g. finding the closed_auction that *contains* the bound price
    node = descendant traded for ancestor)."""
    phenomena = plan_phenomena(q2_plan)
    assert phenomena.axis_reversal, explain_plan(q2_plan)


def test_path_branching_detected(q2_plan):
    """Several continuations resume from the same bound alias — the
    equivalent of holistic twig joins' branching nodes."""
    assert plan_phenomena(q2_plan).path_branching


def test_document_node_is_not_the_leading_leg(q2_plan):
    leading = q2_plan.steps[0]
    assert leading.node_test.get("kind") != 0  # not the DOC row


def test_explain_renders(q2_plan, capsys):
    text = explain_plan(q2_plan)
    with capsys.disabled():
        print()
        print("Fig. 11 (reproduced): execution plan for Q2")
        print(text)
        phenomena = plan_phenomena(q2_plan)
        print(
            f"[reordering={phenomena.step_reordering} "
            f"reversed={phenomena.reversed_edges} "
            f"branching={phenomena.branching_points}]"
        )
