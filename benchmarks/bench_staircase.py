"""The loop-lifted staircase join (paper Section 2.4 / [5], [13]) vs
the naive per-context union: context pruning and single-scan evaluation
pay off when iteration context sets overlap (exactly the pattern
``fs:ddo`` produces for nested location steps)."""

from __future__ import annotations

import random

import pytest

from repro.infoset.staircase import naive_union, staircase_join
from repro.xmltree.model import NodeKind


@pytest.fixture(scope="module")
def workload(harness):
    """Per-iteration context sets with heavy overlap: for each bidder,
    the ancestors-or-self chain — stepping descendant from these
    re-visits shared subtrees."""
    table = harness.stores["xmark"].table
    rng = random.Random(11)
    elem = int(NodeKind.ELEM)
    elements = [p for p in range(len(table)) if table.kind[p] == elem]
    contexts = {}
    for iteration in range(40):
        anchor = rng.choice(elements)
        # nested context set: the anchor plus a few of its descendants
        end = anchor + table.size[anchor]
        members = [anchor] + [
            p
            for p in rng.sample(range(anchor, end + 1), min(4, end - anchor + 1))
            if table.kind[p] == elem
        ]
        contexts[iteration] = members
    return table, contexts


@pytest.mark.parametrize("axis", ["descendant", "ancestor", "following"])
def test_staircase(benchmark, workload, axis):
    table, contexts = workload
    expected = naive_union(table, contexts, axis)
    result = benchmark.pedantic(
        lambda: staircase_join(table, contexts, axis), rounds=3, iterations=1
    )
    assert result == expected
    benchmark.group = f"staircase-{axis}"


@pytest.mark.parametrize("axis", ["descendant", "ancestor", "following"])
def test_naive_union_baseline(benchmark, workload, axis):
    table, contexts = workload
    result = benchmark.pedantic(
        lambda: naive_union(table, contexts, axis), rounds=3, iterations=1
    )
    assert result
    benchmark.group = f"staircase-{axis}"


def test_pruning_wins_on_nested_contexts(workload):
    """With nested context sets, pruning shrinks the scan work."""
    import time

    table, contexts = workload
    start = time.perf_counter()
    staircase_join(table, contexts, "descendant")
    fast = time.perf_counter() - start
    start = time.perf_counter()
    naive_union(table, contexts, "descendant")
    slow = time.perf_counter() - start
    # both are Python loops over the same ranges; the staircase must
    # not be slower than ~the naive union (it skips covered ranges and
    # the sort)
    assert fast < slow * 1.5
