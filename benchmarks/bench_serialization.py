"""Section 4's serialization setup — the paper makes the serialization
point explicit by appending ``/descendant-or-self::node()`` to every
query (its Table 9 numbers include delivering *all* nodes of each
result subtree: Q1 returns 1.6 M rows on the 110 MB instance).

This bench reproduces that setup: Q1 with the serialization step
across engines, plus the XML text serialization itself.
"""

from __future__ import annotations

import pytest

from repro.infoset.serialize import serialize_sequence
from repro.pipeline import XQueryProcessor
from repro.workloads import PAPER_QUERIES


@pytest.fixture(scope="module")
def wrapped(harness):
    processor = XQueryProcessor(
        store=harness.stores["xmark"],
        default_doc="auction.xml",
        serialize_step=True,
    )
    return processor, processor.compile(PAPER_QUERIES["Q1"].text)


@pytest.mark.parametrize("engine", ["joingraph-sql", "stacked-sql"])
def test_q1_with_serialization_step(benchmark, wrapped, engine):
    processor, compiled = wrapped
    reference = processor.execute(compiled, engine="interpreter")
    result = benchmark.pedantic(
        lambda: processor.execute(compiled, engine=engine),
        rounds=3,
        iterations=1,
    )
    assert result == reference
    # the result now covers whole subtrees, not just the root elements
    plain = XQueryProcessor(
        store=processor.store, default_doc="auction.xml"
    )
    roots = plain.execute(plain.compile(PAPER_QUERIES["Q1"].text))
    assert len(result) > len(roots) * 3
    benchmark.group = "q1-serialization"


def test_result_text_serialization(benchmark, harness):
    """Turning the result rows back into XML text (the table-scan
    serialization of Section 2.1)."""
    processor = harness.processors["xmark"]
    compiled = processor.compile(PAPER_QUERIES["Q1"].text)
    items = processor.execute(compiled)
    table = harness.stores["xmark"].table

    text = benchmark(lambda: serialize_sequence(table, items))
    assert text.count("<open_auction") == len(items)
