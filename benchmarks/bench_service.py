"""Service-layer throughput benchmark — emits ``BENCH_service.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] \\
        [--factor 0.01] [--repeat 40] [--workers 1,2,4,8] \\
        [--out BENCH_service.json] [--check]

Measures repeated-query throughput of the cached
:class:`repro.service.QueryService` against the uncached
single-connection baseline, plus the multi-worker scaling curve (see
``docs/performance.md``).  ``--check`` exits non-zero unless cached
throughput is strictly above the uncached baseline (the CI bench-smoke
gate; the full acceptance bar is >= 5x).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.service.bench import (
    DEFAULT_QUERY_SET,
    format_service_bench,
    run_service_bench,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--factor", type=float, default=0.01)
    parser.add_argument("--repeat", type=int, default=40)
    parser.add_argument(
        "--workers",
        default="1,2,4,8",
        help="comma-separated thread-pool widths for the scaling curve",
    )
    parser.add_argument(
        "--queries",
        default=",".join(DEFAULT_QUERY_SET),
        help="comma-separated XMark catalog query names",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke size: tiny document, few repeats",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="scaling-curve execution mode: 'thread' scales the "
        "shared-cache thread pool, 'process' scales worker processes "
        "over the zero-copy shard attach",
    )
    parser.add_argument(
        "--out",
        default="BENCH_service.json",
        metavar="FILE",
        help="where to write the JSON document",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless cached throughput beats the uncached baseline",
    )
    args = parser.parse_args(argv)
    sys.setrecursionlimit(100_000)

    report = run_service_bench(
        factor=args.factor,
        repeat=args.repeat,
        workers=tuple(int(w) for w in args.workers.split(",")),
        queries=tuple(args.queries.split(",")),
        quick=args.quick,
        executor=args.executor,
    )
    Path(args.out).write_text(json.dumps(report, indent=1) + "\n")
    print(format_service_bench(report))
    print(f"-- wrote {args.out}")

    if args.check and report["speedup"] <= 1.0:
        print(
            f"FAIL: cached throughput not above baseline "
            f"(speedup {report['speedup']:.2f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
