"""The extended XMark query catalog (the paper's 'subsumes the XMark
benchmark' claim for in-fragment queries): every catalog query runs as
a verified single-block join graph."""

from __future__ import annotations

import pytest

from repro.workloads.xmark_queries import XMARK_QUERIES


@pytest.mark.parametrize("name", sorted(XMARK_QUERIES))
def test_xmark_catalog_joingraph(benchmark, harness, name):
    query = XMARK_QUERIES[name]
    processor = harness.processors["xmark"]
    compiled = processor.compile(query.text)
    reference = processor.execute(compiled, engine="interpreter")
    result = benchmark.pedantic(
        lambda: processor.execute(compiled, engine="joingraph-sql"),
        rounds=3,
        iterations=1,
    )
    assert result == reference
    assert compiled.joingraph_sql.doc_instances <= 24
    benchmark.group = "xmark-catalog"


def test_catalog_summary(harness, capsys):
    rows = []
    for name in sorted(XMARK_QUERIES):
        query = XMARK_QUERIES[name]
        processor = harness.processors["xmark"]
        compiled = processor.compile(query.text)
        result = processor.execute(compiled)
        rows.append(
            (name, compiled.joingraph_sql.doc_instances, len(result),
             query.description)
        )
    with capsys.disabled():
        print()
        print("extended XMark catalog (join graph instances / result size):")
        for name, instances, size, description in rows:
            print(f"  {name:4} {instances:>3}-fold  {size:>6} items  {description}")
