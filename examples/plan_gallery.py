#!/usr/bin/env python3
"""Plan gallery: regenerate the paper's figures as inspectable files.

Writes, for Q1 and Q2, into ``plan_gallery_out/``:

* ``*_stacked.dot``   — the initial compositional plan (paper Fig. 4)
* ``*_isolated.dot``  — the isolated join graph (paper Fig. 7)
* ``*_physical.dot``  — the optimizer's plan tree (paper Figs. 10/11)
* ``*_explain.txt``   — the continuation-annotated explain output
* ``*.sql``           — the single SELECT-DISTINCT-…-ORDER BY block

Render the dot files with ``dot -Tsvg file.dot -o file.svg``.

Run:  python examples/plan_gallery.py
"""

import sys
from pathlib import Path

from repro import DocumentStore, XQueryProcessor
from repro.planner import JoinGraphPlanner, explain_plan, plan_phenomena
from repro.sql import flatten_query
from repro.viz import algebra_to_dot, physical_to_dot
from repro.workloads import PAPER_QUERIES, XMarkConfig, generate_xmark

sys.setrecursionlimit(100_000)


def main() -> None:
    out_dir = Path("plan_gallery_out")
    out_dir.mkdir(exist_ok=True)

    store = DocumentStore()
    store.load_tree(generate_xmark(XMarkConfig(factor=0.005)))
    processor = XQueryProcessor(store, default_doc="auction.xml")
    planner = JoinGraphPlanner(store.table)

    for name in ("Q1", "Q2"):
        query = PAPER_QUERIES[name]
        compiled = processor.compile(query.text)
        plan = planner.plan(flatten_query(compiled.isolated_plan))

        (out_dir / f"{name}_stacked.dot").write_text(
            algebra_to_dot(compiled.stacked_plan, f"{name} stacked (Fig. 4)")
        )
        (out_dir / f"{name}_isolated.dot").write_text(
            algebra_to_dot(compiled.isolated_plan, f"{name} isolated (Fig. 7)")
        )
        (out_dir / f"{name}_physical.dot").write_text(
            physical_to_dot(plan, f"{name} physical (Figs. 10/11)")
        )
        (out_dir / f"{name}_explain.txt").write_text(explain_plan(plan))
        (out_dir / f"{name}.sql").write_text(compiled.joingraph_sql.text)

        phenomena = plan_phenomena(plan)
        print(f"{name}: wrote 5 artifacts to {out_dir}/")
        print(f"  leading test     : {phenomena.leading_node_test}")
        print(f"  step reordering  : {phenomena.step_reordering}")
        print(f"  axis reversal on : {phenomena.reversed_edges or '—'}")
        print(f"  branching points : {phenomena.branching_points or '—'}")
        print(f"  join graph       : {compiled.joingraph_sql.doc_instances}-fold self-join")
        print()


if __name__ == "__main__":
    main()
