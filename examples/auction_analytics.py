#!/usr/bin/env python3
"""Auction analytics over an XMark-like document — the paper's
motivating workload: collect, filter and join nodes from an auction
site before further processing.

Demonstrates value-based joins (the Q2 family), predicates on typed
values, and how to inspect the physical plan our relational optimizer
chooses — including the XQuery-specific optimizations it reinvents
(step reordering, axis reversal; paper Section 4.1).

Run:  python examples/auction_analytics.py
"""

import sys

from repro import DocumentStore, XQueryProcessor
from repro.planner import JoinGraphPlanner, explain_plan, plan_phenomena
from repro.sql import flatten_query
from repro.workloads import XMarkConfig, generate_xmark

sys.setrecursionlimit(100_000)

EXPENSIVE_CATEGORIES = """
    let $a := doc("auction.xml")
    for $ca in $a//closed_auction[price > 500],
        $i in $a//item,
        $c in $a//category
    where $ca/itemref/@item = $i/@id
      and $i/incategory/@category = $c/@id
    return $c/name
"""

HOT_AUCTIONS = 'doc("auction.xml")//open_auction[bidder][initial > 100]'

BIDDER_TIMES = (
    'for $a in doc("auction.xml")//open_auction[bidder] '
    "return $a/bidder/time"
)


def main() -> None:
    store = DocumentStore()
    store.load_tree(generate_xmark(XMarkConfig(factor=0.01)))
    processor = XQueryProcessor(store=store, default_doc="auction.xml")
    print(f"document: {len(store.table)} nodes")

    # -- the Q2-style value join -------------------------------------
    compiled = processor.compile(EXPENSIVE_CATEGORIES)
    names = processor.execute(compiled)
    print(f"\ncategories with expensive sales: {len(names)}")
    print("sample:", processor.serialize(names[:3]))
    print(f"join graph: {compiled.joingraph_sql.doc_instances}-fold self-join "
          f"of table doc, executed as ONE SQL block")

    # -- what would the optimizer do? --------------------------------
    planner = JoinGraphPlanner(store.table)
    plan = planner.plan(flatten_query(compiled.isolated_plan))
    phenomena = plan_phenomena(plan)
    print("\nphysical plan (our cost-based optimizer):")
    print(explain_plan(plan))
    print(f"\nleading test: {phenomena.leading_node_test} "
          f"(the plan starts mid-path, at the selective value predicate)")
    print(f"axis reversal on: {phenomena.reversed_edges}")

    # -- simpler analytics -------------------------------------------
    hot = processor.execute(processor.compile(HOT_AUCTIONS))
    print(f"\nhot auctions (bidders & initial > 100): {len(hot)}")

    times = processor.execute(processor.compile(BIDDER_TIMES))
    print(f"bid timestamps collected: {len(times)}")
    print("first bids:", processor.serialize(times[:3]))


if __name__ == "__main__":
    main()
