#!/usr/bin/env python3
"""Auction analytics over an XMark-like document — the paper's
motivating workload: collect, filter and join nodes from an auction
site before further processing.

Demonstrates value-based joins (the Q2 family), predicates on typed
values, and how to inspect the physical plan our relational optimizer
chooses — including the XQuery-specific optimizations it reinvents
(step reordering, axis reversal; paper Section 4.1).

Run:  python examples/auction_analytics.py
"""

import sys

import repro
from repro.planner import JoinGraphPlanner, explain_plan, plan_phenomena
from repro.sql import flatten_query
from repro.workloads import XMarkConfig, generate_xmark
from repro.xmltree.serializer import serialize

sys.setrecursionlimit(100_000)

EXPENSIVE_CATEGORIES = """
    let $a := doc("auction.xml")
    for $ca in $a//closed_auction[price > 500],
        $i in $a//item,
        $c in $a//category
    where $ca/itemref/@item = $i/@id
      and $i/incategory/@category = $c/@id
    return $c/name
"""

HOT_AUCTIONS = 'doc("auction.xml")//open_auction[bidder][initial > 100]'

BIDDER_TIMES = (
    'for $a in doc("auction.xml")//open_auction[bidder] '
    "return $a/bidder/time"
)


def main() -> None:
    document = generate_xmark(XMarkConfig(factor=0.01))
    with repro.connect(default_doc="auction.xml") as session:
        session.load(serialize(document), "auction.xml")
        table = session.service.store.table
        print(f"document: {len(table)} nodes")

        # -- the Q2-style value join ---------------------------------
        names = session.execute(EXPENSIVE_CATEGORIES)
        print(f"\ncategories with expensive sales: {len(names)}")
        print("sample:", session.serialize(names.items[:3]))
        compiled = session.service.compile(EXPENSIVE_CATEGORIES)
        print(f"join graph: {compiled.joingraph_sql.doc_instances}-fold "
              f"self-join of table doc, executed as ONE SQL block "
              f"in {names.timings['execute_ns'] / 1e6:.2f} ms")

        # -- what would the optimizer do? ----------------------------
        planner = JoinGraphPlanner(table)
        plan = planner.plan(flatten_query(compiled.isolated_plan))
        phenomena = plan_phenomena(plan)
        print("\nphysical plan (our cost-based optimizer):")
        print(explain_plan(plan))
        print(f"\nleading test: {phenomena.leading_node_test} "
              f"(the plan starts mid-path, at the selective value predicate)")
        print(f"axis reversal on: {phenomena.reversed_edges}")

        # -- simpler analytics ---------------------------------------
        hot = session.execute(HOT_AUCTIONS)
        print(f"\nhot auctions (bidders & initial > 100): {len(hot)}")

        times = session.execute(BIDDER_TIMES)
        print(f"bid timestamps collected: {len(times)}")
        print("first bids:", session.serialize(times.items[:3]))


if __name__ == "__main__":
    main()
