#!/usr/bin/env python3
"""Scatter-gather over a sharded multi-document collection.

Loads an 8-document XMark corpus into a 4-shard session and runs
``fn:collection()`` queries: one compiled join-graph plan fans out
across the per-shard ``doc`` tables and the per-shard answers merge
back in document order — byte-identical to what a single-backend
session returns, which this example verifies before comparing
timings.

Run:  python examples/sharded_collection.py
"""

import time

import repro
from repro.workloads.corpus import CorpusConfig, xmark_corpus
from repro.xmltree.serializer import serialize

QUERIES = {
    "expensive sales": 'collection()//closed_auction[price > 500]/itemref',
    "US people": 'collection()//person[address/country = "United States"]/name',
    "one document": 'doc("xmark2.xml")//open_auction[bidder]/initial',
}


def timed(session, query, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        result = session.execute(query)
        best = min(best, time.perf_counter() - start)
    return result, best


def main() -> None:
    corpus = [
        (serialize(tree), tree.uri)
        for tree in xmark_corpus(CorpusConfig(documents=8, factor=0.01))
    ]
    with repro.connect() as serial, repro.connect(shards=4) as sharded:
        for text, uri in corpus:
            serial.load(text, uri)
            sharded.load(text, uri)
        print(f"corpus: {len(corpus)} documents, "
              f"placement {sharded.service.collection.stats()['per_shard']}")

        for label, query in QUERIES.items():
            expected, serial_s = timed(serial, query)
            result, sharded_s = timed(sharded, query)
            assert list(result) == list(expected)
            assert sharded.serialize(result) == serial.serialize(expected)
            print(f"\n{label}: {len(result)} item(s), "
                  f"fanned out over {result.shards} shard(s)")
            print(f"  serial  {serial_s * 1000:7.2f} ms")
            print(f"  sharded {sharded_s * 1000:7.2f} ms  "
                  f"({serial_s / sharded_s:.2f}x)")


if __name__ == "__main__":
    main()
