#!/usr/bin/env python3
"""Bibliography search over a DBLP-like document — the paper's Table 8
workload: point lookups via @key, wildcard element tests, and the
tuple query Q6.

Also contrasts the relational engine against the native pureXML-style
processor in both whole-document and segmented setups.

Run:  python examples/bibliography_search.py
"""

import sys
import time

from repro import DocumentStore, XQueryProcessor
from repro.purexml import PureXMLEngine
from repro.workloads import DBLPConfig, generate_dblp

sys.setrecursionlimit(100_000)

VLDB_TITLE = '/dblp/*[@key = "conf/vldb2001" and editor and title]/title'
EARLY_THESES = (
    'for $t in /dblp/phdthesis[year < "1994" and author and title] '
    "return ($t/title, $t/author, $t/year)"
)
PROLIFIC = '/dblp/inproceedings[year = "2001"]/title'


def main() -> None:
    document = generate_dblp(DBLPConfig(factor=0.002))
    store = DocumentStore()
    store.load_tree(document)
    processor = XQueryProcessor(store=store, default_doc="dblp.xml")
    print(f"bibliography: {len(store.table)} nodes")

    # -- Q5: wildcard + key lookup ------------------------------------
    title = processor.execute(processor.compile(VLDB_TITLE))
    print("\nVLDB 2001 title:", processor.serialize(title))

    # -- Q6: the tuple query ("return-tuple" of [15]) ------------------
    components = processor.compile_tuple(EARLY_THESES)
    columns = [processor.execute(c) for c in components]
    print(f"\npre-1994 PhD theses: {len(columns[0])}")
    for t, a, y in list(zip(*columns))[:3]:
        print(" ", processor.serialize([t]), "|", processor.serialize([a]),
              "|", processor.serialize([y]))

    # -- papers from 2001 ----------------------------------------------
    papers = processor.execute(processor.compile(PROLIFIC))
    print(f"\n2001 conference papers: {len(papers)}")

    # -- relational vs native (paper Section 4.2) ----------------------
    whole = PureXMLEngine({"dblp.xml": document})
    segmented = PureXMLEngine(
        {"dblp.xml": document},
        segmented=True,
        cut_depth=1,
        patterns=("/dblp/*/@key",),
    )
    print(f"\nsegmented store: {segmented.store.segment_count} segments")
    for label, engine in (("whole", whole), ("segmented", segmented)):
        start = time.perf_counter()
        nodes = engine.run(VLDB_TITLE)
        elapsed = time.perf_counter() - start
        print(f"pureXML {label:9}: {len(nodes)} node(s) in {elapsed * 1000:.2f} ms")
    compiled = processor.compile(VLDB_TITLE)  # compile once, run many
    start = time.perf_counter()
    processor.execute(compiled)
    print(f"join graph SQL  : in {(time.perf_counter() - start) * 1000:.2f} ms")


if __name__ == "__main__":
    main()
