#!/usr/bin/env python3
"""Bibliography search over a DBLP-like document — the paper's Table 8
workload: point lookups via @key, wildcard element tests, and the
tuple query Q6.

Also contrasts the relational engine against the native pureXML-style
processor in both whole-document and segmented setups.

Run:  python examples/bibliography_search.py
"""

import sys
import time

import repro
from repro.purexml import PureXMLEngine
from repro.workloads import DBLPConfig, generate_dblp
from repro.xmltree.serializer import serialize

sys.setrecursionlimit(100_000)

VLDB_TITLE = '/dblp/*[@key = "conf/vldb2001" and editor and title]/title'
EARLY_THESES = (
    'for $t in /dblp/phdthesis[year < "1994" and author and title] '
    "return ($t/title, $t/author, $t/year)"
)
PROLIFIC = '/dblp/inproceedings[year = "2001"]/title'


def main() -> None:
    document = generate_dblp(DBLPConfig(factor=0.002))
    with repro.connect(default_doc="dblp.xml") as session:
        session.load(serialize(document), "dblp.xml")
        print(f"bibliography: {len(session.service.store.table)} nodes")

        # -- Q5: wildcard + key lookup -------------------------------
        title = session.execute(VLDB_TITLE)
        print("\nVLDB 2001 title:", title.serialize())

        # -- Q6: the tuple query ("return-tuple" of [15]) ------------
        # tuple compilation is a pipeline-layer feature, reached
        # through the session's serving stack
        processor = session.service.processor
        components = processor.compile_tuple(EARLY_THESES)
        columns = [processor.execute(c) for c in components]
        print(f"\npre-1994 PhD theses: {len(columns[0])}")
        for t, a, y in list(zip(*columns))[:3]:
            print(" ", session.serialize([t]), "|", session.serialize([a]),
                  "|", session.serialize([y]))

        # -- papers from 2001 ----------------------------------------
        papers = session.execute(PROLIFIC)
        print(f"\n2001 conference papers: {len(papers)}")

        # -- relational vs native (paper Section 4.2) ----------------
        whole = PureXMLEngine({"dblp.xml": document})
        segmented = PureXMLEngine(
            {"dblp.xml": document},
            segmented=True,
            cut_depth=1,
            patterns=("/dblp/*/@key",),
        )
        print(f"\nsegmented store: {segmented.store.segment_count} segments")
        for label, engine in (("whole", whole), ("segmented", segmented)):
            start = time.perf_counter()
            nodes = engine.run(VLDB_TITLE)
            elapsed = time.perf_counter() - start
            print(f"pureXML {label:9}: {len(nodes)} node(s) "
                  f"in {elapsed * 1000:.2f} ms")
        session.execute(VLDB_TITLE)  # compiled-plan cache is warm now
        start = time.perf_counter()
        session.execute(VLDB_TITLE)
        print(f"join graph SQL  : in {(time.perf_counter() - start) * 1000:.2f} ms")


if __name__ == "__main__":
    main()
