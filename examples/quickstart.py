#!/usr/bin/env python3
"""Quickstart: XQuery on a relational back-end in five lines.

Loads the paper's running example document (Fig. 2), runs Q1 and shows
every artifact of the pipeline: the normalized core, the generated
single-block SQL, and the serialized XML result.

Run:  python examples/quickstart.py
"""

from repro import XQueryProcessor
from repro.xquery import core_to_text

AUCTION_XML = """\
<open_auction id="1">
  <initial>15</initial>
  <bidder>
    <time>18:43</time>
    <increase>4.20</increase>
  </bidder>
</open_auction>
"""

QUERY = 'doc("auction.xml")/descendant::open_auction[bidder]'


def main() -> None:
    processor = XQueryProcessor()
    processor.load(AUCTION_XML, "auction.xml")

    # one call: parse -> normalize -> loop-lift -> isolate -> SQL -> run
    print("== result (serialized XML) ==")
    print(processor.run(QUERY))
    print()

    compiled = processor.compile(QUERY)

    print("== XQuery Core (normalized) ==")
    print(core_to_text(compiled.core))
    print()

    print("== join graph SQL (paper Fig. 8) ==")
    print(compiled.joingraph_sql.text)
    print()

    print("== isolation statistics ==")
    stats = compiled.isolation_stats
    print(f"rule applications: {dict(stats.applications)}")
    print()

    items = processor.execute(compiled)
    print(f"== result items (pre ranks) == {items}")
    print()
    print("engines agree:",
          processor.execute(compiled, engine="interpreter") == items ==
          processor.execute(compiled, engine="stacked-sql"))


if __name__ == "__main__":
    main()
