#!/usr/bin/env python3
"""Quickstart: XQuery on a relational back-end in five lines.

Opens a session through the stable facade (``repro.connect``), loads
the paper's running example document (Fig. 2), runs Q1 and shows every
artifact of the pipeline: the normalized core, the generated
single-block SQL, and the serialized XML result.

Run:  python examples/quickstart.py
"""

import repro
from repro import Engine
from repro.xquery import core_to_text

AUCTION_XML = """\
<open_auction id="1">
  <initial>15</initial>
  <bidder>
    <time>18:43</time>
    <increase>4.20</increase>
  </bidder>
</open_auction>
"""

QUERY = 'doc("auction.xml")/descendant::open_auction[bidder]'


def main() -> None:
    with repro.connect() as session:
        session.load(AUCTION_XML, "auction.xml")

        # one call: parse -> normalize -> loop-lift -> isolate -> SQL -> run
        print("== result (serialized XML) ==")
        print(session.run(QUERY))
        print()

        # the compilation pipeline is one layer down, via the session's
        # serving stack (the compiled artifact is cached for reuse)
        compiled = session.service.compile(QUERY)

        print("== XQuery Core (normalized) ==")
        print(core_to_text(compiled.core))
        print()

        print("== join graph SQL (paper Fig. 8) ==")
        print(compiled.joingraph_sql.text)
        print()

        print("== isolation statistics ==")
        stats = compiled.isolation_stats
        print(f"rule applications: {dict(stats.applications)}")
        print()

        result = session.execute(QUERY)
        print(f"== result items (pre ranks) == {result.items}")
        print(f"   engine={result.engine}  shards={result.shards}  "
              f"{result.timings['execute_ns'] / 1e6:.2f} ms")
        print()
        print("engines agree:",
              result.items
              == session.execute(QUERY, Engine.INTERPRETER).items
              == session.execute(QUERY, Engine.STACKED_SQL).items)


if __name__ == "__main__":
    main()
