#!/usr/bin/env python
"""Compare committed BENCH_*.json artifacts against a fresh quick run.

A non-blocking regression radar: CI runs this after the test suite,
prints throughput and latency-percentile deltas between the artifact
committed at HEAD and a quick re-measurement on the current checkout,
and **always exits 0** — quick mode on shared runners is far too noisy
to gate on, but a 2x swing is still worth seeing in the job log.

Usage::

    python tools/bench_compare.py                 # service bench
    python tools/bench_compare.py --collection    # + shard-scaling bench
    python tools/bench_compare.py --ref main      # baseline from a ref

The committed artifact and the fresh run may disagree on schema
version (older artifacts predate latency percentiles); every
comparison is keyed defensively and silently skips fields one side
lacks.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))


def _committed(name: str, ref: str) -> dict | None:
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{name}"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def _delta(old: float, new: float) -> str:
    if not old:
        return "n/a"
    pct = (new - old) / old * 100.0
    return f"{pct:+.1f}%"


def _throughput_line(label: str, old: dict, new: dict) -> str | None:
    key = "queries_per_second"
    if key not in old or key not in new:
        return None
    return (
        f"  {label:<22} {old[key]:>10.1f} -> {new[key]:>10.1f} q/s  "
        f"({_delta(old[key], new[key])})"
    )


def _latency_lines(label: str, old: dict, new: dict) -> list[str]:
    before, after = old.get("latency_ms"), new.get("latency_ms")
    if not isinstance(before, dict) or not isinstance(after, dict):
        return []
    cells = [
        f"p{q[1:]} {before[q]:.2f}->{after[q]:.2f}ms ({_delta(before[q], after[q])})"
        for q in ("p50", "p95", "p99")
        if q in before and q in after
    ]
    return [f"  {label:<22} {'  '.join(cells)}"] if cells else []


def _compare_modes(pairs: list[tuple[str, dict, dict]]) -> list[str]:
    lines: list[str] = []
    for label, old, new in pairs:
        line = _throughput_line(label, old, new)
        if line:
            lines.append(line)
        lines.extend(_latency_lines(label, old, new))
    return lines


def compare_service(ref: str) -> list[str]:
    from repro.service.bench import run_service_bench

    baseline = _committed("BENCH_service.json", ref)
    if baseline is None:
        return [f"BENCH_service.json: no committed artifact at {ref}; skipping"]
    fresh = run_service_bench(quick=True)
    pairs = [
        ("uncached baseline",
         baseline.get("uncached_baseline", {}), fresh["uncached_baseline"]),
        ("cached", baseline.get("cached", {}), fresh["cached"]),
    ]
    old_scaling = {p["workers"]: p for p in baseline.get("scaling", [])}
    for point in fresh["scaling"]:
        old = old_scaling.get(point["workers"])
        if old:
            pairs.append((f"{point['workers']} worker(s)", old, point))
    lines = [
        f"BENCH_service.json  ({baseline.get('schema')} @ {ref}  vs  "
        f"{fresh['schema']} quick run — configs differ, deltas are noisy)",
        *_compare_modes(pairs),
    ]
    overhead = fresh.get("flight_overhead", {}).get("overhead_pct")
    if overhead is not None:
        lines.append(f"  {'flight overhead':<22} {overhead:+.2f}% (fresh run)")
    return lines


def compare_collection(ref: str) -> list[str]:
    from repro.bench.collection import run_collection_bench

    baseline = _committed("BENCH_collection.json", ref)
    if baseline is None:
        return [f"BENCH_collection.json: no committed artifact at {ref}; skipping"]
    fresh = run_collection_bench(quick=True)
    pairs = [
        ("serial baseline",
         baseline.get("serial_baseline", {}), fresh["serial_baseline"]),
    ]
    old_curve = {p["shards"]: p for p in baseline.get("curve", [])}
    for point in fresh["curve"]:
        old = old_curve.get(point["shards"])
        if old:
            pairs.append((f"{point['shards']} shard(s)", old, point))
    return [
        f"BENCH_collection.json  ({baseline.get('schema')} @ {ref}  vs  "
        f"{fresh['schema']} quick run — configs differ, deltas are noisy)",
        *_compare_modes(pairs),
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baseline artifacts")
    parser.add_argument("--collection", action="store_true",
                        help="also re-run the shard-scaling bench")
    parser.add_argument("--out", help="also write the report to this file")
    args = parser.parse_args(argv)

    lines = ["== bench comparison (informational — never fails the build) =="]
    for section in (compare_service,) + (
        (compare_collection,) if args.collection else ()
    ):
        try:
            lines.extend(section(args.ref))
        except Exception as exc:  # noqa: BLE001 - never block CI on the radar
            lines.append(f"  comparison failed: {type(exc).__name__}: {exc}")
    report = "\n".join(lines) + "\n"
    print(report, end="")
    if args.out:
        Path(args.out).write_text(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
