"""End-to-end XQuery processing pipeline — the library's public API.

:class:`XQueryProcessor` wires the stages together::

    parse -> normalize (XQuery Core) -> loop-lifting compile
          -> join graph isolation -> SQL generation -> execution

and offers every intermediate as an inspectable artifact.  Four
execution engines are available (all differential-consistent):

``interpreter``           the algebra reference interpreter on the
                          stacked (un-isolated) plan — ground truth;
``isolated-interpreter``  the same interpreter on the isolated plan;
``stacked-sql``           the CTE chain on SQLite (the paper's
                          pre-isolation DB2 baseline);
``joingraph-sql``         the single SELECT-DISTINCT-FROM-WHERE-ORDER
                          BY block on SQLite (the paper's contribution).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.algebra.dagutils import clone_plan
from repro.algebra.interpreter import run_plan
from repro.algebra.ops import Serialize
from repro.compiler.looplift import LoopLiftingCompiler
from repro.engines import Engine
from repro.errors import XQueryTypeError
from repro.infoset.encoding import DocumentStore
from repro.infoset.serialize import serialize_sequence
from repro.obs import get_metrics, get_tracer
from repro.result import Result, Serialized
from repro.rewrite.engine import IsolationEngine, IsolationStats
from repro.sql.backend import SQLiteBackend
from repro.sql.codegen import SQLQuery, generate_join_graph_sql
from repro.sql.stacked import generate_stacked_sql
from repro.xquery import ast
from repro.xquery.core import CoreDdo, CoreExpr, CoreFor, CoreStep, CoreVar
from repro.xquery.normalize import CollectionResolver, normalize
from repro.xquery.parser import parse_xquery

__all__ = ["CompiledQuery", "Engine", "XQueryProcessor", "store_resolver"]


def store_resolver(store: DocumentStore) -> CollectionResolver:
    """The default ``collection()`` resolver: match URI globs against
    the documents hosted by one store, in load (= ``pre``) order."""

    def resolve(patterns: tuple[str, ...]) -> tuple[str, ...]:
        uris = store.table.doc_uris
        if not patterns:
            return tuple(uris)
        return tuple(
            uri
            for uri in uris
            if any(fnmatchcase(uri, pattern) for pattern in patterns)
        )

    return resolve


@dataclass
class CompiledQuery:
    """All artifacts of one query's journey through the pipeline."""

    source: str
    core: CoreExpr
    stacked_plan: Serialize
    isolated_plan: Serialize
    isolation_stats: IsolationStats
    _stacked_sql: SQLQuery | None = field(default=None, repr=False)
    _joingraph_sql: SQLQuery | None = field(default=None, repr=False)

    @property
    def stacked_sql(self) -> SQLQuery:
        if self._stacked_sql is None:
            with get_tracer().span("codegen.stacked") as span:
                self._stacked_sql = generate_stacked_sql(self.stacked_plan)
                span.set(chars=len(self._stacked_sql.text))
        return self._stacked_sql

    @property
    def joingraph_sql(self) -> SQLQuery:
        if self._joingraph_sql is None:
            with get_tracer().span("codegen.joingraph") as span:
                self._joingraph_sql = generate_join_graph_sql(self.isolated_plan)
                span.set(
                    chars=len(self._joingraph_sql.text),
                    doc_instances=self._joingraph_sql.doc_instances,
                )
        return self._joingraph_sql


class XQueryProcessor:
    """A relational XQuery processor over a document store.

    Parameters
    ----------
    store:
        Shared document store; a fresh one is created when omitted.
    default_doc:
        URI that absolute paths (``/site/...``) resolve against.
    serialize_step:
        Make the serialization point explicit by appending
        ``/descendant-or-self::node()`` to the query result, as the
        paper does for its experiments (Section 4): the result then
        contains every node needed to serialize the answer subtrees.
    disabled_rules:
        Isolation rules to switch off (ablation experiments).
    checked:
        Run the :class:`repro.analysis.PlanSanitizer` during
        isolation: the deep plan invariant checker validates the plan
        after every individual rewrite-rule application, and an
        unsound step raises :class:`repro.errors.SanitizerError`
        naming the offending rule.
    check_interpret:
        With ``checked``, additionally re-interpret the plan after
        each step on small documents and compare the item sequence
        against the pre-isolation reference (per-step differential
        testing; skipped automatically on large stores).
    collections:
        Resolver turning ``collection()`` URI globs into concrete
        document URIs; defaults to matching against this processor's
        own store.  The sharded service passes a resolver over the
        whole :class:`repro.store.Collection` here so compiled plans
        name every member document regardless of shard placement.
    """

    def __init__(
        self,
        store: DocumentStore | None = None,
        default_doc: str | None = None,
        serialize_step: bool = False,
        disabled_rules: set[str] | None = None,
        checked: bool = False,
        check_interpret: bool = False,
        collections: CollectionResolver | None = None,
    ):
        self.store = store if store is not None else DocumentStore()
        self.default_doc = default_doc
        self.collections = (
            collections if collections is not None else store_resolver(self.store)
        )
        self.serialize_step = serialize_step
        self.checked = checked
        sanitizer = None
        if checked:
            from repro.analysis import PlanSanitizer

            sanitizer = PlanSanitizer(interpret=check_interpret)
        self._engine = IsolationEngine(
            disabled=disabled_rules, sanitizer=sanitizer
        )
        self._backend: SQLiteBackend | None = None
        self._backend_token: tuple[int, int] | None = None

    # -- documents -------------------------------------------------------

    def load(self, xml_text: str, uri: str) -> None:
        """Parse and shred a document into the shared store."""
        self.store.load(xml_text, uri)
        if self.default_doc is None:
            self.default_doc = uri

    @property
    def disabled_rules(self) -> frozenset[str]:
        """The isolation rules switched off for this processor (part of
        the compiled-query cache key)."""
        return frozenset(self._engine.disabled)

    @property
    def backend(self) -> SQLiteBackend:
        """The SQLite back-end, (re)loaded lazily when documents change.

        Staleness is keyed on (table identity, monotonic content
        version) — not the row count, which can stay identical across a
        content change (e.g. swapping in a different store) and would
        then serve stale data.  Identity is the table's minted
        :attr:`~repro.infoset.encoding.DocTable.uid`, not ``id()``: the
        allocator reuses addresses after GC, so a fresh table at a
        recycled address with a matching version counter would be
        served the dead table's backend.
        """
        token = (self.store.table.uid, self.store.version)
        if self._backend is None or self._backend_token != token:
            if self._backend is not None:
                self._backend.close()
            self._backend = SQLiteBackend(self.store.table)
            self._backend_token = token
        return self._backend

    # -- compilation -------------------------------------------------------

    def compile(self, query: str) -> CompiledQuery:
        """Run the full front-end and isolation on ``query``."""
        tracer = get_tracer()
        with tracer.span("compile", query=query) as span:
            with tracer.span("parse"):
                surface = parse_xquery(query)
            with tracer.span("normalize"):
                core = normalize(
                    surface,
                    default_doc=self.default_doc,
                    collections=self.collections,
                )
                if self.serialize_step:
                    core = _with_serialize_step(core)
            with tracer.span("looplift"):
                stacked = LoopLiftingCompiler(self.store).compile(core)
                # isolation mutates the DAG: hand it an independent
                # clone so the stacked plan survives as an artifact
                isolated_input = clone_plan(stacked)
            if self._engine.sanitizer is not None:
                self._engine.sanitizer.set_core(core, self.store.table)
            isolated, stats = self._engine.isolate(isolated_input)
            span.set(rule_applications=stats.steps)
        get_metrics().count("pipeline.compiles")
        return CompiledQuery(
            source=query,
            core=core,
            stacked_plan=stacked,
            isolated_plan=isolated,
            isolation_stats=stats,
        )

    def compile_tuple(self, query: str) -> list[CompiledQuery]:
        """Compile a FLWOR whose return clause is a tuple
        ``(e1, e2, …)`` — the Table 8 Q6 ``return-tuple`` form — into
        one query per tuple component sharing the binding clauses."""
        surface = parse_xquery(query)
        if not isinstance(surface, ast.FLWOR) or not isinstance(
            surface.ret, ast.SequenceExpr
        ):
            raise XQueryTypeError(
                "compile_tuple expects a FLWOR returning (e1, e2, ...)"
            )
        tracer = get_tracer()
        compiled = []
        for i, item in enumerate(surface.ret.items):
            component = ast.FLWOR(surface.clauses, surface.where, item)
            with tracer.span("compile", query=query, component=i):
                with tracer.span("normalize"):
                    core = normalize(
                        component,
                        default_doc=self.default_doc,
                        collections=self.collections,
                    )
                    if self.serialize_step:
                        core = _with_serialize_step(core)
                with tracer.span("looplift"):
                    stacked = LoopLiftingCompiler(self.store).compile(core)
                    isolated_input = clone_plan(stacked)
                if self._engine.sanitizer is not None:
                    self._engine.sanitizer.set_core(core, self.store.table)
                isolated, stats = self._engine.isolate(isolated_input)
            compiled.append(
                CompiledQuery(
                    source=str(component),
                    core=core,
                    stacked_plan=stacked,
                    isolated_plan=isolated,
                    isolation_stats=stats,
                )
            )
        return compiled

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        query: str | CompiledQuery,
        engine: Engine | str = Engine.JOINGRAPH_SQL,
    ) -> Result:
        """Evaluate a query; returns a :class:`repro.Result` — the item
        sequence (pre ranks for node results, ``1`` markers for boolean
        results) plus engine/timing metadata."""
        engine = Engine.of(engine)
        compiled = query if isinstance(query, CompiledQuery) else self.compile(query)
        started = time.perf_counter_ns()
        with get_tracer().span("execute", engine=engine.value) as span:
            if engine is Engine.INTERPRETER:
                items = run_plan(compiled.stacked_plan)
            elif engine is Engine.ISOLATED_INTERPRETER:
                items = run_plan(compiled.isolated_plan)
            elif engine is Engine.STACKED_SQL:
                items = self.backend.run(compiled.stacked_sql)
            else:
                items = self.backend.run(compiled.joingraph_sql)
            span.set(items=len(items))
        metrics = get_metrics()
        metrics.count("pipeline.executions")
        metrics.count(f"pipeline.executions.{engine.value}")
        return Result(
            items,
            engine=engine,
            timings={"execute_ns": time.perf_counter_ns() - started},
            shards=1,
            serializer=self.serialize,
        )

    def serialize(self, items) -> str:
        """Serialize a node-sequence result back to XML text."""
        with get_tracer().span("serialize", items=len(items)):
            return serialize_sequence(self.store.table, items)

    def run(self, query: str, engine: Engine | str = Engine.JOINGRAPH_SQL) -> Serialized:
        """Execute and serialize in one step.  Returns the XML text
        (a :class:`repro.result.Serialized` string with the underlying
        :class:`Result` attached as ``.result``)."""
        result = self.execute(query, engine=engine)
        return Serialized(self.serialize(result), result)

    def explain(self, query: str | CompiledQuery, mode: str = "statistics") -> str:
        """The continuation-annotated physical plan our cost-based
        optimizer chooses for the isolated join graph (paper Figs.
        10/11 style)."""
        from repro.planner import JoinGraphPlanner, explain_plan
        from repro.sql import flatten_query

        compiled = query if isinstance(query, CompiledQuery) else self.compile(query)
        planner = JoinGraphPlanner(self.store.table, mode=mode)
        plan = planner.plan(flatten_query(compiled.isolated_plan))
        return explain_plan(plan)


def _with_serialize_step(core: CoreExpr) -> CoreExpr:
    """Wrap ``Q`` as ``for $s in Q return $s/descendant-or-self::node()``."""
    var = "#serialize"
    return CoreFor(
        var,
        core,
        CoreDdo(CoreStep(CoreVar(var), "descendant-or-self", "node", None)),
    )
