"""The stable public facade: ``repro.connect()`` and :class:`Session`.

One entry point regardless of deployment shape::

    import repro

    with repro.connect() as session:                 # single backend
        session.load(xml_text, "auction.xml")
        result = session.execute('doc("auction.xml")//item')
        print(result.serialize())

    with repro.connect(shards=4) as session:         # sharded scatter-gather
        for text, uri in corpus:
            session.load(text, uri)
        result = session.execute('collection()//person[profile]/name')
        print(result.shards, result.engine)

``connect(shards=1)`` serves through one :class:`QueryService` (the
compiled-plan cache, backend pool and resilience stack of PR 3/4);
``connect(shards=N)`` partitions documents across N shard tables and
serves through the scatter-gather :class:`ShardedService`.  Both sit
behind the same :class:`Session` surface, and both return the same
:class:`repro.Result` objects, so callers never branch on the
deployment shape.

Everything here is covered by the semantic-versioning promise stated
in ``docs/api.md``; the layers underneath (``repro.pipeline``,
``repro.service``, ``repro.store``) remain importable but move faster.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.engines import Engine
from repro.result import Result, Serialized
from repro.service.cache import CacheStats
from repro.service.resilience import RetryPolicy
from repro.service.scatter import ShardedService
from repro.service.service import QueryService
from repro.store import Collection

__all__ = ["Session", "connect"]


class Session:
    """A connected query session over one or many document shards.

    Construct via :func:`repro.connect`.  The session owns its serving
    stack (plan cache, backend pools, worker threads) — use it as a
    context manager or call :meth:`close` when done.
    """

    def __init__(self, service: QueryService | ShardedService):
        self._service = service

    # -- introspection -------------------------------------------------

    @property
    def shards(self) -> int:
        """How many shard partitions this session serves (1 for a
        single-backend session)."""
        if isinstance(self._service, ShardedService):
            return self._service.shards
        return 1

    @property
    def documents(self) -> list[str]:
        """URIs of all loaded documents, in load order."""
        if isinstance(self._service, ShardedService):
            return self._service.collection.doc_uris
        return list(self._service.store.table.doc_uris)

    @property
    def service(self) -> QueryService | ShardedService:
        """The underlying serving layer (advanced use: resilience
        knobs, fault accounting, shard placement)."""
        return self._service

    # -- documents -----------------------------------------------------

    def load(self, xml_text: str, uri: str) -> "Session":
        """Load one XML document (returns the session for chaining).
        Compiled plans against the old content are invalidated."""
        self._service.load(xml_text, uri)
        return self

    # -- queries -------------------------------------------------------

    def execute(
        self,
        query: str,
        engine: Engine | str = Engine.JOINGRAPH_SQL,
        *,
        deadline_s: float | None = None,
    ) -> Result:
        """Evaluate an XQuery; returns a :class:`repro.Result` — a
        list of result items carrying ``engine``, ``timings``,
        ``shards`` and a :meth:`~repro.Result.serialize` method."""
        return self._service.execute(query, engine, deadline_s=deadline_s)

    def run(
        self, query: str, engine: Engine | str = Engine.JOINGRAPH_SQL
    ) -> Serialized:
        """Evaluate and serialize in one step; returns a
        :class:`repro.Serialized` (an XML ``str`` whose ``.result``
        attribute holds the underlying :class:`repro.Result`)."""
        return self._service.run(query, engine=engine)

    def run_many(
        self,
        queries: Iterable[str],
        engine: Engine | str = Engine.JOINGRAPH_SQL,
        *,
        deadline_s: float | None = None,
    ) -> list[Result]:
        """Evaluate a batch; results in submission order."""
        return self._service.run_many(
            queries, engine=engine, deadline_s=deadline_s
        )

    def serialize(self, items: Sequence[Any]) -> str:
        """Serialize a result item sequence back to XML text."""
        return self._service.serialize(items)

    # -- lifecycle -----------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """The typed cache statistics across all three cache tiers
        (exact / canonical / view) — the stable structured form of
        ``stats()["cache"]``.  See ``docs/caching.md``."""
        return self._service.cache_stats()

    def stats(self) -> dict[str, Any]:
        """A JSON-ready snapshot of the serving stack.

        ``stats()["cache"]`` carries the tiered
        :class:`repro.CacheStats` shape (plus deprecated flat aliases
        for one release — see ``docs/api.md``), and ``stats()["views"]``
        the materialized-view tier's counters."""
        return self._service.stats()

    def close(self) -> None:
        """Release worker threads and backend connections."""
        self._service.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<repro.Session shards={self.shards} "
            f"documents={len(self.documents)}>"
        )


def connect(
    shards: int = 1,
    *,
    default_doc: str | None = None,
    serialize_step: bool = False,
    workers: int = 4,
    cache_capacity: int = 256,
    indexes: dict[str, tuple[str, ...]] | None = None,
    deadline_s: float | None = None,
    retry: RetryPolicy | None = None,
    degrade: bool = True,
    executor: str = "thread",
    flight: bool = True,
    slow_threshold_s: float = 0.25,
    views: bool = True,
    view_budget_bytes: int = 4 << 20,
    view_admit_after: int = 3,
) -> Session:
    """Open a query :class:`Session`.

    Parameters
    ----------
    shards:
        ``1`` (default) serves all documents from one backend; ``N > 1``
        partitions documents across N shard tables (by URI hash) and
        fans compiled plans out across them at query time.
    default_doc:
        URI that bare paths (``//item``) resolve against; defaults to
        the first loaded document.
    serialize_step:
        Compile the Section 4 serialization step into plans.
    workers:
        Worker threads for batch execution (per shard when sharded).
    cache_capacity:
        Compiled-plan LRU size.
    indexes:
        SQL index set override (``None`` = the paper's Table 6).
    deadline_s, retry, degrade:
        Resilience defaults: per-query time budget, transient-error
        retry policy, and graceful degradation (see
        ``docs/robustness.md``).
    executor:
        Shard execution mode when sharded: ``"thread"`` (default) runs
        shard plans on in-process worker threads; ``"process"`` owns
        one long-lived worker process per shard with its own SQLite
        connection over a zero-copy attach of the shard image —
        compiled plans ship to the workers, sidestepping the GIL on
        multi-core hosts (see ``docs/performance.md``).  Ignored for
        ``shards=1``, where the single-backend thread service always
        wins.
    flight, slow_threshold_s:
        The query flight recorder (on by default): one structured
        record per query plus a slow-query log promoting queries over
        ``slow_threshold_s`` seconds — reachable via
        ``session.service.flight``, summarized (with latency
        percentiles) by :meth:`Session.stats`.  See
        ``docs/observability.md``.
    views, view_budget_bytes, view_admit_after:
        The materialized-view cache tier (on by default): queries hot
        for ``view_admit_after`` executions get their results
        materialized (LRU within ``view_budget_bytes``), and later
        queries whose pattern is strictly contained in a view's are
        answered from the view without compiling.  See
        ``docs/caching.md``.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if executor not in ("thread", "process"):
        raise ValueError(
            f"executor must be 'thread' or 'process', got {executor!r}"
        )
    if shards == 1:
        service: QueryService | ShardedService = QueryService(
            default_doc=default_doc,
            serialize_step=serialize_step,
            workers=workers,
            cache_capacity=cache_capacity,
            indexes=indexes,
            deadline_s=deadline_s,
            retry=retry,
            degrade=degrade,
            flight=flight,
            slow_threshold_s=slow_threshold_s,
            views=views,
            view_budget_bytes=view_budget_bytes,
            view_admit_after=view_admit_after,
        )
    else:
        service = ShardedService(
            Collection(shards),
            default_doc=default_doc,
            serialize_step=serialize_step,
            workers_per_shard=max(1, workers // shards),
            cache_capacity=cache_capacity,
            indexes=indexes,
            deadline_s=deadline_s,
            retry=retry,
            degrade=degrade,
            executor=executor,
            flight=flight,
            slow_threshold_s=slow_threshold_s,
            views=views,
            view_budget_bytes=view_budget_bytes,
            view_admit_after=view_admit_after,
        )
    return Session(service)
