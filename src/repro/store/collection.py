"""The sharded document collection store.

A :class:`Collection` hosts many XML documents partitioned across N
independent :class:`~repro.infoset.encoding.DocumentStore` shards by
a stable URI hash.  Each shard is a complete, self-contained ``doc``
table — the generated join-graph SQL runs against any shard unchanged
(documents the shard doesn't host simply match nothing), which is what
lets the scatter-gather executor fan one compiled plan out across all
shards.

Document identity is global: every loaded document gets a *global*
``pre`` range, defined as the range it would occupy in one combined
table hosting all documents in load order.  Per-shard results
translate back to global ranks with a per-document offset (documents
are appended to their shard in global load order, so translation is
monotonic per shard and the merged sequence is the serial answer,
item for item).  The combined table itself is materialized lazily —
only when a non-shardable query needs serial execution — by grafting
the already-shredded subtrees out of the shard tables.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Iterable

from repro.errors import DocumentError
from repro.infoset.encoding import DocumentStore
from repro.infoset.serialize import serialize_nodes
from repro.xmltree.model import DocumentNode
from repro.xmltree.parser import parse_document

__all__ = ["Collection", "DocEntry"]


@dataclass(frozen=True)
class DocEntry:
    """Placement record for one loaded document."""

    uri: str
    #: shard index the document lives in
    shard: int
    #: ``pre`` rank of the DOC row inside its shard table
    shard_root: int
    #: ``pre`` rank the DOC row would have in the combined table
    global_root: int
    #: subtree size excluding the DOC row (``DocTable.size`` semantics)
    size: int


class Collection:
    """N-way sharded multi-document store.

    Parameters
    ----------
    shards:
        Number of partitions.  ``1`` degenerates to a single
        :class:`DocumentStore` behind the collection interface.
    """

    def __init__(self, shards: int = 1):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.stores: list[DocumentStore] = [
            DocumentStore() for _ in range(shards)
        ]
        self._entries: list[DocEntry] = []
        self._by_uri: dict[str, DocEntry] = {}
        #: per shard: entries in shard-``pre`` (= load) order
        self._by_shard: list[list[DocEntry]] = [[] for _ in range(shards)]
        self._combined: DocumentStore | None = None
        #: global_root offsets in entry order, rebuilt lazily after a
        #: load — serialization calls :meth:`to_local` once per result
        #: item, which must not rebuild the list per call
        self._global_roots: list[int] | None = None
        self._next_global = 0
        self._version = 0
        #: shard -> ((store version, index key), serialized DB bytes)
        self._payloads: dict[int, tuple[tuple[int, Any], bytes]] = {}
        #: working-set accounting over the payload cache: how many
        #: times each shard's image was (re)built, and how many times a
        #: resident image was evicted (``evict_payload``)
        self._payload_builds: list[int] = [0] * shards
        self._payload_evictions: list[int] = [0] * shards

    # -- loading -----------------------------------------------------------

    def shard_of(self, uri: str) -> int:
        """The shard a URI hashes to (stable across processes).

        blake2b rather than ``zlib.crc32``: CRC32 is linear over
        GF(2), so URI families differing in one character (``doc0.xml``
        … ``doc7.xml``) produce CRC deltas that can vanish modulo small
        powers of two — every document lands in one shard.  (Python's
        builtin ``hash`` is salted per process, so it cannot place.)
        """
        digest = hashlib.blake2b(uri.encode("utf-8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big") % self.shards

    def load(self, text: str, uri: str, shard: int | None = None) -> DocEntry:
        """Parse and load one document into its shard.

        ``shard`` overrides hash placement (explicit co-location /
        balancing control); default is :meth:`shard_of`.
        """
        return self.load_tree(parse_document(text, uri=uri), shard=shard)

    def load_tree(
        self, document: DocumentNode, shard: int | None = None
    ) -> DocEntry:
        """Load an already-parsed document tree into its shard."""
        uri = document.uri
        if uri in self._by_uri:
            raise DocumentError(f"document {uri!r} already loaded")
        if shard is None:
            shard = self.shard_of(uri)
        elif not 0 <= shard < self.shards:
            raise ValueError(
                f"shard {shard} out of range for {self.shards} shards"
            )
        store = self.stores[shard]
        shard_root = store.load_tree(document)
        size = store.table.size[shard_root]
        entry = DocEntry(
            uri=uri,
            shard=shard,
            shard_root=shard_root,
            global_root=self._next_global,
            size=size,
        )
        self._next_global += size + 1
        self._entries.append(entry)
        self._global_roots = None
        self._by_uri[uri] = entry
        self._by_shard[shard].append(entry)
        if self._combined is not None:
            # keep the lazily materialized serial table in sync
            self._combined.table.graft(store.table, shard_root)
        self._version += 1
        return entry

    # -- identity ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic content version across all shards (cache/staleness
        key, mirroring :attr:`DocumentStore.version`)."""
        return self._version

    @property
    def doc_uris(self) -> list[str]:
        """URIs of all hosted documents, in global (load) order."""
        return [entry.uri for entry in self._entries]

    def __contains__(self, uri: str) -> bool:
        return uri in self._by_uri

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, uri: str) -> DocEntry:
        try:
            return self._by_uri[uri]
        except KeyError:
            raise DocumentError(f"unknown document {uri!r}") from None

    def resolve(self, patterns: tuple[str, ...]) -> tuple[str, ...]:
        """The :data:`~repro.xquery.normalize.CollectionResolver` over
        this collection: URI globs to member URIs in global order."""
        if not patterns:
            return tuple(entry.uri for entry in self._entries)
        return tuple(
            entry.uri
            for entry in self._entries
            if any(fnmatchcase(entry.uri, pattern) for pattern in patterns)
        )

    def shards_of(self, uris: Iterable[str]) -> list[int]:
        """The distinct shards hosting any of ``uris``, ascending."""
        return sorted({self.entry(uri).shard for uri in uris})

    # -- pre-rank translation ----------------------------------------------

    def to_global(self, shard: int, pres: Iterable[int]) -> list[int]:
        """Translate shard-local ``pre`` ranks to global ranks.

        Documents join a shard in global load order, so the mapping is
        monotonic per shard: a shard-sorted result stays sorted after
        translation, and merging per-shard results by global rank
        reproduces document order (doc rank ⊕ pre) exactly.
        """
        entries = self._by_shard[shard]
        roots = [entry.shard_root for entry in entries]
        out: list[int] = []
        for pre in pres:
            index = bisect_right(roots, pre) - 1
            if index < 0:
                raise DocumentError(
                    f"pre rank {pre} not in any document of shard {shard}"
                )
            entry = entries[index]
            if pre > entry.shard_root + entry.size:
                raise DocumentError(
                    f"pre rank {pre} not in any document of shard {shard}"
                )
            out.append(entry.global_root + (pre - entry.shard_root))
        return out

    def to_local(self, global_pre: int) -> tuple[int, int]:
        """Inverse translation: global rank to (shard, local rank)."""
        roots = self._global_roots
        if roots is None:
            roots = self._global_roots = [
                entry.global_root for entry in self._entries
            ]
        index = bisect_right(roots, global_pre) - 1
        if index >= 0:
            entry = self._entries[index]
            if global_pre <= entry.global_root + entry.size:
                return entry.shard, entry.shard_root + (
                    global_pre - entry.global_root
                )
        raise DocumentError(f"global pre rank {global_pre} not in any document")

    # -- process transport -------------------------------------------------

    def shard_payload(
        self, shard: int, indexes: dict[str, tuple[str, ...]] | None = None
    ) -> bytes:
        """The shard's fully loaded, fully indexed ``doc`` database as
        one byte string (:meth:`SQLiteBackend.serialize`), cached per
        store version: the shard is shredded and indexed exactly once
        no matter how many worker processes attach to it, and workers
        adopt the bytes via ``deserialize`` without re-parsing XML.
        """
        if not 0 <= shard < self.shards:
            raise ValueError(
                f"shard {shard} out of range for {self.shards} shards"
            )
        # lazy import: store must not depend on sql at module load
        from repro.sql.backend import SQLiteBackend

        store = self.stores[shard]
        key = (store.version, _index_key(indexes))
        cached = self._payloads.get(shard)
        if cached is not None and cached[0] == key:
            return cached[1]
        with SQLiteBackend(store.table, indexes) as backend:
            payload = backend.serialize()
        self._payloads[shard] = (key, payload)
        self._payload_builds[shard] += 1
        return payload

    def evict_payload(self, shard: int) -> int:
        """Drop the shard's cached serialized image (working-set
        eviction for corpora larger than RAM); returns the bytes freed
        (0 when nothing was resident).  The next :meth:`shard_payload`
        call rebuilds the image from the shard table on demand."""
        if not 0 <= shard < self.shards:
            raise ValueError(
                f"shard {shard} out of range for {self.shards} shards"
            )
        cached = self._payloads.pop(shard, None)
        if cached is None:
            return 0
        self._payload_evictions[shard] += 1
        return len(cached[1])

    def payload_stats(self) -> dict[str, Any]:
        """JSON-ready working-set view of the payload cache: per-shard
        residency, bytes, build and eviction counts, plus totals."""
        per_shard = []
        for shard in range(self.shards):
            cached = self._payloads.get(shard)
            per_shard.append(
                {
                    "shard": shard,
                    "resident": cached is not None,
                    "bytes": len(cached[1]) if cached is not None else 0,
                    "builds": self._payload_builds[shard],
                    "evictions": self._payload_evictions[shard],
                }
            )
        return {
            "resident_bytes": sum(entry["bytes"] for entry in per_shard),
            "builds": sum(self._payload_builds),
            "evictions": sum(self._payload_evictions),
            "per_shard": per_shard,
        }

    # -- serial view -------------------------------------------------------

    def combined_store(self) -> DocumentStore:
        """One table hosting every document in global order — exactly
        the store a serial (unsharded) processor would have built.
        Materialized lazily by grafting shredded subtrees from the
        shard tables; kept in sync by subsequent loads."""
        if self._combined is None:
            combined = DocumentStore()
            for entry in self._entries:
                combined.table.graft(
                    self.stores[entry.shard].table, entry.shard_root
                )
            self._combined = combined
        return self._combined

    # -- results -----------------------------------------------------------

    def serialize(self, items: Iterable[int]) -> str:
        """Serialize a global-rank node sequence back to XML text.

        Each item serializes against its own shard table; nodes are
        independent under serialization, so the concatenation is
        byte-identical to serializing the same sequence against the
        combined table.
        """
        parts: list[str] = []
        for item in items:
            shard, local = self.to_local(item)
            parts.append(serialize_nodes(self.stores[shard].table, local))
        return "".join(parts)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Per-shard placement/size summary (documents, rows, version)."""
        return {
            "shards": self.shards,
            "documents": len(self._entries),
            "rows": sum(len(store.table) for store in self.stores),
            "version": self._version,
            "per_shard": [
                {
                    "shard": shard,
                    "documents": len(self._by_shard[shard]),
                    "rows": len(self.stores[shard].table),
                }
                for shard in range(self.shards)
            ],
        }


def _index_key(
    indexes: dict[str, tuple[str, ...]] | None,
) -> tuple[tuple[str, tuple[str, ...]], ...] | None:
    """Hashable identity of an index set (``None`` = Table 6 default)."""
    if indexes is None:
        return None
    return tuple(sorted(indexes.items()))
