"""Sharded multi-document storage.

:class:`Collection` partitions loaded documents across N per-shard
``doc`` tables (shard = stable URI hash mod N) so the scatter-gather
executor can run one compiled plan against every shard in parallel
while per-shard self-join selectivities stay those of a small table.
"""

from repro.store.collection import Collection, DocEntry

__all__ = ["Collection", "DocEntry"]
