"""The materialized-view tier: answer contained queries from hot results.

The compiled-plan cache (``cache.py``) only pays off when the incoming
text is *identical* (exact tier) or *provably equivalent* (canonical
tier) to something already compiled.  Template traffic is broader than
that: most production queries are narrowings of a few hot shapes —
the same path expression with one more predicate.  Following the
view-rewriting line of work (Cautis et al., *Rewriting XPath Queries
using View Intersections*), this module materializes the **results**
of hot canonical patterns and answers any query whose pattern is
*strictly contained* in a view's pattern without compiling it at all:

1. admission — every normally-executed fragment query heats its
   canonical pattern key; at ``admit_after`` executions the result
   rows are materialized as a view (subject to the per-view and total
   ``budget_bytes`` caps, LRU within the budget);
2. lookup — a query that missed the exact and canonical tiers asks
   :meth:`ViewManager.answer`: views are scanned most-recently-used
   first, and the PR 6 decision procedure
   (:func:`repro.analysis.containment.contains_patterns`) must prove
   ``view ⊇ query`` with an independently re-verified homomorphism
   witness.  Equal canonical keys are *skipped* — equivalence is the
   canonical tier's job (it can reuse the compiled plan, which is
   strictly better than filtering rows); the view tier only handles
   **strict** containment;
3. residual filtering — the view's rows are re-filtered through the
   injected residual filter (the pattern membership oracle,
   :func:`repro.analysis.containment.filter_pattern` over the service's
   table).  Soundness: the engines agree with the oracle on fragment
   queries (the sanitizer's tested invariant), and the witness proves
   ``oracle(query) ⊆ oracle(view)``, so
   ``filter(view_rows, query) = oracle(query)`` — byte-identical to a
   full compile + execution.

Never stale: every view carries the store version it was materialized
against; :meth:`answer` only consults same-version views, and the
service's ``load`` hook calls :meth:`invalidate` alongside the plan
cache, so a ``DocTable.version`` bump (or a collection graft, which
bumps ``Collection.version``) drops every view before the next query.

Metrics: ``service.cache.view_hit`` on every view-tier answer, plus
``service.views.{admitted,rejected,evicted,invalidated}`` counters and
a ``service.views.bytes`` gauge (catalog in ``docs/observability.md``);
the counters are also kept as attributes for direct inspection and
surface through ``QueryService.cache_stats()``.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.analysis.containment import (
    TreePattern,
    canonicalize,
    contains_patterns,
    extract_pattern,
    pattern_key,
)
from repro.obs import get_metrics
from repro.service.cache import TierStats

__all__ = ["MaterializedView", "ViewManager"]

#: maps a canonical pattern plus candidate rows to the filtered rows —
#: the residual-predicate evaluation, injected by the owning service
#: (single-store services filter local pre ranks, sharded services
#: route global ranks to the owning shard's table first)
ResidualFilter = Callable[[TreePattern, Sequence[int]], "list[int]"]


def _rows_bytes(rows: tuple[int, ...]) -> int:
    """Resident-size estimate of a materialized row tuple."""
    return sys.getsizeof(rows) + 28 * len(rows)


@dataclass
class MaterializedView:
    """One materialized result: the rows a hot canonical pattern
    selected, pinned to the store version they were computed against."""

    key: str
    pattern: TreePattern
    rows: tuple[int, ...]
    store_version: int
    nbytes: int = field(default=0)
    hits: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.nbytes:
            self.nbytes = _rows_bytes(self.rows)


class ViewManager:
    """Thread-safe admission, lookup, and eviction of materialized
    views (see the module docstring for the tier's semantics).

    Parameters
    ----------
    residual_filter:
        The membership oracle used to re-filter a view's rows through
        an incoming query's pattern.
    budget_bytes:
        Total resident-size cap across all views; least-recently-used
        views are evicted to stay under it.
    admit_after:
        Hit-frequency admission threshold: a pattern's rows are
        materialized on its ``admit_after``-th normal execution.
    max_view_bytes:
        Per-view size cap (``None`` = a quarter of the budget): a
        single oversized result is rejected rather than evicting the
        whole working set.
    memo_capacity:
        Bound on the derived-answer memo (repeat variants skip the
        containment search and residual filter entirely).
    """

    def __init__(
        self,
        residual_filter: ResidualFilter,
        *,
        budget_bytes: int = 4 << 20,
        admit_after: int = 3,
        max_view_bytes: int | None = None,
        memo_capacity: int = 512,
    ):
        if budget_bytes <= 0:
            raise ValueError("view budget must be positive")
        if admit_after <= 0:
            raise ValueError("admission threshold must be positive")
        self._filter = residual_filter
        self.budget_bytes = budget_bytes
        self.admit_after = admit_after
        self.max_view_bytes = (
            max_view_bytes if max_view_bytes is not None else budget_bytes // 4
        )
        self._views: OrderedDict[str, MaterializedView] = OrderedDict()
        self._heat: OrderedDict[str, int] = OrderedDict()
        self._patterns: OrderedDict[str, TreePattern | None] = OrderedDict()
        self._memo: OrderedDict[tuple[str, int], tuple[int, ...]] = (
            OrderedDict()
        )
        self._memo_capacity = memo_capacity
        self._bytes = 0
        self.lookups = 0
        self.hits = 0
        self.admitted = 0
        self.rejected = 0
        self.evictions = 0
        self.invalidated = 0
        self._lock = threading.Lock()

    # -- pattern memo ---------------------------------------------------

    def pattern_of(self, source: str, core: Any) -> TreePattern | None:
        """The canonical pattern of a compiled artifact, memoized by
        its (normalized) source text so the per-execution admission
        bookkeeping stays off the hot path's critical nanoseconds."""
        with self._lock:
            if source in self._patterns:
                self._patterns.move_to_end(source)
                return self._patterns[source]
        pattern = extract_pattern(core)
        canonical = canonicalize(pattern) if pattern is not None else None
        with self._lock:
            self._patterns[source] = canonical
            while len(self._patterns) > 1024:
                self._patterns.popitem(last=False)
        return canonical

    # -- admission ------------------------------------------------------

    def observe(
        self,
        source: str,
        core: Any,
        store_version: int,
        items: Sequence[Any],
    ) -> bool:
        """Record one normal execution of a query; materialize its
        rows as a view once the pattern is hot enough.  Returns whether
        a view was admitted by *this* call."""
        pattern = self.pattern_of(source, core)
        if pattern is None or pattern.root is None:
            return False
        key = pattern_key(pattern)
        with self._lock:
            heat = self._heat.get(key, 0) + 1
            self._heat[key] = heat
            self._heat.move_to_end(key)
            while len(self._heat) > 4096:
                self._heat.popitem(last=False)
            existing = self._views.get(key)
            if existing is not None and existing.store_version == store_version:
                return False
            if heat < self.admit_after:
                return False
            if not all(isinstance(item, int) for item in items):
                # non-rank items (serialized values) are not view
                # material; the residual filter speaks pre ranks only
                self.rejected += 1
                get_metrics().count("service.views.rejected")
                return False
            view = MaterializedView(
                key=key,
                pattern=pattern,
                rows=tuple(items),
                store_version=store_version,
            )
            if view.nbytes > min(self.max_view_bytes, self.budget_bytes):
                self.rejected += 1
                get_metrics().count("service.views.rejected")
                return False
            if existing is not None:  # stale-version leftover
                self._drop(key)
            while self._views and self._bytes + view.nbytes > self.budget_bytes:
                self._evict_lru()
            self._views[key] = view
            self._bytes += view.nbytes
            self.admitted += 1
            metrics = get_metrics()
            metrics.count("service.views.admitted")
            metrics.gauge("service.views.bytes", self._bytes)
            return True

    # -- lookup ---------------------------------------------------------

    def answer(
        self, pattern: TreePattern, store_version: int
    ) -> list[int] | None:
        """Rows answering a query with canonical ``pattern`` from a
        strictly-containing view, or ``None`` (fall back to compile).

        Only views materialized at exactly ``store_version`` are
        eligible, and a view whose canonical key *equals* the query's
        is skipped: equivalence belongs to the canonical plan tier."""
        qkey = pattern_key(pattern)
        with self._lock:
            self.lookups += 1
            memo = self._memo.get((qkey, store_version))
            if memo is not None:
                self._memo.move_to_end((qkey, store_version))
                self.hits += 1
                get_metrics().count("service.cache.view_hit")
                return list(memo)
            candidates = [
                view
                for view in reversed(self._views.values())
                if view.store_version == store_version and view.key != qkey
            ]
        for view in candidates:
            if not contains_patterns(view.pattern, pattern).holds:
                continue
            rows = self._filter(pattern, view.rows)
            with self._lock:
                if self._views.get(view.key) is view:
                    view.hits += 1
                    self._views.move_to_end(view.key)
                self._memo[(qkey, store_version)] = tuple(rows)
                while len(self._memo) > self._memo_capacity:
                    self._memo.popitem(last=False)
                self.hits += 1
            get_metrics().count("service.cache.view_hit")
            return rows
        return None

    # -- eviction & invalidation ---------------------------------------

    def _drop(self, key: str) -> None:
        view = self._views.pop(key)
        self._bytes -= view.nbytes

    def _evict_lru(self) -> int:
        key = next(iter(self._views))
        freed = self._views[key].nbytes
        self._drop(key)
        self.evictions += 1
        metrics = get_metrics()
        metrics.count("service.views.evicted")
        metrics.gauge("service.views.bytes", self._bytes)
        return freed

    def evict_bytes(self, wanted: int) -> int:
        """Shed least-recently-used views until at least ``wanted``
        bytes are freed (or no views remain); returns bytes freed.
        The working-set manager calls this under memory pressure —
        views are the cheapest residency to rebuild."""
        freed = 0
        with self._lock:
            while self._views and freed < wanted:
                freed += self._evict_lru()
        return freed

    def invalidate(self, store_version: int | None = None) -> int:
        """Drop views (and all derived heat/memo state) that were not
        materialized at ``store_version`` — or everything when ``None``.
        Wired into the service's ``load`` path next to the plan cache's
        invalidation, upholding the never-stale contract."""
        with self._lock:
            stale = [
                key
                for key, view in self._views.items()
                if store_version is None or view.store_version != store_version
            ]
            for key in stale:
                self._drop(key)
            # heat and memos describe the pre-load corpus either way
            self._heat.clear()
            self._memo.clear()
            self.invalidated += len(stale)
            metrics = get_metrics()
            metrics.count("service.views.invalidated", len(stale))
            metrics.gauge("service.views.bytes", self._bytes)
            return len(stale)

    # -- introspection --------------------------------------------------

    @property
    def bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    def tier_stats(self) -> TierStats:
        """This tier's row in :class:`repro.service.cache.CacheStats`."""
        with self._lock:
            return TierStats(
                hits=self.hits,
                misses=self.lookups - self.hits,
                evictions=self.evictions,
                bytes=self._bytes,
            )

    def stats(self) -> dict[str, Any]:
        """A JSON-ready snapshot (surfaced as ``stats()["views"]``)."""
        with self._lock:
            return {
                "budget_bytes": self.budget_bytes,
                "admit_after": self.admit_after,
                "views": len(self._views),
                "bytes": self._bytes,
                "lookups": self.lookups,
                "hits": self.hits,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "evictions": self.evictions,
                "invalidated": self.invalidated,
            }
