"""The asyncio multi-tenant front door over the serving stack.

:class:`FrontDoor` is the admission boundary a production deployment
puts in front of a :class:`~repro.service.ShardedService` (or a
single-backend :class:`~repro.service.QueryService`).  It layers three
things on the PR 4 resilience primitives and the PR 8 process
executor, in admission order:

1. **Per-tenant quotas** — every tenant (:class:`~repro.service.
   tenancy.TenantSpec`) owns a token bucket; an exhausted bucket
   answers a typed :class:`~repro.errors.QuotaExceeded` carrying a
   ``retry_after_s`` hint, without touching the backend.
2. **Weighted-fair scheduling** — admitted queries wait in per-tenant
   lanes drained in deficit-round-robin order
   (:class:`~repro.service.tenancy.WeightedFairQueue`), so a flooding
   tenant cannot starve the others; a lane at its backlog cap answers
   a typed :class:`~repro.errors.ServiceOverloaded`.
3. **Batched intake with canonical coalescing** — the dispatcher
   drains the fair queue into small batches, compiles each distinct
   query through the service's canonical plan cache, and groups
   requests whose texts resolve to the *same cached plan* (identical
   canonical-cache keys — template respellings included) into one
   execution whose :class:`~repro.Result` every waiter shares.  A
   batch runs through the underlying service on a worker thread, the
   same ``run_many`` shape the service optimizes for, under an
   :class:`~repro.service.AdmissionGate` slot.

Execution runs under a per-group private metrics registry (the same
lossless-merge discipline as :meth:`QueryService._task`), which is
what makes the **per-tenant fault ledger** possible: the injected /
retried / degraded / surfaced tallies of each execution are read off
the group's registry and attributed to the tenant that triggered it,
so ``injected == retried + degraded + surfaced`` can be asserted per
tenant, not just globally (``docs/serving.md``).

For corpora larger than RAM, an optional **working-set manager**
(``working_set_bytes=``) LRU-evicts cold shard payloads: the parent's
serialized image cache (:meth:`Collection.evict_payload`) and the
shard's worker processes (:meth:`ProcessShardExecutor.retire_shard`)
are both released, and the next query against that shard re-attaches
on demand via the PR 8 ``shard_payload`` cache.  Evictions and
re-attaches are metered as ``service.frontdoor.evictions`` /
``service.frontdoor.reattach`` and must balance (every eviction that
is queried again re-attaches exactly once).

New metric families: ``service.frontdoor.*`` (admission, batching,
coalescing, eviction counters) and ``service.tenant.<name>.*``
(per-tenant admission and outcome counters).
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.engines import Engine
from repro.errors import (
    QuotaExceeded,
    ReproError,
    ServiceError,
    ServiceOverloaded,
)
from repro.obs import Histogram, latency_summary_ms
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.pipeline import CompiledQuery
from repro.result import Result
from repro.service.resilience import AdmissionGate
from repro.service.scatter import ShardedService, scatter_uris
from repro.service.service import QueryService
from repro.service.tenancy import TenantSpec, TokenBucket, WeightedFairQueue

__all__ = ["FrontDoor", "TenantSpec"]

#: the fault-disposition keys of the per-tenant ledger; the invariant
#: ``injected == retried + degraded + surfaced`` is asserted over them
LEDGER_KEYS = ("injected", "retried", "degraded", "surfaced")


@dataclass
class _Request:
    """One admitted query waiting for its execution."""

    tenant: str
    query: str
    engine: Engine
    deadline_s: float | None
    future: asyncio.Future
    loop: asyncio.AbstractEventLoop
    start_ns: int


@dataclass
class _Group:
    """Requests coalesced onto one cached plan — one execution."""

    compiled: CompiledQuery
    engine: Engine
    requests: list[_Request] = field(default_factory=list)


class _TenantState:
    """Runtime half of a :class:`TenantSpec`: bucket, counters, the
    fault ledger, and the per-tenant latency histogram."""

    def __init__(self, spec: TenantSpec, clock) -> None:
        self.spec = spec
        self.bucket = TokenBucket(spec.rate_qps, spec.burst, clock=clock)
        self.lock = threading.Lock()
        self.offered = 0
        self.admitted = 0
        self.rejected_quota = 0
        self.rejected_overload = 0
        self.ok = 0
        self.errors: dict[str, int] = {}
        self.latency = Histogram()
        self.faults = dict.fromkeys(LEDGER_KEYS, 0)

    def ledger_balanced(self) -> bool:
        with self.lock:
            return self.faults["injected"] == (
                self.faults["retried"]
                + self.faults["degraded"]
                + self.faults["surfaced"]
            )

    def stats(self) -> dict[str, Any]:
        with self.lock:
            return {
                "weight": self.spec.weight,
                "rate_qps": self.spec.rate_qps,
                "burst": self.spec.burst,
                "offered": self.offered,
                "admitted": self.admitted,
                "rejected_quota": self.rejected_quota,
                "rejected_overload": self.rejected_overload,
                "ok": self.ok,
                "errors": dict(self.errors),
                "latency_ms": latency_summary_ms(self.latency),
                "faults": dict(self.faults),
                "ledger_balanced": self.faults["injected"]
                == (
                    self.faults["retried"]
                    + self.faults["degraded"]
                    + self.faults["surfaced"]
                ),
            }


class _WorkingSet:
    """LRU working-set manager over the collection's shard-payload
    cache (process executor only): evicts the coldest resident images
    when the resident total exceeds the budget, and accounts the
    eviction/re-attach balance."""

    def __init__(self, service: ShardedService, budget_bytes: int):
        if budget_bytes <= 0:
            raise ValueError(
                f"working_set_bytes must be positive, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._service = service
        self._lock = threading.Lock()
        self._tick = 0
        self._stamps: dict[int, int] = {}
        self._evicted: set[int] = set()
        self.evictions = 0
        self.reattached = 0

    def after_batch(self, touched: set[int]) -> None:
        """Called once per executed batch with the shards the batch
        scattered/routed to: refresh recency, settle the re-attach
        ledger, and evict back under budget."""
        collection = self._service.collection
        metrics = get_metrics()
        with self._lock:
            self._tick += 1
            for shard in touched:
                self._stamps[shard] = self._tick
            stats = collection.payload_stats()
            per_shard = stats["per_shard"]
            # a previously evicted shard that is resident again was
            # re-attached on demand (shard_payload rebuilt the image)
            for shard in sorted(self._evicted):
                if per_shard[shard]["resident"]:
                    self._evicted.discard(shard)
                    self.reattached += 1
                    metrics.count("service.frontdoor.reattach")
            resident = [
                (self._stamps.get(entry["shard"], -1), entry["shard"], entry["bytes"])
                for entry in per_shard
                if entry["resident"]
            ]
            total = sum(nbytes for _, _, nbytes in resident)
            views = self._service.views
            if views is not None:
                # materialized views share the residency budget and are
                # the cheapest residency to rebuild (one re-execution
                # vs a full shard re-shred): shed them first
                total += views.bytes
                if total > self.budget_bytes:
                    freed = views.evict_bytes(total - self.budget_bytes)
                    if freed:
                        metrics.count("service.frontdoor.view_evictions")
                    total -= freed
            if total <= self.budget_bytes:
                return
            resident.sort()  # coldest stamp first
            for _, shard, nbytes in resident:
                if total <= self.budget_bytes:
                    break
                freed = collection.evict_payload(shard)
                if not freed:
                    continue
                with self._service._procpool_lock:
                    procpool = self._service._procpool
                if procpool is not None:
                    procpool.retire_shard(shard)
                self._evicted.add(shard)
                self.evictions += 1
                metrics.count("service.frontdoor.evictions")
                total -= freed

    def stats(self) -> dict[str, Any]:
        with self._lock:
            payload = self._service.collection.payload_stats()
            return {
                "budget_bytes": self.budget_bytes,
                "resident_bytes": payload["resident_bytes"],
                "evictions": self.evictions,
                "reattached": self.reattached,
                "pending_reattach": sorted(self._evicted),
            }


class FrontDoor:
    """Async multi-tenant admission layer over a serving stack.

    Parameters
    ----------
    service:
        The backend — a :class:`ShardedService` or
        :class:`QueryService`.  The front door does not own it; close
        it separately.
    tenants:
        The tenant contracts.  Submissions for unknown tenants raise
        ``ValueError`` (misconfiguration, not backpressure).
    batch_max, batch_window_s:
        Intake batching: the dispatcher drains up to ``batch_max``
        queries per batch and, when the first drain comes up short,
        waits ``batch_window_s`` for stragglers to coalesce with.
    max_concurrent_batches:
        Parallel batch executions (each runs on one worker thread over
        the service, which fans out internally).
    working_set_bytes:
        Optional RAM budget for the shard-payload working set (only
        meaningful for a sharded service on the process executor).
    deadline_s:
        Default per-query deadline forwarded to the service.
    clock:
        Token-bucket clock (injectable for deterministic tests).
    """

    def __init__(
        self,
        service: ShardedService | QueryService,
        tenants: Sequence[TenantSpec],
        *,
        batch_max: int = 16,
        batch_window_s: float = 0.002,
        max_concurrent_batches: int = 4,
        working_set_bytes: int | None = None,
        deadline_s: float | None = None,
        clock=time.monotonic,
    ):
        if not tenants:
            raise ValueError("at least one tenant is required")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if max_concurrent_batches < 1:
            raise ValueError("max_concurrent_batches must be >= 1")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.service = service
        self.batch_max = batch_max
        self.batch_window_s = batch_window_s
        self.max_concurrent_batches = max_concurrent_batches
        self.deadline_s = deadline_s
        self.metrics = MetricsRegistry()
        self._merge_lock = threading.Lock()
        self._gate = AdmissionGate(capacity=max_concurrent_batches)
        self._queue_lock = threading.Lock()
        self._wfq = WeightedFairQueue()
        self._tenants: dict[str, _TenantState] = {}
        for spec in tenants:
            self._tenants[spec.name] = _TenantState(spec, clock)
            self._wfq.register(
                spec.name, weight=spec.weight, max_backlog=spec.max_backlog
            )
        self._working_set: _WorkingSet | None = None
        if working_set_bytes is not None:
            if not (
                isinstance(service, ShardedService)
                and service.executor == "process"
            ):
                raise ValueError(
                    "working_set_bytes requires a ShardedService with "
                    "executor='process' (the payload cache is the "
                    "working set being managed)"
                )
            self._working_set = _WorkingSet(service, working_set_bytes)
        self._started = False
        self._closing = False
        self._wake: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._batch_sem: asyncio.Semaphore | None = None
        self._batches: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "FrontDoor":
        """Start the dispatcher on the running event loop."""
        if self._started:
            return self
        self._started = True
        self._closing = False
        self._wake = asyncio.Event()
        self._batch_sem = asyncio.Semaphore(self.max_concurrent_batches)
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-frontdoor-dispatch"
        )
        return self

    async def close(self) -> None:
        """Drain the backlog, finish in-flight batches, stop the
        dispatcher.  New submissions are rejected immediately."""
        if not self._started:
            return
        self._closing = True
        assert self._wake is not None
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._batches:
            await asyncio.gather(*self._batches, return_exceptions=True)
        self._started = False

    async def __aenter__(self) -> "FrontDoor":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- submission ----------------------------------------------------

    async def submit(
        self,
        tenant: str,
        query: str,
        engine: Engine | str = Engine.JOINGRAPH_SQL,
        *,
        deadline_s: float | None = None,
    ) -> Result:
        """Admit and execute one query for ``tenant``.

        Raises :class:`QuotaExceeded` when the tenant's token bucket
        is empty, :class:`ServiceOverloaded` when its fair-queue lane
        is at capacity, and whatever typed :class:`ServiceError` the
        execution surfaced otherwise.
        """
        if not self._started or self._wake is None:
            raise ServiceError("front door is not started")
        try:
            state = self._tenants[tenant]
        except KeyError:
            raise ValueError(f"unknown tenant {tenant!r}") from None
        engine = Engine.of(engine)
        with state.lock:
            state.offered += 1
        self._count(f"service.tenant.{tenant}.offered")
        if self._closing:
            raise ServiceError("front door is closing")
        if not state.bucket.try_acquire():
            with state.lock:
                state.rejected_quota += 1
            self._count("service.frontdoor.rejected.quota")
            self._count(f"service.tenant.{tenant}.rejected.quota")
            raise QuotaExceeded(
                tenant=tenant,
                retry_after_s=state.bucket.retry_after_s(),
            )
        loop = asyncio.get_running_loop()
        request = _Request(
            tenant=tenant,
            query=query,
            engine=engine,
            deadline_s=deadline_s if deadline_s is not None else self.deadline_s,
            future=loop.create_future(),
            loop=loop,
            start_ns=time.perf_counter_ns(),
        )
        with self._queue_lock:
            accepted = self._wfq.offer(tenant, request)
        if not accepted:
            with state.lock:
                state.rejected_overload += 1
            self._count("service.frontdoor.rejected.overload")
            self._count(f"service.tenant.{tenant}.rejected.overload")
            raise ServiceOverloaded(
                f"tenant {tenant!r} backlog full "
                f"({state.spec.max_backlog} queries waiting)"
            )
        with state.lock:
            state.admitted += 1
        self._count("service.frontdoor.admitted")
        self._count(f"service.tenant.{tenant}.admitted")
        self._wake.set()
        return await request.future

    # -- dispatch ------------------------------------------------------

    def _drain(self, limit: int) -> list[_Request]:
        batch: list[_Request] = []
        with self._queue_lock:
            while len(batch) < limit:
                taken = self._wfq.take()
                if taken is None:
                    break
                batch.append(taken[1])
        return batch

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None and self._batch_sem is not None
        while True:
            with self._queue_lock:
                backlog = len(self._wfq)
            if backlog == 0:
                if self._closing:
                    return
                self._wake.clear()
                # re-check under the new event state: a submit between
                # the len() and the clear() would otherwise be lost
                with self._queue_lock:
                    if len(self._wfq):
                        continue
                await self._wake.wait()
                continue
            batch = self._drain(self.batch_max)
            if (
                batch
                and len(batch) < self.batch_max
                and self.batch_window_s > 0
                and not self._closing
            ):
                # a short intake window lets template respellings from
                # other tenants coalesce onto the same cached plan
                await asyncio.sleep(self.batch_window_s)
                batch.extend(self._drain(self.batch_max - len(batch)))
            if not batch:
                continue
            await self._batch_sem.acquire()
            task = asyncio.create_task(self._run_batch(batch))
            self._batches.add(task)
            task.add_done_callback(self._batch_done)

    def _batch_done(self, task: asyncio.Task) -> None:
        self._batches.discard(task)
        assert self._batch_sem is not None
        self._batch_sem.release()

    async def _run_batch(self, batch: list[_Request]) -> None:
        try:
            await asyncio.to_thread(self._execute_batch, batch)
        except BaseException as error:  # noqa: BLE001 - fail the waiters
            failure = ServiceError(f"front door batch failed: {error}")
            for request in batch:
                if not request.future.done():
                    self._resolve(request, error=failure)

    # -- execution (worker threads) ------------------------------------

    def _execute_batch(self, batch: list[_Request]) -> None:
        outer = MetricsRegistry()
        previous = get_metrics()
        set_metrics(outer)
        touched: set[int] = set()
        try:
            outer.count("service.frontdoor.batches")
            outer.count("service.frontdoor.batched", len(batch))
            with self._gate.slot():
                for group in self._coalesce(batch, outer):
                    touched |= self._execute_group(group, outer)
            if self._working_set is not None:
                self._working_set.after_batch(touched)
        finally:
            set_metrics(previous)
            with self._merge_lock:
                self.metrics.merge(outer)

    def _coalesce(
        self, batch: list[_Request], metrics: MetricsRegistry
    ) -> list[_Group]:
        """Compile every request through the canonical plan cache and
        group the ones that resolved to the same cached plan: identical
        canonical-cache keys hand back the *same* compiled object, so
        object identity is exactly key identity."""
        groups: dict[tuple[int, str], _Group] = {}
        order: list[tuple[int, str]] = []
        for request in batch:
            try:
                compiled = self.service.compile(request.query)
            except ReproError as error:
                self._resolve(request, error=error)
                continue
            key = (id(compiled), request.engine.value)
            group = groups.get(key)
            if group is None:
                groups[key] = group = _Group(
                    compiled=compiled, engine=request.engine
                )
                order.append(key)
            else:
                metrics.count("service.frontdoor.coalesced")
            group.requests.append(request)
        return [groups[key] for key in order]

    def _execute_group(
        self, group: _Group, outer: MetricsRegistry
    ) -> set[int]:
        """One coalesced execution under a private registry; the fault
        ledger delta is attributed to the leading tenant.  Returns the
        shards the execution touched (working-set recency)."""
        leader = group.requests[0]
        local = MetricsRegistry()
        previous = get_metrics()
        set_metrics(local)
        result: Result | None = None
        error: BaseException | None = None
        try:
            result = self.service.execute(
                group.compiled,
                group.engine,
                deadline_s=leader.deadline_s,
            )
        except Exception as exc:
            # typed ServiceErrors and surfaced injected backend faults
            # alike belong to every coalesced waiter
            error = exc
        finally:
            set_metrics(previous)
        outer.count("service.frontdoor.executions")
        self._attribute(leader.tenant, local)
        outer.merge(local)
        for request in group.requests:
            self._resolve(request, result=result, error=error)
        return self._touched_shards(group.compiled)

    def _attribute(self, tenant: str, local: MetricsRegistry) -> None:
        """Read the execution's fault tallies off its private registry
        into the tenant's ledger — injection and handling both count on
        the executing thread (and worker deltas merge back into it), so
        the attribution is lossless."""
        counters = local.snapshot()["counters"]
        injected = sum(
            int(value)
            for name, value in counters.items()
            if name.startswith("faults.injected.")
        )
        retried = int(counters.get("service.faults.handled.retry", 0))
        degraded = int(counters.get("service.faults.handled.degrade", 0))
        surfaced = int(counters.get("service.faults.handled.surface", 0))
        if not (injected or retried or degraded or surfaced):
            return
        state = self._tenants[tenant]
        with state.lock:
            state.faults["injected"] += injected
            state.faults["retried"] += retried
            state.faults["degraded"] += degraded
            state.faults["surfaced"] += surfaced
        for name, value in (
            ("injected", injected),
            ("retried", retried),
            ("degraded", degraded),
            ("surfaced", surfaced),
        ):
            if value:
                local.count(f"service.tenant.{tenant}.faults.{name}", value)

    def _touched_shards(self, compiled: CompiledQuery) -> set[int]:
        if self._working_set is None or not isinstance(
            self.service, ShardedService
        ):
            return set()
        uris = scatter_uris(compiled.core)
        if uris is None:
            return set()
        collection = self.service.collection
        return {
            collection.entry(uri).shard
            for uri in uris
            if uri in collection
        }

    def _resolve(
        self,
        request: _Request,
        result: Result | None = None,
        error: BaseException | None = None,
    ) -> None:
        state = self._tenants[request.tenant]
        elapsed_ns = time.perf_counter_ns() - request.start_ns
        with state.lock:
            if error is None:
                state.ok += 1
                state.latency.observe(elapsed_ns)
            else:
                name = type(error).__name__
                state.errors[name] = state.errors.get(name, 0) + 1

        def deliver() -> None:
            if request.future.done():
                return
            if error is not None:
                request.future.set_exception(error)
            else:
                request.future.set_result(result)

        request.loop.call_soon_threadsafe(deliver)

    # -- introspection -------------------------------------------------

    def _count(self, name: str) -> None:
        with self._merge_lock:
            self.metrics.count(name)

    def fault_ledger(self) -> dict[str, dict[str, int]]:
        """Per-tenant injected/retried/degraded/surfaced tallies (the
        per-tenant half of the chaos accounting invariant)."""
        ledger = {}
        for name, state in self._tenants.items():
            with state.lock:
                ledger[name] = dict(state.faults)
        return ledger

    def stats(self) -> dict[str, Any]:
        """A JSON-ready snapshot of the admission boundary."""
        with self._queue_lock:
            queue = self._wfq.stats()
        with self._merge_lock:
            counters = dict(self.metrics.snapshot()["counters"])
        return {
            "tenants": {
                name: state.stats() for name, state in self._tenants.items()
            },
            "queue": queue,
            "inflight_batches": self._gate.inflight,
            "working_set": (
                self._working_set.stats()
                if self._working_set is not None
                else None
            ),
            "counters": {
                name: value
                for name, value in counters.items()
                if name.startswith(("service.frontdoor.", "service.tenant."))
            },
        }
