"""Multi-tenant admission primitives: token-bucket quotas and a
weighted-fair (deficit round-robin) queue.

These are the pure scheduling building blocks under the asyncio front
door (:mod:`repro.service.frontdoor`).  Both are deliberately free of
event-loop and service dependencies so their contracts can be checked
exhaustively (``tests/test_service/test_tenancy.py`` drives them with
hypothesis):

* :class:`TokenBucket` — *quota never exceeded over any window*: the
  tokens granted inside any window of ``W`` seconds are bounded by
  ``burst + rate * W``, regardless of the request pattern.
* :class:`WeightedFairQueue` — *no starvation* (every backlogged
  tenant is served within a bounded number of takes) and
  *conservation* (items served never exceed items offered).  Service
  shares converge to the configured per-tenant weights while every
  queue stays backlogged.

The clock is injected (``clock=``) so schedules are deterministic
under test; production code uses :func:`time.monotonic`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "TenantSpec",
    "TokenBucket",
    "WeightedFairQueue",
]


@dataclass(frozen=True)
class TenantSpec:
    """The static admission contract of one tenant.

    ``rate_qps``/``burst`` parameterize the tenant's token bucket;
    ``weight`` its deficit-round-robin share of the service under
    contention; ``max_backlog`` how many admitted-but-undispatched
    queries may wait in its fair-queue lane before the front door
    answers :class:`~repro.errors.ServiceOverloaded`.
    """

    name: str
    rate_qps: float = 50.0
    burst: float = 10.0
    weight: float = 1.0
    max_backlog: int = 256

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.rate_qps <= 0:
            raise ValueError(f"rate_qps must be positive, got {self.rate_qps}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.max_backlog < 1:
            raise ValueError(
                f"max_backlog must be >= 1, got {self.max_backlog}"
            )


class TokenBucket:
    """A classic token bucket: ``burst`` capacity, refilled at ``rate``
    tokens per second, never above capacity.

    The quota invariant — over *any* window ``[t0, t1]`` the granted
    tokens are at most ``burst + rate * (t1 - t0)`` — follows from the
    two clamps in :meth:`try_acquire`: tokens never exceed ``burst``
    and a grant strictly consumes balance.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()
        self.granted = 0
        self.denied = 0

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = max(self._stamp, now)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Grant ``tokens`` if the balance allows; never blocks."""
        if tokens <= 0:
            raise ValueError(f"tokens must be positive, got {tokens}")
        with self._lock:
            self._refill(self._clock())
            # the epsilon forgives float refill drift, never a real token
            if self._tokens + 1e-9 >= tokens:
                self._tokens -= tokens
                self.granted += 1
                return True
            self.denied += 1
            return False

    def retry_after_s(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` could be granted (0 when already
        grantable) — the backpressure hint a denied caller gets."""
        with self._lock:
            self._refill(self._clock())
            deficit = tokens - self._tokens
            return max(0.0, deficit / self.rate)

    @property
    def available(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TokenBucket rate={self.rate:g}/s burst={self.burst:g} "
            f"available={self.available:.2f}>"
        )


@dataclass
class _Lane:
    """One tenant's FIFO lane plus its deficit-round-robin credit."""

    weight: float
    max_backlog: int
    queue: deque = field(default_factory=deque)
    credit: float = 0.0
    offered: int = 0
    served: int = 0
    rejected: int = 0


class WeightedFairQueue:
    """Deficit round-robin over per-tenant FIFO lanes, one unit-cost
    item per :meth:`take`.

    Backlogged tenants rotate through a ring; whenever the ring rotates
    a new head in, that head's credit is recharged by its *quantum*
    (``weight`` normalized so the smallest registered weight gets 1.0),
    and a take serves the head whenever it holds at least one credit.
    Consequences, proved in the property tests:

    * every backlogged tenant is served at least once per full ring
      rotation, so starvation is impossible;
    * while all lanes stay backlogged, per-tenant service counts
      converge to the weight ratios;
    * items out never exceed items in (:meth:`offer` is the only
      producer and bounds each lane at ``max_backlog``).

    Not thread-safe by itself — the front door serializes access.
    """

    def __init__(self) -> None:
        self._lanes: dict[str, _Lane] = {}
        self._ring: deque[str] = deque()
        self._min_weight = 1.0
        self._size = 0

    # -- registration --------------------------------------------------

    def register(
        self, tenant: str, *, weight: float = 1.0, max_backlog: int = 256
    ) -> None:
        if tenant in self._lanes:
            raise ValueError(f"tenant {tenant!r} already registered")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if max_backlog < 1:
            raise ValueError(f"max_backlog must be >= 1, got {max_backlog}")
        self._lanes[tenant] = _Lane(weight=weight, max_backlog=max_backlog)
        self._min_weight = min(
            lane.weight for lane in self._lanes.values()
        )

    def _quantum(self, lane: _Lane) -> float:
        return lane.weight / self._min_weight

    # -- producing -----------------------------------------------------

    def offer(self, tenant: str, item: Any) -> bool:
        """Append one item to the tenant's lane; ``False`` when the
        lane is at its backlog cap (the caller surfaces overload)."""
        lane = self._lanes[tenant]
        if len(lane.queue) >= lane.max_backlog:
            lane.rejected += 1
            return False
        if not lane.queue:
            self._ring.append(tenant)
        lane.queue.append(item)
        lane.offered += 1
        self._size += 1
        return True

    # -- consuming -----------------------------------------------------

    def take(self) -> tuple[str, Any] | None:
        """Serve one item in weighted-fair order; ``None`` when idle."""
        if self._size == 0:
            return None
        # at most one rotation: the incoming head's recharge is always
        # >= 1 credit (quantum normalization), so the loop serves on
        # the first or second iteration
        while True:
            tenant = self._ring[0]
            lane = self._lanes[tenant]
            if lane.credit >= 1.0:
                lane.credit -= 1.0
                item = lane.queue.popleft()
                lane.served += 1
                self._size -= 1
                if not lane.queue:
                    # an emptied lane leaves the ring and forfeits its
                    # leftover credit (classic DRR: credit only
                    # accumulates while backlogged)
                    self._ring.popleft()
                    lane.credit = 0.0
                return tenant, item
            self._ring.rotate(-1)
            head = self._lanes[self._ring[0]]
            head.credit += self._quantum(head)

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def backlog(self, tenant: str) -> int:
        return len(self._lanes[tenant].queue)

    def tenants(self) -> Iterable[str]:
        return self._lanes.keys()

    def stats(self) -> dict[str, dict[str, int | float]]:
        """JSON-ready per-lane counters."""
        return {
            tenant: {
                "weight": lane.weight,
                "backlog": len(lane.queue),
                "offered": lane.offered,
                "served": lane.served,
                "rejected": lane.rejected,
            }
            for tenant, lane in self._lanes.items()
        }
