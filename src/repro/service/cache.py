"""The compiled-plan cache: an LRU over :class:`CompiledQuery` artifacts.

The paper's economics are compile-once, execute-many: the isolated
join graph is a *stable* artifact of the query text and the store
schema, so recompiling it per call throws away exactly the work the
rewrite engine spent making SQL the workhorse.  This cache keys the
full pipeline artifact — core expression, stacked plan, isolated plan,
and the generated SQL texts — on everything that can change its
content:

``query``            the surface text, lexically normalized by the
                     service (comments stripped, whitespace collapsed
                     via :func:`repro.xquery.text.normalize_query_text`)
                     — or a canonical-pattern alias key (a reserved
                     ``\\x00canonical\\x00`` prefix no real query text
                     can carry, see :meth:`QueryService.compile`);
``default_doc``      absolute paths resolve differently per default;
``serialize_step``   changes the compiled shape (Section 4 wrapper);
``disabled_rules``   ablations produce different isolated plans;
``store_version``    the document table's monotonic content version —
                     a load bumps it, so stale plans can never be
                     served (their key no longer matches);
``collection``       the sharded-collection identity (shard count tag)
                     for plans compiled by the scatter-gather service,
                     whose ``collection()`` resolution spans shards —
                     ``None`` for single-store services.

Hit/miss/eviction counts flow into the process metrics registry
(``service.cache.*``, see ``docs/observability.md``) and are kept as
plain attributes for direct inspection.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, NamedTuple

from repro.obs import get_metrics

if TYPE_CHECKING:  # import cycle: pipeline imports nothing from here,
    from repro.pipeline import CompiledQuery  # but keep runtime clean

__all__ = ["CacheKey", "CacheStats", "CompiledQueryCache", "TierStats"]


@dataclass(frozen=True)
class TierStats:
    """Counters for one cache tier (see :class:`CacheStats`)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes": self.bytes,
        }


@dataclass(frozen=True)
class CacheStats:
    """The typed cache-statistics surface of a query service.

    One snapshot across all three cache tiers — ``exact`` (lexically
    normalized text), ``canonical`` (tree-pattern alias), ``view``
    (materialized-view rewrites, :mod:`repro.service.views`) — as
    returned by ``QueryService.cache_stats()`` /
    ``ShardedService.cache_stats()``.  ``misses`` on the canonical and
    view tiers count lookups that *fell through* that tier; ``bytes``
    is only tracked for the view tier (compiled plans are not sized).

    :meth:`to_dict` (what ``stats()["cache"]`` serves) also carries the
    pre-1.2 flat counter keys (``hits``, ``misses``,
    ``canonical_hits``, ``evictions``) as **deprecated aliases** — see
    ``docs/api.md`` for the migration; they will be dropped in the
    next release.
    """

    capacity: int = 0
    size: int = 0
    exact: TierStats = field(default_factory=TierStats)
    canonical: TierStats = field(default_factory=TierStats)
    view: TierStats = field(default_factory=TierStats)

    def to_dict(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "size": self.size,
            "tiers": {
                "exact": self.exact.to_dict(),
                "canonical": self.canonical.to_dict(),
                "view": self.view.to_dict(),
            },
            # deprecated flat aliases (pre-1.2 shape); remove next release
            "hits": self.exact.hits,
            "misses": self.exact.misses,
            "canonical_hits": self.canonical.hits,
            "evictions": self.exact.evictions,
        }


class CacheKey(NamedTuple):
    """Everything a compiled artifact's content depends on."""

    query: str
    default_doc: str | None
    serialize_step: bool
    disabled_rules: frozenset[str]
    store_version: int
    collection: str | None = None


class CompiledQueryCache:
    """A thread-safe LRU of compiled queries.

    Entries are treated as immutable once inserted: the service
    pre-materializes the lazy SQL artifacts before :meth:`put`, so a
    cached :class:`CompiledQuery` can be executed from any number of
    threads without synchronization.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.canonical_hits = 0
        self.evictions = 0
        self._entries: OrderedDict[CacheKey, CompiledQuery] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> CompiledQuery | None:
        """The cached artifact for ``key``, refreshed to most-recently
        used — or ``None`` (counted as a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                get_metrics().count("service.cache.misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            get_metrics().count("service.cache.hits")
            return entry

    def peek(self, key: CacheKey) -> CompiledQuery | None:
        """Uncounted lookup without an LRU refresh — for single-flight
        re-checks after a racing thread may have filled the entry (the
        original :meth:`get` already counted this caller's miss)."""
        with self._lock:
            return self._entries.get(key)

    def get_canonical(self, key: CacheKey) -> CompiledQuery | None:
        """Counted canonical-form lookup: a hit on the canonical alias
        key increments the dedicated ``canonical_hits`` counter and the
        ``service.cache.canonical_hit`` metric — the caller's exact-key
        miss was already counted by :meth:`get`, so a miss here counts
        nothing."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            self.canonical_hits += 1
            get_metrics().count("service.cache.canonical_hit")
            return entry

    def put(self, key: CacheKey, compiled: CompiledQuery) -> None:
        """Insert (or refresh) ``key``, evicting least-recently-used
        entries beyond capacity."""
        metrics = get_metrics()
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                metrics.count("service.cache.evictions")
            metrics.gauge("service.cache.size", len(self._entries))

    def invalidate(self, store_version: int | None = None) -> int:
        """Drop entries; returns how many were removed.

        With a ``store_version``, only entries compiled against *other*
        versions are dropped (what :meth:`QueryService.load` calls:
        current-version entries stay hot).  Without one, the cache is
        cleared entirely.
        """
        with self._lock:
            if store_version is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                stale = [
                    key
                    for key in self._entries
                    if key.store_version != store_version
                ]
                for key in stale:
                    del self._entries[key]
                dropped = len(stale)
            metrics = get_metrics()
            metrics.count("service.cache.invalidated", dropped)
            metrics.gauge("service.cache.size", len(self._entries))
            return dropped

    def stats(self) -> dict[str, int]:
        """A point-in-time view of the counters (JSON-ready)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "canonical_hits": self.canonical_hits,
                "evictions": self.evictions,
            }
