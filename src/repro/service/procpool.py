"""Process-parallel shard execution with zero-copy shard attach.

:class:`ProcessShardExecutor` owns one long-lived worker *process* per
shard (``workers_per_shard`` of them for wider dispatch), breaking the
GIL wall the thread fan-out hits: every worker holds its own SQLite
connection and executes compiled SQL on its own interpreter, so shard
plans genuinely run concurrently on multi-core hosts.

Zero-copy attach
----------------
A worker never parses XML and never re-inserts rows.  The parent
serializes the shard's fully loaded, fully indexed database exactly
once per store version (:meth:`repro.store.Collection.shard_payload`,
built on ``sqlite3.Connection.serialize``) and ships the bytes down the
pipe; the worker adopts them via ``Connection.deserialize`` — SQLite
treats the byte image as the database file, indexes and ANALYZE
statistics included.

Plan shipping
-------------
Workers execute *pre-lowered* SQL, never the XQuery front-end.  Each
request is keyed by the shard-specialized plan's canonical cache key
(the same key the parent's :class:`CompiledQueryCache` uses); the SQL
text travels only the first time a worker sees a key, and the worker
caches it so repeated queries ship a tuple of a few dozen bytes.

Lossless marshalling
--------------------
Result rows, the worker's per-request :class:`MetricsRegistry`
recordings (:meth:`~repro.obs.metrics.MetricsRegistry.state`), flight
phase timings, and injected-fault tallies all come back over the pipe
and merge into the calling thread's registry / flight context / the
parent injector's ledger — bucket-for-bucket what a single in-process
recorder would have seen, so the PR 7 histograms and the chaos gate's
``injected == retried + degraded + surfaced`` invariant hold verbatim
across the process boundary.

Failure model
-------------
Typed errors are marshalled as (kind, class name, message, injected)
and rebuilt parent-side, so the *parent* owns every retry / degrade /
surface decision and the fault ledger stays in one place.  A worker
that dies mid-query (crash, kill -9) is detected on the pipe, restarted
from the cached payload, and the query is retried through the normal
transient-failure path — :class:`WorkerCrash` is transient but never
``injected``, so organic crashes stay out of the chaos ledger.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import sqlite3
import threading
import time
from dataclasses import replace
from typing import Any, Callable, NamedTuple

from repro import errors as _errors
from repro.errors import DeadlineExceeded, ServiceError
from repro.errors import WorkerCrash as _WorkerCrash
from repro.faults.injector import (
    FaultInjector,
    FaultPlan,
    InjectedOperationalError,
    active,
    install,
    is_injected,
    uninstall,
)
from repro.obs import get_metrics
from repro.obs.flight import current_context
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.service.resilience import (
    Deadline,
    cancellation,
    is_connection_death,
)

__all__ = ["ProcessShardExecutor", "ShippedPlan", "WorkerCrash"]

#: seed spacing between derived per-worker fault plans — each worker
#: draws an independent, reproducible fault sequence
_WORKER_SEED_STRIDE = 7919


def __getattr__(name: str):
    # deprecated re-export shim: WorkerCrash moved to repro.errors as
    # part of the consolidated error hierarchy (see docs/api.md)
    if name == "WorkerCrash":
        import warnings

        warnings.warn(
            "importing WorkerCrash from repro.service.procpool is "
            "deprecated; import it from repro.errors",
            DeprecationWarning,
            stacklevel=2,
        )
        return _WorkerCrash
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class ShippedPlan(NamedTuple):
    """One engine's executable rendering of a shard-specialized plan."""

    #: hashable plan identity — the shard variant's cache key + engine
    key: tuple
    #: the pre-lowered SQL text (shipped once per worker per key)
    sql_text: str
    #: index of the item column in the SELECT list
    item_index: int


# -- worker side -----------------------------------------------------------


def _worker_main(
    conn: multiprocessing.connection.Connection, cached_statements: int
) -> None:
    """The worker process loop: attach a shard image, cache shipped
    plans, execute on request.  One request in flight at a time (the
    parent serializes per-worker traffic), so plain locals suffice."""
    # a fork-started worker would inherit the parent's installed
    # injector; start clean either way — faults arrive by message
    uninstall()
    payload: bytes | None = None
    backend: Any = None
    plans: dict[tuple, tuple[str, int]] = {}
    injector: FaultInjector | None = None

    def drop_backend() -> None:
        nonlocal backend
        if backend is not None:
            try:
                backend.close()
            except Exception:
                pass
            backend = None

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "stop":
            break
        if op == "attach":
            payload = message[1]
            drop_backend()
            plans.clear()
            conn.send(("ok", None))
            continue
        if op == "faults":
            plan = message[1]
            uninstall()
            injector = None
            if plan is not None:
                injector = FaultInjector(plan)
                install(injector)
            conn.send(("ok", None))
            continue
        # op == "exec"
        _, key, sql_text, item_index, budget = message
        if sql_text is not None:
            plans[key] = (sql_text, item_index)
        local = MetricsRegistry()
        set_metrics(local)
        before = _fault_tally(injector)
        reply: tuple[str, dict[str, Any]]
        try:
            plan_entry = plans.get(key)
            if plan_entry is None:
                raise ServiceError(f"worker has no plan for key {key!r}")
            if backend is None:
                if payload is None:
                    raise ServiceError("worker has no shard payload attached")
                # zero-copy attach: adopt the serialized image, no
                # XML re-parse, no row inserts, no index rebuild
                from repro.sql.backend import SQLiteBackend

                backend = SQLiteBackend.from_serialized(
                    payload, cached_statements=cached_statements
                )
                local.count("service.procpool.attach")
            deadline = Deadline.after(budget) if budget is not None else None
            started = time.perf_counter_ns()
            with cancellation(backend.connection, deadline):
                items = backend.run_shipped(*plans[key])
            reply = (
                "ok",
                {
                    "items": items,
                    "sql_ns": time.perf_counter_ns() - started,
                },
            )
        except BaseException as error:  # marshalled, never silently lost
            if isinstance(error, sqlite3.Error) and is_connection_death(error):
                # this connection is gone (injected disconnect or a
                # genuine close); rebuild from the payload on retry
                drop_backend()
            reply = ("err", _marshal_error(error))
        finally:
            set_metrics(None)
        body = reply[1]
        body["metrics"] = local.state()
        body["faults"] = _fault_delta(before, _fault_tally(injector))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _fault_tally(
    injector: FaultInjector | None,
) -> tuple[dict[str, int], dict[str, int]]:
    if injector is None:
        return {}, {}
    return injector.counts.snapshot(), injector.counts.absorbed_snapshot()


def _fault_delta(
    before: tuple[dict[str, int], dict[str, int]],
    after: tuple[dict[str, int], dict[str, int]],
) -> tuple[dict[str, int], dict[str, int]] | None:
    by_kind = {
        kind: count - before[0].get(kind, 0)
        for kind, count in after[0].items()
        if count != before[0].get(kind, 0)
    }
    absorbed = {
        kind: count - before[1].get(kind, 0)
        for kind, count in after[1].items()
        if count != before[1].get(kind, 0)
    }
    if not by_kind and not absorbed:
        return None
    return by_kind, absorbed


def _marshal_error(error: BaseException) -> dict[str, Any]:
    """A typed error as plain builtins — enough for the parent to
    rebuild an instance the resilience stack classifies identically."""
    info: dict[str, Any] = {
        "name": type(error).__name__,
        "message": str(error),
        "injected": is_injected(error),
    }
    if isinstance(error, DeadlineExceeded):
        info["kind"] = "deadline"
        info["budget"] = error.budget
        info["elapsed"] = error.elapsed
    elif isinstance(error, sqlite3.Error):
        info["kind"] = "sqlite"
    elif isinstance(error, _errors.ReproError):
        info["kind"] = "repro"
    else:
        info["kind"] = "other"
    return info


def _rebuild_error(info: dict[str, Any]) -> BaseException:
    """The parent-side inverse of :func:`_marshal_error`."""
    kind = info["kind"]
    error: BaseException
    if kind == "deadline":
        # re-raising with the worker's budget/elapsed would re-append
        # the suffix _marshal_error already baked into the message
        error = DeadlineExceeded(info["message"])
        error.budget = info.get("budget")  # type: ignore[attr-defined]
        error.elapsed = info.get("elapsed")  # type: ignore[attr-defined]
    elif kind == "sqlite":
        if info["injected"]:
            error = InjectedOperationalError(info["message"])
        else:
            cls = getattr(sqlite3, info["name"], sqlite3.OperationalError)
            error = cls(info["message"])
    elif kind == "repro":
        cls = getattr(_errors, info["name"], ServiceError)
        try:
            error = cls(info["message"])
        except TypeError:  # subclass with a mandatory extra argument
            error = ServiceError(info["message"])
    else:
        error = ServiceError(
            f"shard worker failed: {info['name']}: {info['message']}"
        )
    if info["injected"]:
        error.injected = True  # type: ignore[attr-defined]
    return error


# -- parent side -----------------------------------------------------------


class _Worker:
    """Parent-side handle for one worker process: the pipe, what has
    been shipped to it, and its lifetime counters.  All traffic to the
    process is serialized under :attr:`lock`."""

    def __init__(self, shard: int, index: int, uid: int):
        self.shard = shard
        self.index = index
        self.uid = uid
        self.name = f"s{shard}w{index}"
        self.lock = threading.Lock()
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn: multiprocessing.connection.Connection | None = None
        self.attached_version: int | None = None
        self.shipped: set[tuple] = set()
        self.fault_plan: FaultPlan | None = None
        self.restarts = 0
        self.requests = 0
        self.merges = 0


class ProcessShardExecutor:
    """A pool of long-lived worker processes, ``workers_per_shard`` per
    shard, with per-shard round-robin dispatch.

    ``payload`` / ``version`` are supplied per call so the executor
    stays decoupled from the store: when the shard's store version
    moves, the next request re-attaches the new image in place (the
    worker process survives; only its database and plan cache turn
    over).
    """

    def __init__(
        self,
        shards: int,
        *,
        workers_per_shard: int = 1,
        cached_statements: int = 512,
        start_method: str = "spawn",
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if workers_per_shard < 1:
            raise ValueError(
                f"workers_per_shard must be >= 1, got {workers_per_shard}"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self.cached_statements = cached_statements
        self.workers_per_shard = workers_per_shard
        self._workers: list[list[_Worker]] = []
        uid = 0
        for shard in range(shards):
            row = []
            for index in range(workers_per_shard):
                row.append(_Worker(shard, index, uid))
                uid += 1
            self._workers.append(row)
        self._rr = [0] * shards
        self._rr_lock = threading.Lock()
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def _start(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.cached_statements),
            name=f"repro-shard-{worker.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.attached_version = None
        worker.shipped = set()
        worker.fault_plan = None

    def _restart(self, worker: _Worker) -> None:
        self._reap(worker)
        worker.restarts += 1
        get_metrics().count("service.procpool.worker_restarts")
        self._start(worker)

    def _reap(self, worker: _Worker) -> None:
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.conn = None
        process = worker.process
        worker.process = None
        if process is not None:
            process.join(timeout=0.5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)

    def close(self) -> None:
        """Stop every worker process (idempotent)."""
        self._closed = True
        for row in self._workers:
            for worker in row:
                with worker.lock:
                    if worker.conn is not None:
                        try:
                            worker.conn.send(("stop",))
                        except (BrokenPipeError, OSError):
                            pass
                    self._reap(worker)

    def retire_shard(self, shard: int) -> int:
        """Stop the shard's worker processes (working-set eviction:
        their attached database images are the per-shard RAM cost).
        Returns how many live workers were retired.  The pool stays
        usable — the next request to the shard restarts a worker and
        re-attaches the current image on demand (:meth:`_sync`)."""
        if not 0 <= shard < len(self._workers):
            raise ValueError(
                f"shard {shard} out of range for {len(self._workers)} shards"
            )
        retired = 0
        for worker in self._workers[shard]:
            with worker.lock:
                if worker.process is None:
                    continue
                if worker.conn is not None:
                    try:
                        worker.conn.send(("stop",))
                    except (BrokenPipeError, OSError):
                        pass
                self._reap(worker)
                retired += 1
        if retired:
            get_metrics().count(
                "service.procpool.workers_retired", retired
            )
        return retired

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------

    def _pick(self, shard: int) -> _Worker:
        row = self._workers[shard]
        if len(row) == 1:
            return row[0]
        with self._rr_lock:
            index = self._rr[shard]
            self._rr[shard] = (index + 1) % len(row)
        return row[index]

    def _request(self, worker: _Worker, message: tuple) -> tuple:
        """One send/recv round-trip; a dead worker is restarted and the
        failure reported as a transient :class:`WorkerCrash`."""
        conn = worker.conn
        assert conn is not None
        try:
            conn.send(message)
            return conn.recv()
        except (EOFError, BrokenPipeError, OSError) as cause:
            self._restart(worker)
            raise _WorkerCrash(
                f"shard worker {worker.name} died mid-request "
                f"({type(cause).__name__}); restarted"
            ) from cause

    def _sync(self, worker: _Worker, version: int, payload: Callable[[], bytes]) -> None:
        """Bring a (possibly fresh) worker up to date: process alive,
        current shard image attached, fault plan matching the parent's
        active injector."""
        if worker.process is None or not worker.process.is_alive():
            if worker.process is not None:
                self._restart(worker)
            else:
                self._start(worker)
        if worker.attached_version != version:
            reply = self._request(worker, ("attach", payload()))
            if reply[0] != "ok":  # pragma: no cover - protocol guard
                raise ServiceError(f"shard attach failed: {reply[1]}")
            worker.attached_version = version
            worker.shipped = set()
        plan = _shippable_plan()
        if plan != worker.fault_plan:
            derived = (
                None
                if plan is None
                else replace(
                    plan, seed=plan.seed + _WORKER_SEED_STRIDE * (worker.uid + 1)
                )
            )
            reply = self._request(worker, ("faults", derived))
            if reply[0] != "ok":  # pragma: no cover - protocol guard
                raise ServiceError(f"fault-plan shipping failed: {reply[1]}")
            worker.fault_plan = plan

    def execute(
        self,
        shard: int,
        plan: ShippedPlan,
        *,
        version: int,
        payload: Callable[[], bytes],
        budget_s: float | None = None,
    ) -> list[Any]:
        """Run one shipped plan on a worker of ``shard``; returns the
        shard-local item sequence.

        Raises the worker's failure rebuilt as its original type (so
        the caller's retry/degrade classification is unchanged), or
        :class:`WorkerCrash` when the process died mid-request.
        """
        if self._closed:
            raise RuntimeError("process shard executor is closed")
        worker = self._pick(shard)
        with worker.lock:
            self._sync(worker, version, payload)
            sql_text: str | None = plan.sql_text
            if plan.key in worker.shipped:
                sql_text = None  # the worker already caches this plan
            reply = self._request(
                worker, ("exec", plan.key, sql_text, plan.item_index, budget_s)
            )
            worker.shipped.add(plan.key)
            worker.requests += 1
            worker.merges += 1
        self._merge(worker, reply[1])
        if reply[0] == "err":
            raise _rebuild_error(reply[1])
        flight = current_context()
        if flight is not None:
            flight.add_phase("sql", reply[1]["sql_ns"])
        return reply[1]["items"]

    def _merge(self, worker: _Worker, body: dict[str, Any]) -> None:
        """Fold the worker's per-request recordings into the calling
        thread's registry and the parent injector's ledger — the
        lossless half of the process-boundary contract."""
        metrics = get_metrics()
        metrics.merge_state(body["metrics"])
        metrics.count("service.procpool.requests")
        metrics.count(f"service.procpool.merges.{worker.name}")
        delta = body.get("faults")
        if delta is not None:
            injector = active()
            if injector is not None:
                injector.counts.absorb(*delta)

    # -- introspection -------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """JSON-ready per-worker lifetime counters (the ``repro obs``
        merge-count report reads these)."""
        workers = []
        for row in self._workers:
            for worker in row:
                # snapshot the process reference once: a concurrent
                # restart/reap may null worker.process between reads,
                # and the report must describe a worker mid-restart
                # (pid None, alive False) instead of crashing
                process = worker.process
                workers.append(
                    {
                        "worker": worker.name,
                        "shard": worker.shard,
                        "pid": (
                            process.pid if process is not None else None
                        ),
                        "alive": (
                            process is not None and process.is_alive()
                        ),
                        "requests": worker.requests,
                        "merges": worker.merges,
                        "restarts": worker.restarts,
                        "plans_shipped": len(worker.shipped),
                    }
                )
        return {
            "executor": "process",
            "workers_per_shard": self.workers_per_shard,
            "workers": workers,
        }


def _shippable_plan() -> FaultPlan | None:
    """The parent's active fault plan, when it can be shipped: scripted
    injectors replay an exact parent-side sequence and stay local."""
    injector = active()
    if injector is None or injector._script is not None:
        return None
    plan = injector.plan
    if all(getattr(plan, kind) == 0.0 for kind in ("busy", "stall", "disconnect", "retire")):
        return None
    return plan
