"""The query service layer: compile-once, execute-many, N workers.

The paper isolates the join graph so that one compiled SQL block can
let the RDBMS do the heavy lifting; this package adds the serving
economics on top — a compiled-plan LRU (:class:`CompiledQueryCache`),
a thread-safe shared-cache SQLite connection pool
(:class:`BackendPool`), the :class:`QueryService` facade with
batch/concurrent execution, and the asyncio multi-tenant
:class:`FrontDoor` (per-tenant quotas, weighted-fair admission,
coalesced batching).  See ``docs/performance.md`` and
``docs/serving.md``.
"""

from repro.service.cache import (
    CacheKey,
    CacheStats,
    CompiledQueryCache,
    TierStats,
)
from repro.service.frontdoor import FrontDoor
from repro.service.pool import BackendPool
from repro.service.resilience import (
    AdmissionGate,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)
from repro.service.scatter import ShardedService
from repro.service.service import QueryService
from repro.service.tenancy import TenantSpec, TokenBucket, WeightedFairQueue
from repro.service.views import MaterializedView, ViewManager

__all__ = [
    "AdmissionGate",
    "BackendPool",
    "CacheKey",
    "CacheStats",
    "CircuitBreaker",
    "CompiledQueryCache",
    "Deadline",
    "FrontDoor",
    "MaterializedView",
    "QueryService",
    "RetryPolicy",
    "ShardedService",
    "TenantSpec",
    "TierStats",
    "TokenBucket",
    "ViewManager",
    "WeightedFairQueue",
]
