"""Resilience primitives for the query service.

The serving bet of the paper — hand the heavy lifting to an
off-the-shelf RDBMS — only holds in production if the service stays
*correct and available* when that RDBMS misbehaves mid-flight.  This
module is the toolbox the hardened :class:`repro.service.QueryService`
is built from:

:class:`Deadline`
    A monotonic per-query time budget.  The active deadline is kept in
    a thread-local so deep layers (the SQLite progress handler, the
    fault injector's stall simulation) can honor it without threading
    it through every signature.
:func:`cancellation`
    Context manager that arms true query cancellation on a SQLite
    connection: a progress handler aborts the in-flight statement once
    the deadline passes, and the resulting ``interrupted`` error is
    translated into :class:`repro.errors.DeadlineExceeded`.
:class:`RetryPolicy`
    Bounded retry with exponential backoff, capped by the deadline.
:class:`CircuitBreaker`
    Classic closed → open → half-open breaker over consecutive backend
    failures, with ``service.breaker.*`` metrics.
:class:`AdmissionGate`
    A fast-fail cap on concurrently admitted queries
    (:class:`repro.errors.ServiceOverloaded` instead of an unbounded
    queue).

Error classification (:func:`is_transient`, :func:`is_connection_death`)
decides which ``sqlite3`` failures are worth retrying.  Semantics and
the failure model are documented in ``docs/robustness.md``.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import Callable, Iterator

from contextlib import contextmanager

from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    PoolRetiredError,
    ServiceOverloaded,
)
from repro.obs import get_metrics

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "cancellation",
    "current_deadline",
    "deadline_scope",
    "is_connection_death",
    "is_transient",
]


# -- deadlines ------------------------------------------------------------

_state = threading.local()


class Deadline:
    """A monotonic time budget for one query.

    Constructed via :meth:`after`; all arithmetic is on
    ``time.monotonic`` so wall-clock adjustments cannot extend or
    shrink a budget.
    """

    __slots__ = ("budget", "expires_at", "started_at")

    def __init__(self, started_at: float, budget: float):
        self.started_at = started_at
        self.budget = budget
        self.expires_at = started_at + budget

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        if seconds <= 0:
            raise ValueError("deadline budget must be positive")
        return cls(time.monotonic(), seconds)

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    def check(self, *, injected: bool = False) -> None:
        """Raise :class:`DeadlineExceeded` when the budget is gone.

        ``injected`` marks the raised error as caused by an injected
        fault (the chaos accounting gate distinguishes injected from
        organic deadline misses).
        """
        if self.expired:
            error = DeadlineExceeded(
                budget=self.budget, elapsed=self.elapsed()
            )
            error.injected = injected  # type: ignore[attr-defined]
            raise error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget={self.budget:.3f}s, remaining={self.remaining():.3f}s)"


def current_deadline() -> Deadline | None:
    """The deadline governing this thread's in-flight query, if any."""
    return getattr(_state, "deadline", None)


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Publish ``deadline`` as this thread's active deadline for the
    duration (``None`` is allowed and publishes nothing new)."""
    previous = current_deadline()
    _state.deadline = deadline if deadline is not None else previous
    try:
        yield deadline
    finally:
        _state.deadline = previous


#: statements between progress-handler invocations — small enough that
#: cancellation latency is dominated by the check interval, large
#: enough that the handler is invisible on fast queries
_PROGRESS_OPCODES = 2_000


@contextmanager
def cancellation(
    connection: sqlite3.Connection, deadline: Deadline | None
) -> Iterator[None]:
    """Arm deadline cancellation on ``connection`` for the duration.

    While active, SQLite calls back every ``_PROGRESS_OPCODES`` VM
    opcodes; once the deadline passes the handler returns nonzero and
    SQLite aborts the in-flight statement with an ``interrupted``
    :class:`sqlite3.OperationalError`, which is re-raised here as
    :class:`DeadlineExceeded`.  The connection (and its prepared
    statements) remains fully usable afterwards.

    With ``deadline=None`` this only publishes the (absent) deadline —
    the hot path installs no handler and adds no per-opcode work.
    """
    if deadline is None:
        yield
        return
    metrics = get_metrics()

    def interrupt_when_expired() -> int:
        if deadline.expired:
            metrics.count("service.deadline.interrupts")
            return 1
        return 0

    connection.set_progress_handler(interrupt_when_expired, _PROGRESS_OPCODES)
    try:
        with deadline_scope(deadline):
            deadline.check()
            yield
    except sqlite3.OperationalError as error:
        if "interrupt" in str(error).lower():
            raise DeadlineExceeded(
                budget=deadline.budget, elapsed=deadline.elapsed()
            ) from error
        raise
    finally:
        try:
            connection.set_progress_handler(None, 0)
        except sqlite3.ProgrammingError:
            pass  # the connection died mid-flight; nothing to disarm


# -- error classification -------------------------------------------------

#: substrings of sqlite3 error messages that indicate a *transient*
#: condition: retrying against the same (or a fresh) connection can
#: legitimately succeed.  Anything else is a real bug and surfaces.
_TRANSIENT_MARKERS = (
    "database is locked",
    "database is busy",
    "database table is locked",
    "connection died",
    "closed database",
)

#: markers meaning this thread's connection itself is gone — retrying
#: requires discarding it and opening a fresh one.
_CONNECTION_DEATH_MARKERS = ("connection died", "closed database")


def is_transient(error: BaseException) -> bool:
    """Is ``error`` worth retrying (bounded, with backoff)?"""
    if isinstance(error, PoolRetiredError):
        return True
    if isinstance(error, (sqlite3.OperationalError, sqlite3.ProgrammingError)):
        message = str(error).lower()
        return any(marker in message for marker in _TRANSIENT_MARKERS)
    return False


def is_connection_death(error: BaseException) -> bool:
    """Does ``error`` mean the per-thread connection is dead and must
    be discarded before a retry can succeed?"""
    message = str(error).lower()
    return any(marker in message for marker in _CONNECTION_DEATH_MARKERS)


# -- retry ----------------------------------------------------------------


class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``max_retries`` counts *re*-tries: a query may execute at most
    ``max_retries + 1`` times.  Backoff for attempt ``n`` (0-based) is
    ``base * multiplier**n``, capped at ``max_backoff`` and always
    capped by the remaining deadline.
    """

    __slots__ = ("base", "max_backoff", "max_retries", "multiplier", "sleeper")

    def __init__(
        self,
        max_retries: int = 2,
        base: float = 0.005,
        multiplier: float = 2.0,
        max_backoff: float = 0.25,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if base < 0 or multiplier < 1 or max_backoff < 0:
            raise ValueError("invalid backoff parameters")
        self.max_retries = max_retries
        self.base = base
        self.multiplier = multiplier
        self.max_backoff = max_backoff
        self.sleeper = sleeper

    def backoff(self, attempt: int) -> float:
        """The planned pause before retry ``attempt`` (0-based)."""
        return min(self.base * (self.multiplier**attempt), self.max_backoff)

    def allows(self, attempt: int, deadline: Deadline | None) -> bool:
        """May retry number ``attempt`` (0-based) still be attempted?

        A retry is pointless when the budget cannot even cover its
        backoff pause, so the deadline bounds the retry count too.
        """
        if attempt >= self.max_retries:
            return False
        if deadline is not None and deadline.remaining() <= self.backoff(attempt):
            return False
        return True

    def pause(self, attempt: int, deadline: Deadline | None) -> float:
        """Sleep the backoff for ``attempt``; returns seconds slept."""
        pause = self.backoff(attempt)
        if deadline is not None:
            pause = min(pause, deadline.remaining())
        if pause > 0:
            self.sleeper(pause)
        return pause


# -- circuit breaker ------------------------------------------------------


class CircuitBreaker:
    """Trip open after ``threshold`` consecutive backend failures.

    States: *closed* (all calls pass), *open* (calls are refused for
    ``reset_after`` seconds), *half-open* (one probe call is let
    through; success closes the breaker, failure re-opens it).  A
    probe that ends without a backend verdict — a deadline miss, a
    non-transient query bug — must call :meth:`release_probe` so the
    slot frees and the next caller can probe; the service wraps every
    admitted attempt in a ``finally`` doing exactly that.  All
    transitions are counted (``service.breaker.opened`` /
    ``.reopened`` / ``.closed``) and the current state is exported as
    the gauge ``service.breaker.state`` (0 closed, 1 open, 0.5
    half-open).  Thread-safe; the clock is injectable for tests.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self,
        threshold: int = 8,
        reset_after: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold <= 0:
            raise ValueError("breaker threshold must be positive")
        self.threshold = threshold
        self.reset_after = reset_after
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probing = False
        self._probe_owner: int | None = None

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.reset_after
        ):
            return self.HALF_OPEN
        return self._state

    def _export_state(self) -> None:
        value = {self.CLOSED: 0.0, self.OPEN: 1.0, self.HALF_OPEN: 0.5}
        get_metrics().gauge("service.breaker.state", value[self._peek_state()])

    def allow(self) -> bool:
        """May a backend call proceed right now?

        In half-open state exactly one caller is admitted as the probe;
        everyone else keeps getting refused until the probe reports.
        """
        with self._lock:
            state = self._peek_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probing:
                self._probing = True
                self._probe_owner = threading.get_ident()
                get_metrics().count("service.breaker.half_open")
                return True
            get_metrics().count("service.breaker.short_circuited")
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state != self.CLOSED:
                get_metrics().count("service.breaker.closed")
            self._state = self.CLOSED
            self._failures = 0
            self._probing = False
            self._probe_owner = None
            self._export_state()

    def record_failure(self) -> None:
        metrics = get_metrics()
        with self._lock:
            self._failures += 1
            state = self._peek_state()
            if state == self.HALF_OPEN and self._probing:
                # the probe failed: re-open for another full window
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probing = False
                self._probe_owner = None
                metrics.count("service.breaker.reopened")
            elif state == self.CLOSED and self._failures >= self.threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
                metrics.count("service.breaker.opened")
            self._export_state()

    def release_probe(self) -> None:
        """Free the half-open probe slot without recording a verdict.

        A probe admitted by :meth:`allow` normally reports back through
        :meth:`record_success` or :meth:`record_failure`; a probe that
        exits any other way (deadline miss, non-transient query bug,
        unexpected exception) would hold the slot forever and wedge the
        breaker half-open, refusing every call.  Only the thread that
        was admitted as the probe can release it, and a probe that has
        already reported is a no-op — callers may invoke this
        unconditionally in a ``finally``.
        """
        with self._lock:
            if self._probing and self._probe_owner == threading.get_ident():
                self._probing = False
                self._probe_owner = None
                get_metrics().count("service.breaker.probe_released")
                self._export_state()

    def require(self) -> None:
        """:meth:`allow` or raise :class:`CircuitOpenError`."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker is {self.state} after "
                f"{self._failures} consecutive backend failures"
            )


# -- admission control ----------------------------------------------------


class AdmissionGate:
    """A fast-fail cap on concurrently admitted queries.

    ``capacity=None`` disables the gate entirely (every admission
    succeeds and only the in-flight gauge is maintained).  Rejections
    are instantaneous — the point is to shed load *before* work or
    queue memory is spent on a query that would only time out.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("admission capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._inflight = 0

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def enter(self) -> None:
        metrics = get_metrics()
        with self._lock:
            if self.capacity is not None and self._inflight >= self.capacity:
                metrics.count("service.admission.rejected")
                raise ServiceOverloaded(
                    f"service at capacity ({self.capacity} queries in flight)"
                )
            self._inflight += 1
            metrics.gauge("service.admission.inflight", self._inflight)

    def exit(self) -> None:
        with self._lock:
            self._inflight -= 1
            if self._inflight < 0:  # pragma: no cover - defensive
                self._inflight = 0
            get_metrics().gauge("service.admission.inflight", self._inflight)

    @contextmanager
    def slot(self) -> Iterator[None]:
        self.enter()
        try:
            yield
        finally:
            self.exit()
