"""The query service: compile-once, execute-many, N workers.

:class:`QueryService` is the production-oriented front door over
:class:`repro.pipeline.XQueryProcessor`.  It composes three pieces:

- the :class:`CompiledQueryCache` (``cache.py``) so repeated query
  texts skip the whole front end — parse, normalize, loop-lift,
  isolate, codegen — and go straight to the stored join-graph SQL;
- the :class:`BackendPool` (``pool.py``) so concurrent queries execute
  against per-thread connections of one shared in-memory SQLite
  instance instead of queueing behind a single connection;
- a :class:`~concurrent.futures.ThreadPoolExecutor` behind
  :meth:`submit` / :meth:`run_many` for callers that want the service
  to own the concurrency.

Metrics (``service.*``, catalog in ``docs/observability.md``): query
counters per engine, a per-query latency histogram
(``service.query_ns``), cache hit/miss/eviction counters and pool
connection gauges.  Worker threads record into private registries that
are merged into the submitting thread's registry when each task
finishes, so ``metrics_scope`` works transparently across the pool.

Invalidation: :meth:`load` bumps the store's content version, drops
cache entries compiled against older versions and retires the current
backend pool — in-flight queries drain against the old snapshot, new
queries see the new one.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Iterable, Sequence

from repro.algebra.interpreter import run_plan
from repro.infoset.encoding import DocumentStore
from repro.obs import MetricsRegistry, get_metrics, set_metrics
from repro.pipeline import CompiledQuery, Engine, XQueryProcessor
from repro.service.cache import CacheKey, CompiledQueryCache
from repro.service.pool import BackendPool

__all__ = ["QueryService"]


class QueryService:
    """A thread-safe serving layer over one document store.

    Parameters
    ----------
    store, default_doc, serialize_step, disabled_rules:
        Forwarded to the underlying :class:`XQueryProcessor`.
    workers:
        Thread-pool width for :meth:`submit` / :meth:`run_many`.
        Direct :meth:`execute` calls run on the caller's thread (and
        are themselves safe to issue from many threads).
    cache_capacity:
        Compiled-plan LRU size.
    cached_statements:
        Per-connection prepared-statement cache size for the backend
        pool.
    indexes:
        Index set for the SQL backend (``None`` = the paper's Table 6).
    checked:
        Run the plan sanitizer during (cold) compiles, as on
        :class:`XQueryProcessor`.
    """

    def __init__(
        self,
        store: DocumentStore | None = None,
        default_doc: str | None = None,
        serialize_step: bool = False,
        disabled_rules: set[str] | None = None,
        *,
        workers: int = 4,
        cache_capacity: int = 256,
        cached_statements: int = 512,
        indexes: dict[str, tuple[str, ...]] | None = None,
        checked: bool = False,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.processor = XQueryProcessor(
            store=store,
            default_doc=default_doc,
            serialize_step=serialize_step,
            disabled_rules=disabled_rules,
            checked=checked,
        )
        self.workers = workers
        self.cache = CompiledQueryCache(cache_capacity)
        self._indexes = indexes
        self._cached_statements = cached_statements
        self._pool: BackendPool | None = None
        self._pool_version = -1
        self._pool_lock = threading.Lock()
        # the front end shares mutable rewrite-engine state (the
        # fresh-name counter), so cold compiles are single-flight
        self._compile_lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._merge_lock = threading.Lock()
        self._closed = False

    # -- documents -----------------------------------------------------

    @property
    def store(self) -> DocumentStore:
        return self.processor.store

    def load(self, xml_text: str, uri: str) -> None:
        """Load a document and invalidate: stale cache entries are
        dropped and the backend pool is retired (in-flight queries
        drain against the old snapshot)."""
        self.processor.load(xml_text, uri)
        self.cache.invalidate(store_version=self.store.version)
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._pool_version = -1
        if pool is not None:
            pool.retire()

    # -- compilation ---------------------------------------------------

    def _cache_key(self, query: str) -> CacheKey:
        return CacheKey(
            query=query,
            default_doc=self.processor.default_doc,
            serialize_step=self.processor.serialize_step,
            disabled_rules=self.processor.disabled_rules,
            store_version=self.store.version,
        )

    def compile(self, query: str) -> CompiledQuery:
        """The compiled artifact for ``query`` — from cache when
        possible, compiled (and cached) otherwise."""
        key = self._cache_key(query)
        compiled = self.cache.get(key)
        if compiled is not None:
            return compiled
        with self._compile_lock:
            # single-flight: a racing thread may have compiled the same
            # key while this one waited for the lock
            compiled = self.cache.peek(key)
            if compiled is not None:
                return compiled
            compiled = self.processor.compile(query)
            # materialize the lazy SQL artifacts now: cached entries
            # must be immutable so any thread can execute them
            _ = (compiled.stacked_sql, compiled.joingraph_sql)
            self.cache.put(key, compiled)
        return compiled

    # -- execution -----------------------------------------------------

    def _lease_pool(self) -> BackendPool:
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("query service is closed")
            if self._pool is None or self._pool_version != self.store.version:
                if self._pool is not None:
                    self._pool.retire()
                self._pool = BackendPool(
                    self.store.table,
                    self._indexes,
                    cached_statements=self._cached_statements,
                )
                self._pool_version = self.store.version
            return self._pool.lease()

    def execute(
        self, query: str | CompiledQuery, engine: Engine = "joingraph-sql"
    ) -> list[Any]:
        """Evaluate a query on the caller's thread; returns the item
        sequence (same contract as :meth:`XQueryProcessor.execute`)."""
        start = time.perf_counter_ns()
        compiled = (
            query if isinstance(query, CompiledQuery) else self.compile(query)
        )
        if engine == "interpreter":
            items = run_plan(compiled.stacked_plan)
        elif engine == "isolated-interpreter":
            items = run_plan(compiled.isolated_plan)
        elif engine in ("stacked-sql", "joingraph-sql"):
            sql = (
                compiled.stacked_sql
                if engine == "stacked-sql"
                else compiled.joingraph_sql
            )
            pool = self._lease_pool()
            try:
                items = pool.backend().run(sql)
            finally:
                pool.release()
        else:
            raise ValueError(f"unknown engine {engine!r}")
        metrics = get_metrics()
        metrics.count("service.queries")
        metrics.count(f"service.queries.{engine}")
        metrics.observe("service.query_ns", time.perf_counter_ns() - start)
        return items

    def serialize(self, items: Sequence[Any]) -> str:
        """Serialize a node-sequence result back to XML text."""
        return self.processor.serialize(items)

    def run(self, query: str | CompiledQuery, engine: Engine = "joingraph-sql") -> str:
        """Execute and serialize in one step."""
        return self.serialize(self.execute(query, engine=engine))

    # -- concurrent serving --------------------------------------------

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._closed:
                raise RuntimeError("query service is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-query",
                )
            return self._executor

    def _task(
        self,
        registry: MetricsRegistry,
        query: str | CompiledQuery,
        engine: Engine,
    ) -> list[Any]:
        # record into a private registry, then merge into the
        # submitting thread's registry under a lock: counters stay
        # exact even under contention, and metrics_scope on the caller
        # side sees everything its submissions caused
        local = MetricsRegistry()
        previous = set_metrics(local)
        try:
            return self.execute(query, engine=engine)
        finally:
            set_metrics(previous)
            with self._merge_lock:
                registry.merge(local)

    def submit(
        self, query: str | CompiledQuery, engine: Engine = "joingraph-sql"
    ) -> "Future[list[Any]]":
        """Schedule one query on the worker pool; returns its future."""
        executor = self._ensure_executor()
        return executor.submit(self._task, get_metrics(), query, engine)

    def run_many(
        self,
        queries: Iterable[str | CompiledQuery],
        engine: Engine = "joingraph-sql",
    ) -> list[list[Any]]:
        """Execute a batch concurrently; results in submission order."""
        futures = [self.submit(query, engine=engine) for query in queries]
        return [future.result() for future in futures]

    # -- lifecycle -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """A JSON-ready snapshot of the service's moving parts."""
        with self._pool_lock:
            pool = self._pool
        return {
            "workers": self.workers,
            "store_version": self.store.version,
            "cache": self.cache.stats(),
            "pool_connections": pool.connection_count if pool else 0,
        }

    def close(self) -> None:
        """Drain the worker pool and close every backend connection."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=True)
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.retire()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
