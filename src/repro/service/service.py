"""The query service: compile-once, execute-many, N workers.

:class:`QueryService` is the production-oriented front door over
:class:`repro.pipeline.XQueryProcessor`.  It composes three pieces:

- the :class:`CompiledQueryCache` (``cache.py``) so repeated query
  texts skip the whole front end — parse, normalize, loop-lift,
  isolate, codegen — and go straight to the stored join-graph SQL;
- the :class:`BackendPool` (``pool.py``) so concurrent queries execute
  against per-thread connections of one shared in-memory SQLite
  instance instead of queueing behind a single connection;
- a :class:`~concurrent.futures.ThreadPoolExecutor` behind
  :meth:`submit` / :meth:`run_many` for callers that want the service
  to own the concurrency.

Metrics (``service.*``, catalog in ``docs/observability.md``): query
counters per engine, a per-query latency histogram
(``service.query_ns``), cache hit/miss/eviction counters and pool
connection gauges.  Worker threads record into private registries that
are merged into the submitting thread's registry when each task
finishes, so ``metrics_scope`` works transparently across the pool.

Flight recording (``repro.obs.flight``, on by default): every query
leaves one structured :class:`~repro.obs.flight.FlightRecord` in the
service's bounded ring — cache outcome, retries, degradations, breaker
state, per-phase nanoseconds, deadline consumption — and slow,
degraded or surfaced queries are promoted to a slow-query log with
trace spans and ``EXPLAIN`` output attached.

Invalidation: :meth:`load` bumps the store's content version, drops
cache entries compiled against older versions and retires the current
backend pool — in-flight queries drain against the old snapshot, new
queries see the new one.

Resilience (see ``docs/robustness.md``): every SQL-engine execution
runs under a per-query deadline with true statement cancellation, a
bounded exponential-backoff retry loop for transient backend errors, a
circuit breaker over repeated failures, and an admission-control cap
that sheds load fast.  When the pooled/cached path cannot answer, the
service *degrades gracefully* — a fresh uncached compile + fresh
single-use backend — rather than ever serving a stale or partial
result.  All recovery actions are observable (``service.retry.*``,
``service.deadline.*``, ``service.breaker.*``, ``service.degrade.*``)
and fault-injection-tested by :mod:`repro.faults`.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Iterable, Sequence

from repro.algebra.interpreter import run_plan
from repro.analysis.containment import (
    TreePattern,
    canonicalize,
    extract_pattern,
    filter_pattern,
    pattern_key,
)
from repro.errors import (
    BackendUnavailable,
    CircuitOpenError,
    DeadlineExceeded,
    PoolRetiredError,
    ServiceError,
)
from repro.faults.injector import is_injected, suppressed
from repro.infoset.encoding import DocumentStore
from repro.obs import MetricsRegistry, get_metrics, get_tracer, set_metrics
from repro.obs.flight import (
    FlightContext,
    FlightRecorder,
    adopt_context,
    current_context,
    flight_capture,
    span_tree,
)
from repro.obs.tracer import Span
from repro.pipeline import CompiledQuery, Engine, XQueryProcessor
from repro.result import Result, Serialized
from repro.service.cache import CacheKey, CacheStats, CompiledQueryCache, TierStats
from repro.service.pool import BackendPool
from repro.service.views import ViewManager
from repro.service.resilience import (
    AdmissionGate,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    cancellation,
    deadline_scope,
    is_connection_death,
    is_transient,
)
from repro.sql.backend import SQLiteBackend
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_xquery
from repro.xquery.text import normalize_query_text

__all__ = ["QueryService", "canonical_alias_key", "canonical_pattern_of"]

#: reserved prefix marking canonical-pattern alias keys in the cache —
#: contains NUL, which no parseable query text can
_CANONICAL_NS = "\x00canonical\x00"


def canonical_pattern_of(
    query: str,
    default_doc: str | None,
    collections,
) -> TreePattern | None:
    """The canonical tree pattern of a query text, or ``None``.

    Parses and normalizes ``query`` and canonicalizes its extracted
    pattern.  ``None`` for queries outside the pattern fragment (or
    that fail to parse: the compile path will surface the real error).
    One parse serves both the canonical-alias cache key and the view
    tier's containment lookup.
    """
    try:
        core = normalize(
            parse_xquery(query),
            default_doc=default_doc,
            collections=collections,
        )
        pattern = extract_pattern(core)
    except ServiceError:  # pragma: no cover - not raised by the front end
        raise
    except Exception:
        return None
    if pattern is None:
        return None
    return canonicalize(pattern)


def canonical_alias_key(
    query: str,
    key: CacheKey,
    default_doc: str | None,
    collections,
) -> CacheKey | None:
    """The canonical-pattern alias of a cache key, or ``None``.

    Rewrites ``key`` so its ``query`` field carries the canonical
    pattern's stable serialization (under the reserved namespace
    prefix) instead of the surface text.  Two queries with the same
    alias key are semantically equivalent — provably, via the
    canonicalizer's self-homomorphism certificates — so sharing one
    compiled plan between them is sound.
    """
    pattern = canonical_pattern_of(query, default_doc, collections)
    if pattern is None:
        return None
    return key._replace(query=_CANONICAL_NS + pattern_key(pattern))


class QueryService:
    """A thread-safe serving layer over one document store.

    Parameters
    ----------
    store, default_doc, serialize_step, disabled_rules:
        Forwarded to the underlying :class:`XQueryProcessor`.
    workers:
        Thread-pool width for :meth:`submit` / :meth:`run_many`.
        Direct :meth:`execute` calls run on the caller's thread (and
        are themselves safe to issue from many threads).
    cache_capacity:
        Compiled-plan LRU size.
    cached_statements:
        Per-connection prepared-statement cache size for the backend
        pool.
    indexes:
        Index set for the SQL backend (``None`` = the paper's Table 6).
    checked:
        Run the plan sanitizer during (cold) compiles, as on
        :class:`XQueryProcessor`.
    deadline_s:
        Default per-query time budget (seconds); must be positive
        (non-positive budgets raise ``ValueError`` at call time) and
        ``None`` disables deadlines.  Overridable per call via
        ``deadline_s=``.
    retry:
        The :class:`RetryPolicy` for transient backend errors
        (default: 2 retries, 5 ms exponential backoff).
    queue_cap:
        Admission-control cap on concurrently admitted queries;
        ``None`` (the default) disables the cap.  When set, calls
        beyond the cap fail fast with
        :class:`repro.errors.ServiceOverloaded`.
    breaker_threshold, breaker_reset_s:
        Circuit breaker: trip open after this many *consecutive*
        backend failures, probe again after this many seconds.
    degrade:
        Graceful degradation: when the pooled/cached path cannot
        answer (retries exhausted, breaker open), fall back to a fresh
        uncached compile + a fresh single-use backend instead of
        failing.  Results are never stale or partial either way; with
        ``degrade=False`` the failure surfaces as a typed error.
    flight, flight_recorder, slow_threshold_s:
        The query flight recorder (:mod:`repro.obs.flight`) — on by
        default, recording one :class:`FlightRecord` per query with a
        slow-query log promoting queries over ``slow_threshold_s``
        seconds (and every degraded/surfaced query) to a full capture.
        Pass ``flight=False`` to disable, or ``flight_recorder=`` to
        share/configure the recorder explicitly.
    views, view_budget_bytes, view_admit_after:
        The materialized-view tier (:mod:`repro.service.views`, see
        ``docs/caching.md``): queries hot for ``view_admit_after``
        executions get their result rows materialized (LRU within
        ``view_budget_bytes``), and later queries whose pattern is
        *strictly contained* in a view's are answered by re-filtering
        the view's rows instead of compiling.  On by default; forced
        off under ``serialize_step`` (items are no longer pre ranks).
    """

    def __init__(
        self,
        store: DocumentStore | None = None,
        default_doc: str | None = None,
        serialize_step: bool = False,
        disabled_rules: set[str] | None = None,
        *,
        workers: int = 4,
        cache_capacity: int = 256,
        cached_statements: int = 512,
        indexes: dict[str, tuple[str, ...]] | None = None,
        checked: bool = False,
        deadline_s: float | None = None,
        retry: RetryPolicy | None = None,
        queue_cap: int | None = None,
        breaker_threshold: int = 8,
        breaker_reset_s: float = 0.25,
        degrade: bool = True,
        flight: bool = True,
        flight_recorder: FlightRecorder | None = None,
        slow_threshold_s: float = 0.25,
        views: bool = True,
        view_budget_bytes: int = 4 << 20,
        view_admit_after: int = 3,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.processor = XQueryProcessor(
            store=store,
            default_doc=default_doc,
            serialize_step=serialize_step,
            disabled_rules=disabled_rules,
            checked=checked,
        )
        self.workers = workers
        self.cache = CompiledQueryCache(cache_capacity)
        self._indexes = indexes
        self._cached_statements = cached_statements
        self._pool: BackendPool | None = None
        self._pool_version = -1
        self._pool_lock = threading.Lock()
        # the front end shares mutable rewrite-engine state (the
        # fresh-name counter), so cold compiles are single-flight
        self._compile_lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._merge_lock = threading.Lock()
        self._closed = False
        self.deadline_s = deadline_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.degrade_enabled = degrade
        self._admission = AdmissionGate(queue_cap)
        self._breaker = CircuitBreaker(breaker_threshold, breaker_reset_s)
        # injected-fault disposition tally for the chaos accounting
        # gate: injected == retried + degraded + surfaced
        self._accounting_lock = threading.Lock()
        self._fault_accounting = {"retry": 0, "degrade": 0, "surface": 0}
        if flight_recorder is not None:
            self.flight: FlightRecorder | None = flight_recorder
        elif flight:
            self.flight = FlightRecorder(slow_threshold_s=slow_threshold_s)
        else:
            self.flight = None
        if views and not serialize_step:
            self.views: ViewManager | None = ViewManager(
                self._view_filter,
                budget_bytes=view_budget_bytes,
                admit_after=view_admit_after,
            )
        else:
            self.views = None

    # -- documents -----------------------------------------------------

    @property
    def store(self) -> DocumentStore:
        return self.processor.store

    def load(self, xml_text: str, uri: str) -> None:
        """Load a document and invalidate: stale cache entries are
        dropped and the backend pool is retired (in-flight queries
        drain against the old snapshot)."""
        self.processor.load(xml_text, uri)
        self.cache.invalidate(store_version=self.store.version)
        if self.views is not None:
            self.views.invalidate(store_version=self.store.version)
        if self.flight is not None:
            # percentiles must describe the corpus now being served,
            # not the pre-load one (see FlightRecorder.mark_epoch)
            self.flight.mark_epoch()
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._pool_version = -1
        if pool is not None:
            pool.retire()

    # -- compilation ---------------------------------------------------

    def _cache_key(self, query: str) -> CacheKey:
        return CacheKey(
            query=query,
            default_doc=self.processor.default_doc,
            serialize_step=self.processor.serialize_step,
            disabled_rules=self.processor.disabled_rules,
            store_version=self.store.version,
        )

    def _view_filter(
        self, pattern: TreePattern, rows: Sequence[int]
    ) -> list[int]:
        """Residual filter for the view tier: membership of local pre
        ranks in a pattern, via the containment oracle."""
        return filter_pattern(pattern, self.store.table, rows)

    def compile(self, query: str) -> CompiledQuery:
        """The compiled artifact for ``query`` — from cache when
        possible, compiled (and cached) otherwise.

        Three key tiers, cheapest first: (1) exact match on the
        lexically normalized text (comments stripped, whitespace
        collapsed — no parsing); (2) the canonical tree-pattern key,
        which lets *semantically equivalent* spellings (reordered
        predicates, explicit axes, redundant self steps) share one
        compiled plan — a canonical hit also back-fills the exact key
        so that spelling hits tier 1 from then on; (3) a cold compile,
        cached under both keys.  (The execution path adds a fourth,
        *view* tier between (2) and (3) — see :meth:`_resolve` — but
        ``compile`` always returns a compiled artifact.)
        """
        compiled, _ = self._resolve(query, allow_view=False)
        assert compiled is not None  # allow_view=False never view-answers
        return compiled

    def _resolve(
        self, query: str, allow_view: bool = True
    ) -> tuple[CompiledQuery | None, list[int] | None]:
        """Resolve a query text through the cache-tier ladder: lexical
        normalization → exact key → canonical-pattern key → **view**
        (strict-containment rewrite over materialized rows,
        :mod:`repro.service.views`) → cold compile.

        Returns ``(compiled, None)`` when the query must execute, or
        ``(None, rows)`` when a view answered it outright.
        """
        text = normalize_query_text(query)
        key = self._cache_key(text)
        flight = current_context()
        compiled = self.cache.get(key)
        if compiled is not None:
            if flight is not None:
                flight.note_cache("exact")
            return compiled, None
        with self._compile_lock:
            # single-flight: a racing thread may have compiled the same
            # key while this one waited for the lock
            compiled = self.cache.peek(key)
            if compiled is not None:
                if flight is not None:
                    flight.note_cache("single-flight-wait")
                return compiled, None
            pattern = canonical_pattern_of(
                text,
                self.processor.default_doc,
                self.processor.collections,
            )
            canonical = (
                key._replace(query=_CANONICAL_NS + pattern_key(pattern))
                if pattern is not None
                else None
            )
            if canonical is not None:
                compiled = self.cache.get_canonical(canonical)
                if compiled is not None:
                    self.cache.put(key, compiled)
                    if flight is not None:
                        flight.note_cache("canonical")
                    return compiled, None
            if allow_view and self.views is not None and pattern is not None:
                rows = self.views.answer(pattern, self.store.version)
                if rows is not None:
                    if flight is not None:
                        flight.note_cache("view")
                    return None, rows
            rewrite_start = time.perf_counter_ns()
            compiled = self.processor.compile(text)
            # materialize the lazy SQL artifacts now: cached entries
            # must be immutable so any thread can execute them
            _ = (compiled.stacked_sql, compiled.joingraph_sql)
            if flight is not None:
                flight.note_cache("miss")
                flight.add_phase(
                    "rewrite", time.perf_counter_ns() - rewrite_start
                )
            self.cache.put(key, compiled)
            if canonical is not None:
                self.cache.put(canonical, compiled)
        return compiled, None

    # -- execution -----------------------------------------------------

    def _lease_pool(self) -> BackendPool:
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("query service is closed")
            pool = self._pool
            if pool is not None and (
                self._pool_version != self.store.version or pool.retired
            ):
                # stale or retired (a mid-flight retirement race):
                # detach it first so a construction failure below never
                # leaves the service pointing at a dead snapshot
                self._pool = None
                pool.retire()
                pool = None
            if pool is None:
                pool = BackendPool(
                    self.store.table,
                    self._indexes,
                    cached_statements=self._cached_statements,
                )
                self._pool = pool
                self._pool_version = self.store.version
            return pool.lease()

    def execute(
        self,
        query: str | CompiledQuery,
        engine: Engine | str = Engine.JOINGRAPH_SQL,
        *,
        deadline_s: float | None = None,
    ) -> Result:
        """Evaluate a query on the caller's thread; returns a
        :class:`repro.Result` (same contract as
        :meth:`XQueryProcessor.execute`).

        ``deadline_s`` overrides the service default for this call; it
        must be positive (``ValueError`` otherwise — pass ``None`` to
        use the service default).  Raises a typed
        :class:`repro.errors.ServiceError` subclass on overload,
        deadline, or backend unavailability — never a partial or stale
        result.
        """
        with self._admission.slot():
            return self._execute_admitted(query, engine, deadline_s)

    def _execute_admitted(
        self,
        query: str | CompiledQuery,
        engine: Engine | str,
        deadline_s: float | None = None,
    ) -> Result:
        engine = Engine.of(engine)
        start = time.perf_counter_ns()
        budget = self.deadline_s if deadline_s is None else deadline_s
        # `is not None`, not truthiness: a caller passing 0 gets the
        # ValueError from Deadline.after, not a silently unbounded query
        deadline = Deadline.after(budget) if budget is not None else None
        metrics = get_metrics()
        recorder = self.flight
        # a recording service owns a fresh flight context (the serving
        # boundary); a non-recording one (a shard inside ShardedService)
        # annotates the caller's context instead
        with flight_capture(own=recorder is not None) as flight:
            compiled: CompiledQuery | None = None
            view_rows: list[int] | None = None
            qspan = get_tracer().span("service.query", engine=engine.value)
            try:
                with qspan, deadline_scope(deadline):
                    if isinstance(query, CompiledQuery):
                        compiled = query
                        if flight is not None:
                            flight.note_cache("precompiled")
                    else:
                        compile_start = time.perf_counter_ns()
                        compiled, view_rows = self._resolve(query)
                        if flight is not None:
                            flight.add_phase(
                                "compile",
                                time.perf_counter_ns() - compile_start,
                            )
                    if deadline is not None:
                        deadline.check()
                    if view_rows is not None:
                        # answered from a materialized view: the
                        # residual filter already ran inside _resolve,
                        # so there is no engine execution to time
                        items = view_rows
                        if flight is not None:
                            flight.note_rows(len(items))
                    else:
                        assert compiled is not None
                        sql_start = time.perf_counter_ns()
                        if engine is Engine.INTERPRETER:
                            items = run_plan(compiled.stacked_plan)
                        elif engine is Engine.ISOLATED_INTERPRETER:
                            items = run_plan(compiled.isolated_plan)
                        else:
                            items = self._run_pooled(
                                compiled, engine, deadline
                            )
                        if flight is not None:
                            flight.add_phase(
                                "sql", time.perf_counter_ns() - sql_start
                            )
                            flight.note_rows(len(items))
                    if deadline is not None:
                        # interpreters cannot be cancelled mid-run; a
                        # late result is still refused so the deadline
                        # contract holds across engines
                        deadline.check()
            except ServiceError as error:
                metrics.count("service.queries.failed")
                metrics.count(f"service.errors.{type(error).__name__}")
                if recorder is not None and flight is not None:
                    self._flight_record(
                        recorder, flight, query, compiled, engine,
                        start, budget, deadline, qspan, error=error,
                    )
                raise
            metrics.count("service.queries")
            metrics.count(f"service.queries.{engine.value}")
            if (
                self.views is not None
                and compiled is not None
                and isinstance(query, str)
            ):
                # admission bookkeeping: normally-executed fragment
                # queries heat their pattern; hot ones materialize
                self.views.observe(
                    compiled.source, compiled.core, self.store.version, items
                )
            elapsed = time.perf_counter_ns() - start
            metrics.observe("service.query_ns", elapsed)
            if recorder is not None and flight is not None:
                self._flight_record(
                    recorder, flight, query, compiled, engine,
                    start, budget, deadline, qspan,
                )
            return Result(
                items,
                engine=engine,
                timings={"execute_ns": elapsed},
                shards=1,
                serializer=self.serialize,
            )

    def _flight_record(
        self,
        recorder: FlightRecorder,
        flight: FlightContext,
        query: str | CompiledQuery,
        compiled: CompiledQuery | None,
        engine: Engine,
        start_ns: int,
        budget: float | None,
        deadline: Deadline | None,
        qspan: Any,
        error: BaseException | None = None,
    ) -> None:
        """Append this query's flight record at the serving boundary."""
        elapsed = time.perf_counter_ns() - start_ns
        if compiled is not None:
            text = compiled.source
        else:
            text = query if isinstance(query, str) else query.source
        consumed: float | None = None
        if deadline is not None and budget:
            consumed = min(1.0, deadline.elapsed() / budget)
        trace = [span_tree(qspan)] if isinstance(qspan, Span) else []

        def detail() -> dict[str, Any]:
            diagnostics: dict[str, Any] = {"trace": trace}
            if compiled is not None:
                diagnostics["explain"] = self._flight_explain(
                    compiled, engine
                )
            return diagnostics

        recorder.record(
            query_text=text,
            engine=engine.value,
            status="ok" if error is None else f"error:{type(error).__name__}",
            context=flight,
            elapsed_ns=elapsed,
            shards=1,
            breaker=self._breaker.state,
            deadline_budget_s=budget,
            deadline_consumed=consumed,
            detail=detail,
        )

    def _flight_explain(
        self, compiled: CompiledQuery, engine: Engine
    ) -> list[str]:
        """EXPLAIN QUERY PLAN rows for a promoted slow capture (the
        joingraph SQL stands in for the interpreter engines).  Fault
        injection is suppressed: diagnostics are not chaos targets."""
        sql = (
            compiled.stacked_sql
            if engine == "stacked-sql"
            else compiled.joingraph_sql
        )
        with suppressed():
            pool = self._lease_pool()
            try:
                return pool.backend().explain(sql)
            finally:
                pool.release()

    def _run_pooled(
        self,
        compiled: CompiledQuery,
        engine: Engine,
        deadline: Deadline | None,
    ) -> list[Any]:
        """The pooled SQL path under the full resilience stack: breaker
        -> lease -> cancellable execution, retrying transient failures
        with backoff and degrading to :meth:`_degraded` as last resort."""
        sql = (
            compiled.stacked_sql
            if engine == "stacked-sql"
            else compiled.joingraph_sql
        )
        metrics = get_metrics()
        tracer = get_tracer()
        attempt = 0
        try:
            while True:
                if not self._breaker.allow():
                    if self.degrade_enabled:
                        metrics.count("service.degrade.breaker_fastpath")
                        return self._degraded(compiled, engine, deadline)
                    raise CircuitOpenError(
                        "backend circuit breaker is open and degradation "
                        "is disabled"
                    )
                pool: BackendPool | None = None
                try:
                    pool = self._lease_pool()
                    try:
                        backend = pool.backend()
                        with cancellation(backend.connection, deadline):
                            items = backend.run(sql)
                    finally:
                        pool.release()
                    self._breaker.record_success()
                    return items
                except DeadlineExceeded as error:
                    # the budget is gone: neither a retry nor the
                    # degraded path could answer in time, so the miss
                    # surfaces
                    metrics.count("service.deadline.exceeded")
                    self._account(error, "surface")
                    raise
                except (sqlite3.Error, PoolRetiredError) as error:
                    if not is_transient(error):
                        raise
                    self._breaker.record_failure()
                    if is_connection_death(error) and pool is not None:
                        # this thread's connection is gone; a retry only
                        # helps on a fresh one
                        pool.discard_backend()
                    if self.retry.allows(attempt, deadline):
                        self._account(error, "retry")
                        metrics.count("service.retry.attempts")
                        flight = current_context()
                        if flight is not None:
                            flight.note_retry()
                        with tracer.span(
                            "service.retry", attempt=attempt, error=str(error)
                        ):
                            metrics.observe(
                                "service.retry.backoff_s",
                                self.retry.pause(attempt, deadline),
                            )
                        attempt += 1
                        continue
                    metrics.count("service.retry.exhausted")
                    if self.degrade_enabled:
                        try:
                            items = self._degraded(compiled, engine, deadline)
                        except DeadlineExceeded:
                            metrics.count("service.deadline.exceeded")
                            self._account(error, "surface")
                            raise
                        except Exception as fallback_error:
                            self._account(error, "surface")
                            raise BackendUnavailable(
                                "backend kept failing and the degraded "
                                "path failed too"
                            ) from fallback_error
                        metrics.count("service.degrade.fallbacks")
                        self._account(error, "degrade")
                        return items
                    self._account(error, "surface")
                    raise BackendUnavailable(
                        f"backend failure persisted through "
                        f"{self.retry.max_retries} retries: {error}"
                    ) from error
        finally:
            # a half-open probe admitted by allow() that exited without
            # reporting a verdict (deadline miss, non-transient error)
            # must free the probe slot or the breaker wedges; no-op for
            # every other path
            self._breaker.release_probe()

    def _degraded(
        self,
        compiled: CompiledQuery,
        engine: Engine,
        deadline: Deadline | None,
    ) -> list[Any]:
        """Graceful degradation: a *fresh uncached* compile and a fresh
        single-use backend, bypassing the compiled-plan cache, the
        shared pool, and any state a misbehaving backend could have
        poisoned.  Slower, but the answer is computed from scratch
        against the current store — correct or a typed error, never
        stale.  Fault injection is suppressed here: the fallback of
        last resort is not itself chaos-tested mid-recovery."""
        with suppressed(), get_tracer().span("service.degrade", engine=engine):
            if deadline is not None:
                deadline.check()
            get_metrics().count("service.degrade.queries")
            flight = current_context()
            if flight is not None:
                flight.note_degraded()
            with self._compile_lock:
                fresh = self.processor.compile(compiled.source)
            sql = (
                fresh.stacked_sql
                if engine == "stacked-sql"
                else fresh.joingraph_sql
            )
            backend = SQLiteBackend(self.store.table, self._indexes)
            try:
                with cancellation(backend.connection, deadline):
                    return backend.run(sql)
            finally:
                backend.close()

    def _account(self, error: BaseException, disposition: str) -> None:
        """Tally how an *injected* fault was handled (organic failures
        are recovered identically but stay out of the chaos ledger)."""
        if not is_injected(error):
            return
        with self._accounting_lock:
            self._fault_accounting[disposition] += 1
        get_metrics().count(f"service.faults.handled.{disposition}")

    @property
    def fault_accounting(self) -> dict[str, int]:
        """Injected-fault dispositions so far (``retry`` / ``degrade``
        / ``surface``) — the service side of the chaos accounting gate."""
        with self._accounting_lock:
            return dict(self._fault_accounting)

    def serialize(self, items: Sequence[Any]) -> str:
        """Serialize a node-sequence result back to XML text."""
        return self.processor.serialize(items)

    def run(
        self,
        query: str | CompiledQuery,
        engine: Engine | str = Engine.JOINGRAPH_SQL,
    ) -> Serialized:
        """Execute and serialize in one step."""
        result = self.execute(query, engine=engine)
        return Serialized(self.serialize(result), result)

    # -- concurrent serving --------------------------------------------

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._closed:
                raise RuntimeError("query service is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-query",
                )
            return self._executor

    def _task(
        self,
        registry: MetricsRegistry,
        context: FlightContext | None,
        query: str | CompiledQuery,
        engine: Engine | str,
        deadline_s: float | None,
    ) -> Result:
        # record into a private registry, then merge into the
        # submitting thread's registry under a lock: counters stay
        # exact even under contention, and metrics_scope on the caller
        # side sees everything its submissions caused; the submitting
        # query's flight context (if any) is adopted so shard-level
        # retries/degradations land on the top-level record
        local = MetricsRegistry()
        previous = set_metrics(local)
        try:
            with adopt_context(context):
                return self._execute_admitted(query, engine, deadline_s)
        finally:
            # the admission slot is NOT released here: submit() frees
            # it from the future's done-callback, which also covers
            # futures cancelled before this ever runs
            set_metrics(previous)
            with self._merge_lock:
                registry.merge(local)

    def submit(
        self,
        query: str | CompiledQuery,
        engine: Engine | str = Engine.JOINGRAPH_SQL,
        *,
        deadline_s: float | None = None,
    ) -> "Future[Result]":
        """Schedule one query on the worker pool; returns its future.

        Admission control applies at submission time: with a
        ``queue_cap`` configured, a submission beyond the cap raises
        :class:`repro.errors.ServiceOverloaded` immediately instead of
        queueing work the caller would only time out on.  The slot is
        released when the future reaches *any* terminal state —
        including cancellation while still queued.
        """
        executor = self._ensure_executor()
        self._admission.enter()
        try:
            future = executor.submit(
                self._task,
                get_metrics(),
                current_context(),
                query,
                engine,
                deadline_s,
            )
        except BaseException:
            self._admission.exit()
            raise
        # release from the done-callback, not inside _task: a future
        # cancelled before it ever runs (or dropped by the executor)
        # still fires its callbacks, so the slot cannot leak
        future.add_done_callback(lambda _finished: self._admission.exit())
        return future

    def run_many(
        self,
        queries: Iterable[str | CompiledQuery],
        engine: Engine | str = Engine.JOINGRAPH_SQL,
        *,
        deadline_s: float | None = None,
    ) -> list[Result]:
        """Execute a batch concurrently; results in submission order.

        Submission is all-or-nothing: when a mid-batch :meth:`submit`
        fails (e.g. :class:`repro.errors.ServiceOverloaded`), the
        already-submitted futures are cancelled — or drained to
        completion if they are past cancelling — before the error
        propagates, so no query from the batch keeps running
        unobserved.
        """
        futures: list[Future[Result]] = []
        try:
            for query in queries:
                futures.append(
                    self.submit(query, engine=engine, deadline_s=deadline_s)
                )
        except BaseException:
            for future in futures:
                future.cancel()
            for future in futures:
                if not future.cancelled():
                    future.exception()  # drain; the submit error wins
            raise
        return [future.result() for future in futures]

    # -- lifecycle -----------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """The typed, tiered cache statistics (exact / canonical /
        view) — the stable API; ``stats()["cache"]`` serves its
        :meth:`~repro.service.cache.CacheStats.to_dict` form."""
        base = self.cache.stats()
        view = (
            self.views.tier_stats() if self.views is not None else TierStats()
        )
        return CacheStats(
            capacity=base["capacity"],
            size=base["size"],
            exact=TierStats(
                hits=base["hits"],
                misses=base["misses"],
                evictions=base["evictions"],
            ),
            canonical=TierStats(
                hits=base["canonical_hits"],
                misses=max(0, base["misses"] - base["canonical_hits"]),
            ),
            view=view,
        )

    def stats(self) -> dict[str, Any]:
        """A JSON-ready snapshot of the service's moving parts."""
        with self._pool_lock:
            pool = self._pool
        return {
            "workers": self.workers,
            "store_version": self.store.version,
            "cache": self.cache_stats().to_dict(),
            "views": self.views.stats() if self.views is not None else None,
            "pool_connections": pool.connection_count if pool else 0,
            "flight": self.flight.stats() if self.flight else None,
            "resilience": {
                "deadline_s": self.deadline_s,
                "max_retries": self.retry.max_retries,
                "queue_cap": self._admission.capacity,
                "inflight": self._admission.inflight,
                "breaker": self._breaker.state,
                "degrade": self.degrade_enabled,
                "fault_accounting": self.fault_accounting,
            },
        }

    def close(self) -> None:
        """Drain the worker pool and close every backend connection."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=True)
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.retire()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
