"""Scatter-gather execution over a sharded document collection.

:class:`ShardedService` is the serving layer over a
:class:`repro.store.Collection`: one compiled plan fans out across N
per-shard backends in parallel, per-shard results translate to global
``pre`` ranks and merge back in stable document order (doc rank ⊕ pre).

Why this works
--------------
The join-graph SQL compiled for a ``collection()`` query embeds the
member URIs as a disjunctive literal predicate on the ``doc`` table's
DOC rows — the text references no shard-specific state, so the *same*
statement runs against every shard's schema unchanged; documents a
shard doesn't host simply match nothing.  A query is **scatter-safe**
when

* the normalized Core expression has exactly one *effective* document
  source — one ``collection(...)`` reference (scatter across its
  shards) or ``doc()`` references to a single URI (route to its one
  shard).  Effective means after accounting for variables: a
  ``let``-bound variable denotes its whole binding sequence, so every
  reference re-enters each source inside the binding (two references
  to a ``let``-bound collection are a cross-document self-join); a
  ``for``-bound variable denotes one item of its sequence, so its
  references stay inside the single document that item lives in — and
* the top-level Core expression is ``fs:ddo(...)``, i.e. the result is
  a document-ordered node sequence.

Then every result item belongs to the document (and hence shard) it
was computed on, per-shard sequences are sorted by shard-local ``pre``,
translation to global ranks is monotonic per shard, and a k-way merge
reproduces the serial answer item for item.  Everything else — joins
across two sources, FLWOR-ordered results, boolean results, the
``serialize_step`` wrapper — falls back to *serial* execution against
the lazily materialized combined store, so differential agreement with
a single-backend processor holds universally.

Resilience composes with PR 4's machinery: each shard runs under its
own :class:`QueryService` (deadline spans the fan-out via remaining
budget, retries/breaker/degrade apply per shard), and when a shard
still fails with degradation enabled the whole query falls back to the
serial path — partial results are never returned.
"""

from __future__ import annotations

import heapq
import os
import sqlite3
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import fields, is_dataclass
from typing import Any, Iterable, Sequence

from repro.analysis.containment import (
    TreePattern,
    canonicalize,
    extract_pattern,
    pattern_key,
    pattern_selects,
)
from repro.engines import Engine
from repro.errors import (
    BackendUnavailable,
    DeadlineExceeded,
    ServiceError,
    WorkerCrash,
)
from repro.faults.injector import is_injected
from repro.infoset.encoding import DocumentStore
from repro.obs import get_metrics, get_tracer
from repro.obs.flight import (
    FlightContext,
    FlightRecorder,
    adopt_context,
    current_context,
    flight_capture,
    span_tree,
)
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.obs.tracer import Span
from repro.pipeline import CompiledQuery, XQueryProcessor
from repro.result import Result, Serialized
from repro.service.cache import CacheKey, CacheStats, CompiledQueryCache, TierStats
from repro.service.procpool import ProcessShardExecutor, ShippedPlan
from repro.service.resilience import Deadline, RetryPolicy, is_transient
from repro.service.service import (
    _CANONICAL_NS,
    QueryService,
    canonical_pattern_of,
)
from repro.service.views import ViewManager
from repro.store import Collection
from repro.xquery.core import (
    CoreCollection,
    CoreDdo,
    CoreDoc,
    CoreExpr,
    CoreFor,
    CoreLet,
    CoreVar,
)
from repro.xquery.text import normalize_query_text

__all__ = ["ShardedService", "scatter_uris"]


def _remaining(deadline: Deadline | None) -> float | None:
    """The budget to hand a downstream call.  Raises the typed
    :class:`DeadlineExceeded` when the fan-out has already spent the
    deadline — a non-positive budget must never reach a service entry
    point (it would be rejected as a :class:`ValueError`).  The floor
    covers the instant between the check and the reading."""
    if deadline is None:
        return None
    deadline.check()
    return max(deadline.remaining(), 1e-9)


class _FreeVariable(Exception):
    """A Core variable with no visible binding — unanalyzable."""


_Source = CoreDoc | CoreCollection
_Env = dict[str, tuple["_Source", ...]]


def _effective_sources(core: CoreExpr, env: _Env) -> list[_Source]:
    """One entry per *effective* document-source reference in a Core
    tree — syntactic source nodes plus, for every variable reference,
    the sources of its binding.

    Counting AST nodes alone is unsound: ``let $c := collection()``
    has one ``CoreCollection`` node, but each ``$c`` reference
    re-evaluates the whole collection, so ``$c//a[$c//b]`` is a
    cross-document self-join.  ``let``-bound references therefore
    contribute their binding's sources per occurrence.  ``for``-bound
    variables bind one *item* at a time — every reference stays inside
    the single document that item lives in — so they contribute
    nothing beyond the iteration sequence itself (counted once at the
    ``CoreFor``); this keeps desugared predicates (``e[p]`` becomes a
    ``for`` whose variable appears in both branch and result)
    scatterable.
    """
    if isinstance(core, (CoreDoc, CoreCollection)):
        return [core]
    if isinstance(core, CoreVar):
        try:
            return list(env[core.name])
        except KeyError:
            raise _FreeVariable(core.name) from None
    if isinstance(core, CoreFor):
        out = _effective_sources(core.sequence, env)
        out.extend(_effective_sources(core.ret, {**env, core.var: ()}))
        return out
    if isinstance(core, CoreLet):
        bound = tuple(_effective_sources(core.value, env))
        # the binding's sources count only where the variable is
        # referenced: an unused binding contributes no result items
        return _effective_sources(core.ret, {**env, core.var: bound})
    out: list[_Source] = []
    if is_dataclass(core):
        for field in fields(core):
            child = getattr(core, field.name)
            if isinstance(child, CoreExpr):
                out.extend(_effective_sources(child, env))
    return out


def scatter_uris(core: CoreExpr) -> tuple[str, ...] | None:
    """The URI set a compiled query is scatter-safe over, or ``None``.

    ``None`` means the query must run serially; a tuple (possibly
    empty) means every result item lives in one of these documents and
    per-shard execution + ordered merge is exact.

    Two classifiers run in sequence.  The structural one requires a
    top-level ``fs:ddo`` plus a single effective source.  Queries whose
    top level is the desugared-predicate ``for`` shape (``//a[b]`` and
    friends) fail that test even though their results are perfectly
    merge-safe; for those, the containment analyzer's tree-pattern
    extraction takes over — a query *in the pattern fragment* is by
    construction single-source with a document-ordered duplicate-free
    node result, which is exactly the scatter-safety contract.  Pattern
    classifications are counted under
    ``service.scatter.pattern_classified``.
    """
    uris = _structural_scatter_uris(core)
    if uris is not None:
        return uris
    pattern = extract_pattern(core)
    if pattern is None:
        return None
    canonical = canonicalize(pattern)
    get_metrics().count("service.scatter.pattern_classified")
    flight = current_context()
    if flight is not None:
        flight.note_pattern_classified()
    if canonical.root is None:
        # statically empty: scatter over nothing (the merge of zero
        # shards is the correct empty answer)
        return ()
    return canonical.uris


def _structural_scatter_uris(core: CoreExpr) -> tuple[str, ...] | None:
    """The pre-analyzer classifier: top-level ddo + one effective
    document source (see the module docstring)."""
    if not isinstance(core, CoreDdo):
        return None
    try:
        sources = _effective_sources(core, {})
    except _FreeVariable:
        return None
    if not sources:
        return None
    if all(isinstance(s, CoreDoc) for s in sources):
        uris = {s.uri for s in sources}
        # several doc() references are routable only when they all
        # name the same document (the whole query then lives in one
        # shard); distinct URIs may join across shards
        return tuple(uris) if len(uris) == 1 else None
    if len(sources) == 1 and isinstance(sources[0], CoreCollection):
        return sources[0].uris
    return None


class ShardedService:
    """Scatter-gather query service over a sharded collection.

    Parameters
    ----------
    collection:
        The :class:`repro.store.Collection` to serve.
    default_doc, serialize_step, disabled_rules, checked:
        Front-end configuration, as on :class:`XQueryProcessor`.  Note
        ``serialize_step`` forces serial execution (its result shape
        is not merge-safe across shards).
    workers_per_shard:
        Worker threads per shard service; the scatter fan-out runs one
        in-flight plan per shard, so 1 is the natural width.
    parallel_fanout:
        ``True`` dispatches shard plans onto the shard services' worker
        threads concurrently; ``False`` runs them sequentially in the
        calling thread (still through each shard's full resilience
        stack).  The default ``None`` picks by ``os.cpu_count()``: on a
        single-core host thread fan-out is pure scheduling overhead —
        the per-shard cost reduction (smaller tables, shorter membership
        predicates) is what sharding buys, and it survives serial
        dispatch intact.
    executor:
        ``"thread"`` (default) runs each shard plan on the shard's
        in-process :class:`QueryService`; ``"process"`` dispatches to a
        :class:`~repro.service.procpool.ProcessShardExecutor` — one
        long-lived worker *process* per shard (``workers_per_shard``
        each) holding its own SQLite connection over a zero-copy
        attach of the shard image, executing pre-lowered shipped SQL
        on an independent interpreter.  Threads stay the right choice
        for single-shard stores and tiny corpora where the serialize/
        spawn cost outweighs the GIL win; see
        ``docs/performance.md``.
    cache_capacity, cached_statements, indexes:
        As on :class:`QueryService`; apply to every shard.
    deadline_s, retry, breaker_threshold, breaker_reset_s, degrade:
        Resilience configuration.  The deadline spans the whole
        fan-out: each shard receives the *remaining* budget, and the
        merge re-checks before returning.  With ``degrade`` enabled a
        shard-level failure falls back to full serial execution; with
        it disabled the typed shard error surfaces.
    """

    def __init__(
        self,
        collection: Collection | None = None,
        default_doc: str | None = None,
        serialize_step: bool = False,
        disabled_rules: set[str] | None = None,
        *,
        shards: int | None = None,
        workers_per_shard: int = 1,
        cache_capacity: int = 256,
        cached_statements: int = 512,
        indexes: dict[str, tuple[str, ...]] | None = None,
        checked: bool = False,
        deadline_s: float | None = None,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 8,
        breaker_reset_s: float = 0.25,
        degrade: bool = True,
        parallel_fanout: bool | None = None,
        executor: str = "thread",
        flight: bool = True,
        flight_recorder: FlightRecorder | None = None,
        slow_threshold_s: float = 0.25,
        views: bool = True,
        view_budget_bytes: int = 4 << 20,
        view_admit_after: int = 3,
    ):
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        if collection is None:
            collection = Collection(shards if shards is not None else 1)
        elif shards is not None and shards != collection.shards:
            raise ValueError(
                f"shards={shards} conflicts with the given collection's "
                f"{collection.shards} shards"
            )
        self.collection = collection
        self.serialize_step = serialize_step
        self.deadline_s = deadline_s
        self.degrade_enabled = degrade
        self.executor = executor
        if parallel_fanout is None:
            # process workers sidestep the GIL, so concurrent dispatch
            # pays off whenever the host has cores to run them on;
            # thread fan-out on a single core is pure scheduling cost
            parallel_fanout = (os.cpu_count() or 1) > 1
        self.parallel_fanout = parallel_fanout
        # exactly one flight record per query, at this serving
        # boundary: the shard services and the serial fallback are
        # constructed with recording off and annotate this service's
        # per-query context instead
        if flight_recorder is not None:
            self.flight: FlightRecorder | None = flight_recorder
        elif flight:
            self.flight = FlightRecorder(slow_threshold_s=slow_threshold_s)
        else:
            self.flight = None
        # the compile-side processor: bound to an empty store (compiled
        # SQL never executes against it), resolving collection() globs
        # against the *whole* collection so plans name every member
        # regardless of shard placement
        self._compiler = XQueryProcessor(
            store=DocumentStore(),
            default_doc=default_doc,
            serialize_step=serialize_step,
            disabled_rules=disabled_rules,
            checked=checked,
            collections=collection.resolve,
        )
        self.cache = CompiledQueryCache(cache_capacity)
        # the view tier answers in *global* ranks at this boundary; the
        # shard services and the serial fallback run with views off so
        # bookkeeping happens exactly once per query
        if views and not serialize_step:
            self.views: ViewManager | None = ViewManager(
                self._view_filter,
                budget_bytes=view_budget_bytes,
                admit_after=view_admit_after,
            )
        else:
            self.views = None
        self._compile_lock = threading.Lock()
        self._service_config = dict(
            default_doc=default_doc,
            serialize_step=serialize_step,
            disabled_rules=disabled_rules,
            workers=workers_per_shard,
            cache_capacity=cache_capacity,
            cached_statements=cached_statements,
            indexes=indexes,
            checked=checked,
            deadline_s=None,  # the sharded service owns the deadline
            retry=retry,
            breaker_threshold=breaker_threshold,
            breaker_reset_s=breaker_reset_s,
            degrade=degrade,
            flight=False,
            views=False,
        )
        self._shard_services: list[QueryService] = [
            QueryService(store=store, **self._service_config)
            for store in collection.stores
        ]
        # per-shard plan specializers, built lazily: same front-end
        # configuration, but collection() resolves to only the member
        # URIs the shard hosts (see _shard_compiled)
        self._shard_compilers: list[XQueryProcessor | None] = [
            None for _ in collection.stores
        ]
        self._serial_service: QueryService | None = None
        self._serial_lock = threading.Lock()
        # process-executor state (lazy: thread mode never pays for it).
        # The parent owns every retry/degrade/surface decision for
        # worker-raised faults, so the ledger lives here, not in the
        # workers — one disposition per injected failure, same as
        # QueryService's accounting.
        self._workers_per_shard = workers_per_shard
        self._indexes = indexes
        self._retry = retry if retry is not None else RetryPolicy()
        self._procpool: ProcessShardExecutor | None = None
        self._procpool_lock = threading.Lock()
        self._dispatch: ThreadPoolExecutor | None = None
        self._proc_accounting = {"retry": 0, "degrade": 0, "surface": 0}
        self._proc_accounting_lock = threading.Lock()
        self._proc_merge_lock = threading.Lock()
        self._closed = False

    # -- documents -----------------------------------------------------

    @property
    def shards(self) -> int:
        return self.collection.shards

    @property
    def default_doc(self) -> str | None:
        return self._compiler.default_doc

    def load(self, xml_text: str, uri: str, shard: int | None = None) -> None:
        """Load a document into its shard and invalidate compiled
        plans (``shard`` overrides hash placement, as on
        :meth:`Collection.load`).  Shard backends/caches
        self-invalidate off their store versions; the collection-level
        plan cache is versioned on the collection."""
        entry = self.collection.load(xml_text, uri, shard=shard)
        if self._compiler.default_doc is None:
            self._compiler.default_doc = uri
            self._service_config["default_doc"] = uri
            for service in self._shard_services:
                service.processor.default_doc = uri
            with self._serial_lock:
                if self._serial_service is not None:
                    self._serial_service.processor.default_doc = uri
        self.cache.invalidate(store_version=self.collection.version)
        if self.views is not None:
            # a graft shifts global rank offsets and changes results:
            # every materialized view is stale (never-stale contract)
            self.views.invalidate(store_version=self.collection.version)
        # the shard that received the document must drop its pool;
        # QueryService.load would do this, but the collection already
        # loaded the row — retire explicitly instead
        self._shard_services[entry.shard].cache.invalidate(
            store_version=self.collection.stores[entry.shard].version
        )
        if self.flight is not None:
            # the collection graft invalidated every compiled plan;
            # latency percentiles from the pre-graft corpus would be
            # stale too — roll the flight-recorder epoch
            self.flight.mark_epoch()

    # -- compilation ---------------------------------------------------

    def _cache_key(self, query: str) -> CacheKey:
        return CacheKey(
            query=query,
            default_doc=self._compiler.default_doc,
            serialize_step=self._compiler.serialize_step,
            disabled_rules=self._compiler.disabled_rules,
            store_version=self.collection.version,
            collection=f"shards:{self.collection.shards}",
        )

    def _view_filter(
        self, pattern: TreePattern, rows: Sequence[int]
    ) -> list[int]:
        """Residual filter for the view tier over *global* ranks: each
        candidate is routed to the shard hosting it and tested against
        that shard's table with the containment membership oracle.
        Per-shard monotonic translation keeps the filtered sequence in
        global document order."""
        out: list[int] = []
        for rank in rows:
            shard, pre = self.collection.to_local(rank)
            table = self.collection.stores[shard].table
            if pattern_selects(pattern, table, pre):
                out.append(rank)
        return out

    def compile(self, query: str) -> CompiledQuery:
        """The compiled artifact for ``query``, resolved against the
        whole collection — from cache when possible.

        Mirrors :meth:`QueryService.compile`'s three tiers: lexically
        normalized exact key, canonical tree-pattern alias key
        (semantically equivalent spellings share one artifact), then a
        cold compile stored under both keys.  (The execution path adds
        the *view* tier — see :meth:`_resolve`.)
        """
        compiled, _ = self._resolve(query, allow_view=False)
        assert compiled is not None
        return compiled

    def _resolve(
        self, query: str, allow_view: bool = True
    ) -> tuple[CompiledQuery | None, list[int] | None]:
        """The collection-level cache-tier ladder (lexical → exact →
        canonical → view → cold compile), mirroring
        :meth:`QueryService._resolve`; a view answer returns global
        ranks directly and skips compilation and fan-out entirely."""
        text = normalize_query_text(query)
        key = self._cache_key(text)
        flight = current_context()
        compiled = self.cache.get(key)
        if compiled is not None:
            if flight is not None:
                flight.note_cache("exact")
            return compiled, None
        with self._compile_lock:
            compiled = self.cache.peek(key)
            if compiled is not None:
                if flight is not None:
                    flight.note_cache("single-flight-wait")
                return compiled, None
            pattern = canonical_pattern_of(
                text,
                self._compiler.default_doc,
                self._compiler.collections,
            )
            alias = (
                key._replace(query=_CANONICAL_NS + pattern_key(pattern))
                if pattern is not None
                else None
            )
            if alias is not None:
                compiled = self.cache.get_canonical(alias)
                if compiled is not None:
                    # back-fill the exact key so this spelling hits
                    # tier 1 from now on
                    self.cache.put(key, compiled)
                    if flight is not None:
                        flight.note_cache("canonical")
                    return compiled, None
            if allow_view and self.views is not None and pattern is not None:
                rows = self.views.answer(pattern, self.collection.version)
                if rows is not None:
                    if flight is not None:
                        flight.note_cache("view")
                    return None, rows
            rewrite_start = time.perf_counter_ns()
            compiled = self._compiler.compile(text)
            _ = (compiled.stacked_sql, compiled.joingraph_sql)
            if flight is not None:
                flight.note_cache("miss")
                flight.add_phase(
                    "rewrite", time.perf_counter_ns() - rewrite_start
                )
            self.cache.put(key, compiled)
            if alias is not None:
                self.cache.put(alias, compiled)
        return compiled, None

    def _shard_resolver(self, shard: int):
        def resolve(patterns: tuple[str, ...]) -> tuple[str, ...]:
            return tuple(
                uri
                for uri in self.collection.resolve(patterns)
                if self.collection.entry(uri).shard == shard
            )

        return resolve

    def _shard_compiled(
        self, compiled: CompiledQuery, shard: int
    ) -> CompiledQuery:
        """The shard-specialized variant of a compiled plan.

        The collection-wide plan names *every* member URI in its
        membership predicate; re-resolving against only the URIs this
        shard hosts yields provably identical rows on the shard
        (foreign URIs match nothing there) but keeps the membership
        list short — on a long list, SQLite flips to driving the join
        from the DOC rows and walks whole document subtrees by rowid
        range, turning indexed point-lookups into per-shard table
        scans.  Variants are cached like any compiled plan.
        """
        key = self._cache_key(compiled.source)._replace(
            collection=f"shards:{self.collection.shards}:{shard}"
        )
        variant = self.cache.get(key)
        if variant is not None:
            return variant
        with self._compile_lock:
            variant = self.cache.peek(key)
            if variant is not None:
                return variant
            compiler = self._shard_compilers[shard]
            if compiler is None:
                compiler = XQueryProcessor(
                    store=DocumentStore(),
                    default_doc=self._compiler.default_doc,
                    serialize_step=self._compiler.serialize_step,
                    disabled_rules=set(self._compiler.disabled_rules),
                    collections=self._shard_resolver(shard),
                )
                self._shard_compilers[shard] = compiler
            compiler.default_doc = self._compiler.default_doc
            variant = compiler.compile(compiled.source)
            _ = (variant.stacked_sql, variant.joingraph_sql)
            self.cache.put(key, variant)
        return variant

    # -- execution -----------------------------------------------------

    def execute(
        self,
        query: str | CompiledQuery,
        engine: Engine | str = Engine.JOINGRAPH_SQL,
        *,
        deadline_s: float | None = None,
    ) -> Result:
        """Evaluate a query; returns a :class:`repro.Result` whose
        ``shards`` attribute records the fan-out width (1 for routed or
        serial execution).

        Scatter-safe SQL-engine queries fan out across the shards
        hosting their documents; everything else (interpreter engines,
        cross-document joins, FLWOR-ordered results) runs serially
        against the combined store.  Either way the item sequence is
        exactly what a single-backend serial processor would return.
        In particular a ``doc()``/``collection()`` URI naming no
        hosted document matches nothing — the query returns an empty
        :class:`Result`, never an error (serial SQL parity); each such
        URI is counted under ``service.scatter.unknown_uris``.
        """
        if self._closed:
            raise RuntimeError("sharded service is closed")
        engine = Engine.of(engine)
        started = time.perf_counter_ns()
        budget = self.deadline_s if deadline_s is None else deadline_s
        deadline = Deadline.after(budget) if budget is not None else None
        metrics = get_metrics()
        recorder = self.flight
        with flight_capture(own=recorder is not None) as flight:
            compiled: CompiledQuery | None = None
            qspan = get_tracer().span(
                "service.query", engine=engine.value, sharded=True
            )
            try:
                with qspan:
                    result = self._execute_classified(
                        query, engine, deadline, started, metrics, flight
                    )
            except ServiceError as error:
                if recorder is not None and flight is not None:
                    # the plan usually made it into the cache before
                    # the failure, so EXPLAIN diagnostics still work
                    compiled = self._last_compiled(query)
                    self._flight_record(
                        recorder, flight, query, compiled, engine,
                        started, budget, deadline, qspan, error=error,
                    )
                raise
            if recorder is not None and flight is not None:
                self._flight_record(
                    recorder, flight, query, self._last_compiled(query),
                    engine, started, budget, deadline, qspan,
                )
            return result

    def _execute_classified(
        self,
        query: str | CompiledQuery,
        engine: Engine,
        deadline: Deadline | None,
        started: int,
        metrics: Any,
        flight: FlightContext | None,
    ) -> Result:
        if isinstance(query, CompiledQuery):
            compiled = query
            if flight is not None:
                flight.note_cache("precompiled")
        else:
            compile_start = time.perf_counter_ns()
            compiled, view_rows = self._resolve(query)
            if flight is not None:
                flight.add_phase(
                    "compile", time.perf_counter_ns() - compile_start
                )
            if view_rows is not None:
                # answered from a materialized view (global ranks):
                # no compilation, no fan-out, no merge
                if flight is not None:
                    flight.note_rows(len(view_rows))
                return Result(
                    view_rows,
                    engine=engine,
                    timings={
                        "execute_ns": time.perf_counter_ns() - started
                    },
                    shards=1,
                    serializer=self.serialize,
                )
            assert compiled is not None
        uris = None
        if engine in Engine.sql_engines() and not self.serialize_step:
            uris = scatter_uris(compiled.core)
        if uris is None:
            metrics.count("service.scatter.serial")
            if flight is not None:
                flight.note_scatter("serial", 1)
            items = self._serial().execute(
                compiled.source,
                engine,
                deadline_s=_remaining(deadline),
            )
            if flight is not None:
                flight.note_rows(len(items))
            self._observe_view(query, compiled, items)
            return Result(
                items,
                engine=engine,
                timings={"execute_ns": time.perf_counter_ns() - started},
                shards=1,
                serializer=self.serialize,
            )

        known = [uri for uri in uris if uri in self.collection]
        if len(known) != len(uris):
            metrics.count(
                "service.scatter.unknown_uris", len(uris) - len(known)
            )
        shards = self.collection.shards_of(known)
        if flight is not None:
            flight.note_scatter(
                "route" if len(shards) == 1 else "scatter", len(shards)
            )
        merged, merge_ns = self._scatter(compiled, engine, shards, deadline)
        metrics.count("service.scatter.queries")
        metrics.count(f"service.scatter.queries.{engine.value}")
        metrics.observe("service.scatter.fanout", len(shards))
        elapsed = time.perf_counter_ns() - started
        metrics.observe("service.scatter.query_ns", elapsed)
        if flight is not None:
            flight.add_phase("merge", merge_ns)
            flight.note_rows(len(merged))
        self._observe_view(query, compiled, merged)
        return Result(
            merged,
            engine=engine,
            timings={"execute_ns": elapsed, "merge_ns": merge_ns},
            shards=max(1, len(shards)),
            serializer=self.serialize,
        )

    def _observe_view(
        self,
        query: str | CompiledQuery,
        compiled: CompiledQuery,
        items: Sequence[Any],
    ) -> None:
        """View-admission bookkeeping after a normal execution: the
        merged/serial global-rank sequence is exactly what a view for
        this pattern should serve."""
        if self.views is not None and isinstance(query, str):
            self.views.observe(
                compiled.source,
                compiled.core,
                self.collection.version,
                items,
            )

    def _last_compiled(
        self, query: str | CompiledQuery
    ) -> CompiledQuery | None:
        """The compiled artifact for a just-served query (cache lookup
        only — never compiles), for the slow-capture diagnostics."""
        if isinstance(query, CompiledQuery):
            return query
        try:
            return self.cache.peek(self._cache_key(normalize_query_text(query)))
        except Exception:
            return None

    def _breaker_state(self) -> str:
        """The worst breaker state across the shard services (open >
        half-open > closed) — the serving boundary's health summary."""
        states = {service._breaker.state for service in self._shard_services}
        with self._serial_lock:
            if self._serial_service is not None:
                states.add(self._serial_service._breaker.state)
        for state in ("open", "half-open"):
            if state in states:
                return state
        return "closed"

    def _flight_record(
        self,
        recorder: FlightRecorder,
        flight: FlightContext,
        query: str | CompiledQuery,
        compiled: CompiledQuery | None,
        engine: Engine,
        start_ns: int,
        budget: float | None,
        deadline: Deadline | None,
        qspan: Any,
        error: BaseException | None = None,
    ) -> None:
        elapsed = time.perf_counter_ns() - start_ns
        if compiled is not None:
            text = compiled.source
        else:
            text = query if isinstance(query, str) else query.source
        consumed: float | None = None
        if deadline is not None and budget:
            consumed = min(1.0, deadline.elapsed() / budget)
        trace = [span_tree(qspan)] if isinstance(qspan, Span) else []

        def detail() -> dict[str, Any]:
            diagnostics: dict[str, Any] = {"trace": trace}
            if compiled is not None:
                # any shard's schema explains the collection-wide SQL;
                # prefer the serial store when it is already built
                with self._serial_lock:
                    service = self._serial_service
                if service is None:
                    service = self._shard_services[0]
                diagnostics["explain"] = service._flight_explain(
                    compiled, engine
                )
            return diagnostics

        recorder.record(
            query_text=text,
            engine=engine.value,
            status="ok" if error is None else f"error:{type(error).__name__}",
            context=flight,
            elapsed_ns=elapsed,
            shards=self.collection.shards,
            breaker=self._breaker_state(),
            deadline_budget_s=budget,
            deadline_consumed=consumed,
            detail=detail,
        )

    def _scatter(
        self,
        compiled: CompiledQuery,
        engine: Engine,
        shards: Sequence[int],
        deadline: Deadline | None,
    ) -> tuple[list[Any], int]:
        """Fan one compiled plan out across ``shards``; returns the
        merged global-rank sequence and the merge-phase nanoseconds."""
        tracer = get_tracer()
        if not shards:
            return [], 0
        remaining = _remaining(deadline)
        with tracer.span(
            "service.scatter", engine=engine.value, shards=len(shards)
        ):
            if len(shards) == 1:
                # routed: the whole query lives in one shard
                get_metrics().count("service.scatter.routed")
                shard = shards[0]
                with tracer.span("service.scatter.shard", shard=shard):
                    if self.executor == "process":
                        items = self._process_execute(
                            compiled, engine, shard, deadline
                        )
                    else:
                        items = self._shard_services[shard].execute(
                            self._shard_compiled(compiled, shard),
                            engine,
                            deadline_s=remaining,
                        )
                started = time.perf_counter_ns()
                merged = self.collection.to_global(shard, items)
                return merged, time.perf_counter_ns() - started

            per_shard: list[list[int]] = []
            failure: BaseException | None = None
            if self.parallel_fanout:
                futures: list[tuple[int, Future[Any]]]
                if self.executor == "process":
                    # parent dispatch threads only coordinate pipes —
                    # the worker *processes* execute concurrently
                    pool = self._dispatch_pool()
                    futures = [
                        (
                            shard,
                            pool.submit(
                                self._process_task,
                                get_metrics(),
                                current_context(),
                                compiled,
                                engine,
                                shard,
                                deadline,
                            ),
                        )
                        for shard in shards
                    ]
                else:
                    futures = [
                        (
                            shard,
                            self._shard_services[shard].submit(
                                self._shard_compiled(compiled, shard),
                                engine,
                                deadline_s=remaining,
                            ),
                        )
                        for shard in shards
                    ]
                for shard, future in futures:
                    try:
                        items = future.result()
                    except ServiceError as error:
                        get_metrics().count("service.scatter.shard_failures")
                        if failure is None:
                            failure = error
                        continue
                    if failure is None:
                        per_shard.append(self.collection.to_global(shard, items))
            else:
                for shard in shards:
                    try:
                        if self.executor == "process":
                            items = self._process_execute(
                                compiled, engine, shard, deadline
                            )
                        else:
                            items = self._shard_services[shard].execute(
                                self._shard_compiled(compiled, shard),
                                engine,
                                deadline_s=_remaining(deadline),
                            )
                    except ServiceError as error:
                        get_metrics().count("service.scatter.shard_failures")
                        if failure is None:
                            failure = error
                        continue
                    if failure is None:
                        per_shard.append(self.collection.to_global(shard, items))
            if failure is not None:
                if not self.degrade_enabled:
                    raise failure
                # partial answers are never merged: degrade to full
                # serial execution against the combined store
                get_metrics().count("service.scatter.serial_fallbacks")
                flight = current_context()
                if flight is not None:
                    flight.note_degraded()
                with tracer.span("service.scatter.degrade"):
                    items = self._serial().execute(
                        compiled.source,
                        engine,
                        deadline_s=_remaining(deadline),
                    )
                return list(items), 0
            started = time.perf_counter_ns()
            merged = list(heapq.merge(*per_shard))
            merge_ns = time.perf_counter_ns() - started
            if deadline is not None:
                deadline.check()
            return merged, merge_ns

    # -- process executor ----------------------------------------------

    def _process_pool(self) -> ProcessShardExecutor:
        with self._procpool_lock:
            if self._procpool is None:
                self._procpool = ProcessShardExecutor(
                    self.collection.shards,
                    workers_per_shard=self._workers_per_shard,
                    cached_statements=self._service_config[
                        "cached_statements"
                    ],
                )
            return self._procpool

    def _dispatch_pool(self) -> ThreadPoolExecutor:
        """Parent-side threads that drive the worker pipes during a
        parallel fan-out; they block on I/O, so the GIL is idle while
        the worker processes compute."""
        with self._procpool_lock:
            if self._dispatch is None:
                self._dispatch = ThreadPoolExecutor(
                    max_workers=max(
                        1, self.collection.shards * self._workers_per_shard
                    ),
                    thread_name_prefix="repro-dispatch",
                )
            return self._dispatch

    def _shipped_plan(
        self, compiled: CompiledQuery, engine: Engine, shard: int
    ) -> ShippedPlan:
        """The shard-specialized plan in shippable form, keyed by the
        same canonical cache key the compiled-plan cache uses — the
        worker's plan cache and the parent's stay in lockstep."""
        variant = self._shard_compiled(compiled, shard)
        sql = (
            variant.stacked_sql
            if engine == "stacked-sql"
            else variant.joingraph_sql
        )
        key = self._cache_key(compiled.source)._replace(
            collection=f"shards:{self.collection.shards}:{shard}"
        )
        return ShippedPlan(
            key=(key, engine.value),
            sql_text=sql.text,
            item_index=sql.select_aliases.index(sql.item_alias),
        )

    def _process_task(
        self,
        registry: MetricsRegistry,
        context: FlightContext | None,
        compiled: CompiledQuery,
        engine: Engine,
        shard: int,
        deadline: Deadline | None,
    ) -> list[int]:
        # dispatch-thread bridge, mirroring QueryService._task: record
        # into a private registry and merge into the submitting
        # thread's under a lock; adopt the submitter's flight context
        local = MetricsRegistry()
        previous = set_metrics(local)
        try:
            with adopt_context(context):
                return self._process_execute(compiled, engine, shard, deadline)
        finally:
            set_metrics(previous)
            with self._proc_merge_lock:
                registry.merge(local)

    def _process_execute(
        self,
        compiled: CompiledQuery,
        engine: Engine,
        shard: int,
        deadline: Deadline | None,
    ) -> list[int]:
        """One shard execution on the process executor under the
        parent-side resilience stack — the process-mode analog of
        :meth:`QueryService._run_pooled` (no pool, no breaker: the
        worker owns exactly one connection and a crash is already
        handled by restart-and-retry)."""
        plan = self._shipped_plan(compiled, engine, shard)
        store = self.collection.stores[shard]
        executor = self._process_pool()
        metrics = get_metrics()
        tracer = get_tracer()
        attempt = 0
        while True:
            try:
                return executor.execute(
                    shard,
                    plan,
                    version=store.version,
                    payload=lambda: self.collection.shard_payload(
                        shard, self._indexes
                    ),
                    budget_s=_remaining(deadline),
                )
            except DeadlineExceeded as error:
                metrics.count("service.deadline.exceeded")
                self._proc_account(error, "surface")
                raise
            except (sqlite3.Error, WorkerCrash) as error:
                if isinstance(error, sqlite3.Error) and not is_transient(
                    error
                ):
                    raise
                if self._retry.allows(attempt, deadline):
                    self._proc_account(error, "retry")
                    metrics.count("service.retry.attempts")
                    flight = current_context()
                    if flight is not None:
                        flight.note_retry()
                    with tracer.span(
                        "service.retry", attempt=attempt, error=str(error)
                    ):
                        metrics.observe(
                            "service.retry.backoff_s",
                            self._retry.pause(attempt, deadline),
                        )
                    attempt += 1
                    continue
                metrics.count("service.retry.exhausted")
                if self.degrade_enabled:
                    # the caller's serial fallback is the degraded
                    # path; this failure's disposition is decided here
                    self._proc_account(error, "degrade")
                else:
                    self._proc_account(error, "surface")
                raise BackendUnavailable(
                    f"shard {shard} worker failure persisted through "
                    f"{self._retry.max_retries} retries: {error}"
                ) from error

    def _proc_account(self, error: BaseException, disposition: str) -> None:
        """Tally how an injected worker fault was handled — the
        parent-side half of the cross-process chaos ledger (worker
        injection tallies flow back via the executor's fault deltas)."""
        if not is_injected(error):
            return
        with self._proc_accounting_lock:
            self._proc_accounting[disposition] += 1
        get_metrics().count(f"service.faults.handled.{disposition}")

    def _serial(self) -> QueryService:
        """The serial fallback service over the combined store, built
        lazily (materializing the combined table) on first use."""
        with self._serial_lock:
            if self._serial_service is None:
                get_metrics().count("service.scatter.serial_materializations")
                self._serial_service = QueryService(
                    store=self.collection.combined_store(),
                    **self._service_config,
                )
            return self._serial_service

    # -- results -------------------------------------------------------

    def serialize(self, items: Sequence[Any]) -> str:
        """Serialize a global-rank node sequence back to XML text."""
        return self.collection.serialize(items)

    def run(
        self,
        query: str | CompiledQuery,
        engine: Engine | str = Engine.JOINGRAPH_SQL,
    ) -> Serialized:
        """Execute and serialize in one step."""
        result = self.execute(query, engine=engine)
        return Serialized(self.serialize(result), result)

    def run_many(
        self,
        queries: Iterable[str | CompiledQuery],
        engine: Engine | str = Engine.JOINGRAPH_SQL,
        *,
        deadline_s: float | None = None,
    ) -> list[Result]:
        """Execute a batch; each query fans out across the shards in
        turn (the fan-out itself is the parallelism)."""
        return [
            self.execute(query, engine=engine, deadline_s=deadline_s)
            for query in queries
        ]

    # -- accounting / lifecycle ----------------------------------------

    @property
    def fault_accounting(self) -> dict[str, int]:
        """Injected-fault dispositions summed across every shard
        service and the serial fallback — the ledger side of the
        ``injected == retried + degraded + surfaced`` invariant."""
        with self._proc_accounting_lock:
            total = dict(self._proc_accounting)
        services: list[QueryService] = list(self._shard_services)
        with self._serial_lock:
            if self._serial_service is not None:
                services.append(self._serial_service)
        for service in services:
            for disposition, count in service.fault_accounting.items():
                total[disposition] += count
        return total

    def cache_stats(self) -> CacheStats:
        """The typed, tiered cache statistics for the collection-level
        plan cache and view tier (mirrors
        :meth:`QueryService.cache_stats`)."""
        base = self.cache.stats()
        view = (
            self.views.tier_stats() if self.views is not None else TierStats()
        )
        return CacheStats(
            capacity=base["capacity"],
            size=base["size"],
            exact=TierStats(
                hits=base["hits"],
                misses=base["misses"],
                evictions=base["evictions"],
            ),
            canonical=TierStats(
                hits=base["canonical_hits"],
                misses=max(0, base["misses"] - base["canonical_hits"]),
            ),
            view=view,
        )

    def stats(self) -> dict[str, Any]:
        """A JSON-ready snapshot: collection placement, per-shard
        service and planner-statistics summaries, plan-cache counters."""
        from repro.planner.stats import TableStatistics

        per_shard = []
        for shard, service in enumerate(self._shard_services):
            table = self.collection.stores[shard].table
            table_stats = TableStatistics.collect(table)
            per_shard.append(
                {
                    "shard": shard,
                    "documents": len(self.collection._by_shard[shard]),
                    "rows": table_stats.row_count,
                    "distinct_names": len(table_stats.name_frequency),
                    "max_level": table_stats.max_level,
                    "service": service.stats(),
                }
            )
        with self._serial_lock:
            serial = self._serial_service is not None
        with self._procpool_lock:
            procpool = self._procpool
        return {
            "collection": self.collection.stats(),
            "cache": self.cache_stats().to_dict(),
            "views": self.views.stats() if self.views is not None else None,
            "flight": self.flight.stats() if self.flight else None,
            "serial_materialized": serial,
            "fault_accounting": self.fault_accounting,
            "executor": self.executor,
            "procpool": procpool.stats() if procpool is not None else None,
            "per_shard": per_shard,
        }

    def close(self) -> None:
        """Close every shard service and the serial fallback."""
        self._closed = True
        for service in self._shard_services:
            service.close()
        with self._serial_lock:
            serial, self._serial_service = self._serial_service, None
        if serial is not None:
            serial.close()
        with self._procpool_lock:
            procpool, self._procpool = self._procpool, None
            dispatch, self._dispatch = self._dispatch, None
        if dispatch is not None:
            dispatch.shutdown(wait=False, cancel_futures=True)
        if procpool is not None:
            procpool.close()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
