"""The service-layer throughput benchmark (``BENCH_service.json``).

Measures the two serving-economics claims of the query service on the
XMark workload:

1. **Compiled-plan reuse**: repeated-query throughput of the cached
   service vs the *uncached single-connection baseline* (a bare
   :class:`XQueryProcessor` recompiling from scratch on every call —
   the pre-service behaviour of this repository).  The acceptance bar
   is >= 5x.
2. **Concurrent execution**: a worker-scaling curve — the same
   repeated workload pushed through :meth:`QueryService.run_many` at
   several thread-pool widths over the shared-cache backend pool.
   With ``executor="process"`` the curve instead drives a
   single-shard :class:`repro.service.ShardedService` whose
   :class:`~repro.service.procpool.ProcessShardExecutor` owns the
   given number of worker *processes* — pre-lowered SQL executes on
   independent interpreters, so the curve measures scaling past the
   GIL (see ``docs/performance.md``).

Every mode reports SLO-grade latency percentiles (p50/p90/p95/p99 in
milliseconds, from the ``service.query_ns`` quantile histogram — the
baseline is timed per call into a local histogram), and the document
carries a flight-recorder overhead probe: the same cached workload
with the recorder on vs off, best-of-trials, as a percentage.  The
acceptance bar for the recorder is < 3% (``measure_flight_overhead``
is what the CI gate calls).

Every mode's results are verified against the baseline's before any
number is reported.  ``benchmarks/bench_service.py`` and the
``repro serve-bench`` CLI subcommand are thin wrappers over
:func:`run_service_bench`; ``docs/performance.md`` explains how to
read the emitted JSON.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Sequence

from repro.infoset.encoding import DocumentStore
from repro.obs import (
    Histogram,
    MetricsRegistry,
    get_metrics,
    latency_summary_ms,
    metrics_scope,
    set_metrics,
)
from repro.pipeline import XQueryProcessor
from repro.service.service import QueryService
from repro.workloads import XMARK_QUERIES, XMarkConfig, generate_xmark
from repro.xmltree.model import DocumentNode

__all__ = [
    "DEFAULT_QUERY_SET",
    "format_service_bench",
    "measure_flight_overhead",
    "run_service_bench",
]

#: XMark catalog queries used as the serving mix: point lookup, value
#: join, path scans — the repeated-query traffic a service would see
DEFAULT_QUERY_SET: tuple[str, ...] = ("X1", "X5", "X8", "X13", "X17", "X19")

SCHEMA = "repro.service.bench/v4"

#: Template respellings of in-fragment path queries — the traffic
#: shape templated clients produce: same canonical pattern, different
#: query text.  Each pair exercises one canonical-tier alias hit; the
#: comment-decorated spelling of the original exercises one
#: lexical-normalization exact hit.
TEMPLATE_VARIANTS: tuple[tuple[str, str], ...] = (
    ("//open_auction[initial][bidder]", "//open_auction[bidder][initial]"),
    ("//item[location]/name", "//child::item[child::location]/child::name"),
    ("//person[emailaddress]", "//person[emailaddress][emailaddress]"),
    ("//closed_auction[price]", "//closed_auction/self::node()[price]"),
)

#: The view-tier workload: each base query gets its result materialized
#: (admission after two executions), then strictly-contained variants —
#: the base's pattern plus an extra branch predicate — are answered by
#: re-filtering the view's rows instead of compiling.  Every variant
#: answer is byte-verified against a bare full-compile processor.
VIEW_TEMPLATES: tuple[tuple[str, tuple[str, ...]], ...] = (
    (
        "//item[location]",
        ("//item[location][quantity]", "//item[location][payment]"),
    ),
    (
        "//open_auction[initial]",
        (
            "//open_auction[initial][bidder]",
            "//open_auction[initial][current]",
        ),
    ),
    (
        "//person[name]",
        ("//person[name][emailaddress]", "//person[name][watches]"),
    ),
)


def _baseline_throughput(
    store: DocumentStore, queries: Sequence[str], repeat: int
) -> tuple[float, dict[str, list[Any]], Histogram]:
    """The uncached single-connection baseline: one bare processor,
    full recompile per call.  Returns (seconds, reference results,
    per-call latency histogram in ns)."""
    processor = XQueryProcessor(store=store, default_doc="auction.xml")
    results: dict[str, list[Any]] = {}
    latency = Histogram()
    # populate the backend outside the timed window: both sides pay
    # the bulk load once, the comparison is about serving
    processor.backend
    start = time.perf_counter()
    for _ in range(repeat):
        for query in queries:
            call_start = time.perf_counter_ns()
            results[query] = processor.execute(query, engine="joingraph-sql")
            latency.observe(time.perf_counter_ns() - call_start)
    return time.perf_counter() - start, results, latency


def _cached_throughput(
    service: QueryService, queries: Sequence[str], repeat: int
) -> tuple[float, dict[str, list[Any]], Histogram | None]:
    """Single-thread repeated execution through the compiled-plan
    cache (warmed outside the timed window).  The latency histogram is
    the service's own ``service.query_ns``, captured over the timed
    window only — warm-up compiles don't pollute the percentiles —
    then folded back into the caller's registry so counters stay
    complete."""
    results: dict[str, list[Any]] = {}
    for query in queries:
        results[query] = service.execute(query)
    outer = get_metrics()
    with metrics_scope() as timed:
        start = time.perf_counter()
        for _ in range(repeat):
            for query in queries:
                service.execute(query)
        elapsed = time.perf_counter() - start
    outer.merge(timed)
    return elapsed, results, timed.histograms.get("service.query_ns")


def _worker_throughput(
    store: DocumentStore, queries: Sequence[str], repeat: int, workers: int
) -> tuple[float, dict[str, list[Any]], Histogram | None]:
    """The full repeated batch through ``run_many`` at one pool width.
    Worker threads merge their registries into the submitting thread's
    scope, so the timed-window histogram covers every pooled call."""
    with QueryService(
        store=store, default_doc="auction.xml", workers=workers
    ) as service:
        # warm the compile cache and the per-thread connections
        warm = service.run_many(queries)
        results = dict(zip(queries, warm))
        batch = [query for _ in range(repeat) for query in queries]
        with metrics_scope() as timed:
            start = time.perf_counter()
            service.run_many(batch)
            elapsed = time.perf_counter() - start
    return elapsed, results, timed.histograms.get("service.query_ns")


def _process_worker_throughput(
    tree: DocumentNode, queries: Sequence[str], repeat: int, workers: int
) -> tuple[float, dict[str, list[Any]], Histogram]:
    """The full repeated batch through a single-shard process executor
    at one worker-process count.

    ``workers`` parent threads stripe the batch across the shard's
    ``workers`` worker processes (the procpool round-robins requests);
    the parent threads only coordinate pipes, so the worker processes
    execute concurrently regardless of the GIL.  Per-thread registries
    and latency histograms merge back after the join — the same
    lossless merge the executor applies to the workers' snapshots."""
    from repro.service.scatter import ShardedService
    from repro.store import Collection

    collection = Collection(1)
    collection.load_tree(tree, shard=0)
    with ShardedService(
        collection,
        default_doc="auction.xml",
        workers_per_shard=workers,
        executor="process",
    ) as service:
        # warm every worker process: attach the shard image and ship
        # each plan `workers` times so the round-robin touches all of
        # them before the timed window
        results: dict[str, list[Any]] = {}
        for _ in range(workers):
            for query in queries:
                results[query] = service.execute(query)
        batch = [query for _ in range(repeat) for query in queries]
        stripes = [batch[index::workers] for index in range(workers)]
        latencies = [Histogram() for _ in range(workers)]
        outer = get_metrics()
        merge_lock = threading.Lock()
        failures: list[BaseException] = []

        def drive(stripe: list[str], latency: Histogram) -> None:
            local = MetricsRegistry()
            previous = set_metrics(local)
            try:
                for query in stripe:
                    call_start = time.perf_counter_ns()
                    service.execute(query)
                    latency.observe(time.perf_counter_ns() - call_start)
            except BaseException as error:  # noqa: BLE001 - reraised
                with merge_lock:
                    failures.append(error)
            finally:
                set_metrics(previous)
                with merge_lock:
                    outer.merge(local)

        threads = [
            threading.Thread(
                target=drive,
                args=(stripe, latency),
                name=f"bench-proc-{index}",
            )
            for index, (stripe, latency) in enumerate(
                zip(stripes, latencies)
            )
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if failures:
            raise failures[0]
    merged = Histogram()
    for latency in latencies:
        merged.merge(latency)
    return elapsed, results, merged


def measure_flight_overhead(
    store: DocumentStore | None = None,
    queries: Sequence[str] | None = None,
    repeat: int = 30,
    trials: int = 5,
    factor: float = 0.01,
) -> dict[str, Any]:
    """The flight-recorder overhead probe: the cached single-thread
    workload with the recorder enabled vs disabled.

    The recorder's cost is deterministic; scheduler/VM jitter is not,
    and drifts on a seconds scale — so the probe interleaves at the
    finest grain available.  Every off-call is immediately followed by
    the same query's on-call, ``repeat * trials`` times, and the
    reported ``overhead_pct`` is built from the **median of the paired
    per-call deltas** (``on_i - off_i``): the two calls of a pair run
    microseconds apart, so machine drift cancels out of each delta,
    and the median discards the jitter spikes that land on one call of
    a pair.  The per-query minimum latencies are also reported — the
    calls jitter never touched — and the default ``factor`` matches
    the full benchmark corpus so "3%" means 3% of realistic per-call
    work.  This is what the CI overhead gate (< 3%) runs."""
    if store is None:
        store = DocumentStore()
        store.load_tree(generate_xmark(XMarkConfig(factor=factor)))
    if queries is None:
        queries = [XMARK_QUERIES[name].text for name in DEFAULT_QUERY_SET]

    disabled_s = enabled_s = 0.0
    delta_s = 0.0
    pairs = repeat * trials
    with metrics_scope():
        off = QueryService(
            store=store, default_doc="auction.xml", workers=1, flight=False
        )
        on = QueryService(
            store=store, default_doc="auction.xml", workers=1, flight=True
        )
        with off, on:
            for query in queries:  # warm caches and connections
                off.execute(query)
                on.execute(query)
            for query in queries:
                off_ns: list[int] = []
                deltas: list[int] = []
                for _ in range(pairs):
                    start = time.perf_counter_ns()
                    off.execute(query)
                    mid = time.perf_counter_ns()
                    on.execute(query)
                    end = time.perf_counter_ns()
                    off_ns.append(mid - start)
                    deltas.append((end - mid) - (mid - start))
                deltas.sort()
                middle = pairs // 2
                median_delta = (
                    deltas[middle]
                    if pairs % 2
                    else (deltas[middle - 1] + deltas[middle]) / 2.0
                )
                best_off = min(off_ns)
                disabled_s += best_off / 1e9
                enabled_s += (best_off + median_delta) / 1e9
                delta_s += median_delta / 1e9
    overhead = delta_s / disabled_s * 100.0 if disabled_s else 0.0
    return {
        "calls_per_window": len(queries),
        "trials": pairs,
        "disabled_seconds": disabled_s,
        "enabled_seconds": enabled_s,
        "overhead_pct": overhead,
    }


def _variant_workload(store: DocumentStore) -> dict[str, Any]:
    """The template-variant workload: each original query is followed
    by a comment-decorated respelling (lexical tier → exact hit) and a
    semantically equivalent respelling (canonical tier → alias hit).
    Every served result is verified against the original's before the
    rates are reported."""
    with metrics_scope():
        with QueryService(
            store=store, default_doc="auction.xml", workers=1
        ) as service:
            for original, respelled in TEMPLATE_VARIANTS:
                reference = service.execute(original)
                if service.execute(f"(: templated :) {original}") != reference:
                    raise AssertionError(
                        f"lexical respelling diverges for {original!r}"
                    )
                if service.execute(respelled) != reference:
                    raise AssertionError(
                        f"canonical respelling diverges for {original!r}"
                    )
            stats = service.cache.stats()
    calls = 3 * len(TEMPLATE_VARIANTS)
    return {
        "pairs": len(TEMPLATE_VARIANTS),
        "calls": calls,
        "cache": stats,
        "exact_hit_rate": stats["hits"] / calls,
        "canonical_hit_rate": stats["canonical_hits"] / calls,
        "served_without_compile_rate": (
            (stats["hits"] + stats["canonical_hits"]) / calls
        ),
    }


def _views_workload(store: DocumentStore, repeat: int = 3) -> dict[str, Any]:
    """The materialized-view workload: warm each base query past the
    admission threshold, then serve its strictly-contained variants
    from the view tier, byte-verifying every answer against a bare
    full-compile processor and timing both sides.  The reported
    ``view_hit_rate`` counts view-tier answers over *all* calls (base
    warm-ups included) — the rate the CI gate holds at >= 0.30."""
    processor = XQueryProcessor(store=store, default_doc="auction.xml")
    processor.backend  # pay the bulk load outside the timed windows
    view_ns = 0
    full_ns = 0
    calls = 0
    variant_calls = 0
    with metrics_scope() as metrics:
        with QueryService(
            store=store,
            default_doc="auction.xml",
            workers=1,
            view_admit_after=2,
        ) as service:
            for base, variants in VIEW_TEMPLATES:
                for _ in range(2):  # second execution admits the view
                    service.execute(base)
                    calls += 1
                for variant in variants:
                    for _ in range(repeat):
                        start = time.perf_counter_ns()
                        served = service.execute(variant)
                        view_ns += time.perf_counter_ns() - start
                        calls += 1
                        variant_calls += 1
                        start = time.perf_counter_ns()
                        expected = processor.execute(
                            variant, engine="joingraph-sql"
                        )
                        full_ns += time.perf_counter_ns() - start
                        if list(served) != list(expected):
                            raise AssertionError(
                                f"view-tier answer diverges for {variant!r}"
                            )
                        if service.serialize(served) != service.serialize(
                            expected
                        ):
                            raise AssertionError(
                                "view-tier serialization diverges for "
                                f"{variant!r}"
                            )
            view_stats = service.views.stats() if service.views else None
        view_hits = metrics.counters.get("service.cache.view_hit", 0)
    return {
        "templates": len(VIEW_TEMPLATES),
        "variants": sum(len(variants) for _, variants in VIEW_TEMPLATES),
        "repeat": repeat,
        "calls": calls,
        "variant_calls": variant_calls,
        "view_hits": int(view_hits),
        "view_hit_rate": view_hits / calls if calls else 0.0,
        "variant_view_rate": (
            view_hits / variant_calls if variant_calls else 0.0
        ),
        "view_seconds": view_ns / 1e9,
        "full_compile_seconds": full_ns / 1e9,
        "speedup_vs_full_compile": (
            full_ns / view_ns if view_ns else float("inf")
        ),
        "verified": True,
        "manager": view_stats,
    }


def run_service_bench(
    factor: float = 0.01,
    repeat: int = 40,
    workers: Sequence[int] = (1, 2, 4, 8),
    queries: Sequence[str] = DEFAULT_QUERY_SET,
    quick: bool = False,
    executor: str = "thread",
) -> dict[str, Any]:
    """Run the whole grid; returns the ``BENCH_service.json`` document.

    ``quick`` shrinks the document and the repeat count to CI-smoke
    size (seconds, not minutes) while keeping every verification.
    ``executor`` selects what the worker-scaling curve measures:
    ``"thread"`` (default) scales the shared-cache thread pool,
    ``"process"`` scales worker *processes* over the zero-copy shard
    attach (results verified byte-identical either way).
    """
    if executor not in ("thread", "process"):
        raise ValueError(
            f"executor must be 'thread' or 'process', got {executor!r}"
        )
    if quick:
        factor = min(factor, 0.004)
        repeat = min(repeat, 8)
        workers = tuple(w for w in workers if w <= 4) or (1, 4)
    texts = [XMARK_QUERIES[name].text for name in queries]
    tree = generate_xmark(XMarkConfig(factor=factor))
    store = DocumentStore()
    store.load_tree(tree)
    calls = repeat * len(texts)

    with metrics_scope():
        baseline_s, reference, baseline_latency = _baseline_throughput(
            store, texts, repeat
        )

    with metrics_scope() as metrics:
        service = QueryService(
            store=store, default_doc="auction.xml", workers=max(workers)
        )
        with service:
            cached_s, cached_results, cached_latency = _cached_throughput(
                service, texts, repeat
            )
            cache_stats = service.cache.stats()
        counters = metrics.snapshot()["counters"]
    _verify(reference, cached_results, "cached")

    scaling = []
    for width in workers:
        with metrics_scope():
            if executor == "process":
                worker_s, worker_results, worker_latency = (
                    _process_worker_throughput(tree, texts, repeat, width)
                )
            else:
                worker_s, worker_results, worker_latency = (
                    _worker_throughput(store, texts, repeat, width)
                )
        _verify(reference, worker_results, f"workers={width}")
        scaling.append(
            {
                "workers": width,
                "seconds": worker_s,
                "executor": executor,
                "queries_per_second": calls / worker_s if worker_s else 0.0,
                "latency_ms": latency_summary_ms(worker_latency),
            }
        )

    flight_overhead = measure_flight_overhead(store, texts)

    return {
        "schema": SCHEMA,
        "metadata": {
            "workload": "xmark",
            "factor": factor,
            "nodes": len(store.table),
            "queries": list(queries),
            "repeat": repeat,
            "calls_per_mode": calls,
            "executor": executor,
            "cpu_count": os.cpu_count(),
            "quick": quick,
        },
        "uncached_baseline": {
            "seconds": baseline_s,
            "queries_per_second": calls / baseline_s if baseline_s else 0.0,
            "latency_ms": latency_summary_ms(baseline_latency),
        },
        "cached": {
            "seconds": cached_s,
            "queries_per_second": calls / cached_s if cached_s else 0.0,
            "latency_ms": latency_summary_ms(cached_latency),
            "cache": cache_stats,
            "counters": {
                name: value
                for name, value in counters.items()
                if name.startswith("service.")
            },
        },
        "speedup": (baseline_s / cached_s) if cached_s else float("inf"),
        "canonical": _variant_workload(store),
        "views": _views_workload(store),
        "scaling": scaling,
        "flight_overhead": flight_overhead,
    }


def _verify(
    reference: dict[str, list[Any]],
    observed: dict[str, list[Any]],
    mode: str,
) -> None:
    for query, expected in reference.items():
        if observed[query] != expected:
            raise AssertionError(
                f"{mode} results diverge from the uncached baseline "
                f"for query {query!r}"
            )


def format_service_bench(report: dict[str, Any]) -> str:
    """Human-readable rendering of the benchmark document."""
    meta = report["metadata"]
    base = report["uncached_baseline"]
    cached = report["cached"]

    def pct(mode: dict[str, Any]) -> str:
        latency = mode.get("latency_ms")
        if not latency or not latency.get("count"):
            return ""
        return (
            f"  p50 {latency['p50']:.2f} / p95 {latency['p95']:.2f} / "
            f"p99 {latency['p99']:.2f} ms"
        )

    lines = [
        f"service bench — xmark factor {meta['factor']} "
        f"({meta['nodes']} nodes), {meta['calls_per_mode']} calls/mode",
        f"  uncached baseline : {base['queries_per_second']:8.1f} q/s"
        f"  ({base['seconds']:.3f}s){pct(base)}",
        f"  cached (1 thread) : {cached['queries_per_second']:8.1f} q/s"
        f"  ({cached['seconds']:.3f}s){pct(cached)}",
        f"  speedup           : {report['speedup']:8.1f}x"
        "  (compiled-plan cache + prepared statements)",
        (
            "  scaling (worker processes over the zero-copy shard "
            "attach):"
            if meta.get("executor") == "process"
            else "  scaling (run_many over the shared-cache pool):"
        ),
    ]
    for point in report["scaling"]:
        lines.append(
            f"    {point['workers']:2d} worker(s)    : "
            f"{point['queries_per_second']:8.1f} q/s{pct(point)}"
        )
    overhead = report.get("flight_overhead")
    if overhead is not None:
        lines.append(
            f"  flight recorder   : {overhead['overhead_pct']:+.2f}% overhead"
            f"  (on {overhead['enabled_seconds'] * 1e3:.2f}ms vs "
            f"off {overhead['disabled_seconds'] * 1e3:.2f}ms per mix pass, "
            f"best of {overhead['trials']} interleaved pairs)"
        )
    stats = cached["cache"]
    lines.append(
        f"  cache             : {stats['hits']} hits / "
        f"{stats['misses']} misses / {stats['evictions']} evictions"
    )
    canonical = report.get("canonical")
    if canonical is not None:
        lines.append(
            "  template variants : "
            f"{canonical['exact_hit_rate']:.0%} exact / "
            f"{canonical['canonical_hit_rate']:.0%} canonical hits "
            f"({canonical['served_without_compile_rate']:.0%} served "
            "without a compile)"
        )
    views = report.get("views")
    if views is not None:
        lines.append(
            "  materialized views: "
            f"{views['view_hits']} view hit(s) over {views['calls']} calls "
            f"({views['view_hit_rate']:.0%} view-tier), "
            f"{views['speedup_vs_full_compile']:.1f}x vs full compile, "
            f"byte-verified={views['verified']}"
        )
    return "\n".join(lines)
