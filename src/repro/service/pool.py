"""A thread-safe pool of SQLite connections over one shared database.

One in-memory SQLite instance cannot be driven from N threads through
a single connection — sqlite3 serializes access per connection, so the
"SQL workhorse" idles while Python queues up behind it.  The pool
instead opens the database in *shared-cache* mode
(``file:<name>?mode=memory&cache=shared``):

- a **primary** connection creates the database, bulk-loads the ``doc``
  encoding once (single transaction + load pragmas, see
  :meth:`SQLiteBackend._load_inner`) and keeps the instance alive for
  the pool's lifetime;
- every worker thread gets its **own** connection to the same instance
  via :meth:`backend` — sqlite3 releases the GIL inside
  ``sqlite3_step``, so join-graph scans genuinely overlap;
- worker connections run with ``PRAGMA read_uncommitted`` so the
  read-only serving workload never waits on shared-cache table locks,
  and an enlarged ``cached_statements`` budget so repeated queries
  reuse their prepared statements instead of re-parsing the SQL.

Pools are immutable snapshots of one store version.  Reloading a
document retires the pool (:meth:`retire`): in-flight queries finish
against the old snapshot (lease counting), and the last lease closes
every connection.
"""

from __future__ import annotations

import itertools
import threading

from repro.errors import PoolRetiredError
from repro.faults.injector import on_lease as _fault_on_lease
from repro.infoset.encoding import DocTable
from repro.obs import get_metrics
from repro.sql.backend import SQLiteBackend

__all__ = ["BackendPool"]

#: distinct shared-cache database names per pool instance, so two pools
#: in one process never see each other's data
_POOL_IDS = itertools.count()


class BackendPool:
    """Per-thread :class:`SQLiteBackend` connections over one
    shared-cache in-memory database, loaded once.

    Parameters
    ----------
    table:
        The document table to bulk-load into the shared instance.
    indexes:
        Index set for the load (defaults to the paper's Table 6 set).
    cached_statements:
        Per-connection prepared-statement cache size (the serving
        workload repeats a small set of statements, so a generous
        budget keeps every hot statement prepared).
    """

    def __init__(
        self,
        table: DocTable,
        indexes: dict[str, tuple[str, ...]] | None = None,
        *,
        cached_statements: int = 512,
    ):
        self.name = f"repro-pool-{next(_POOL_IDS)}"
        self._uri = f"file:{self.name}?mode=memory&cache=shared"
        self._indexes = indexes
        self._cached_statements = cached_statements
        self._lock = threading.Lock()
        self._local = threading.local()
        self._retired = False
        self._closed = False
        self._leases = 0
        self._primary = SQLiteBackend(
            table,
            indexes,
            database=self._uri,
            uri=True,
            cached_statements=cached_statements,
        )
        self._connections: list[SQLiteBackend] = [self._primary]
        get_metrics().gauge("service.pool.connections", 1)

    @property
    def connection_count(self) -> int:
        with self._lock:
            return len(self._connections)

    @property
    def retired(self) -> bool:
        """Has this snapshot been retired?  A retired pool takes no new
        leases; the owning service reacts by building a fresh pool."""
        with self._lock:
            return self._retired

    @property
    def leases(self) -> int:
        with self._lock:
            return self._leases

    # -- per-thread connections ----------------------------------------

    def backend(self) -> SQLiteBackend:
        """This thread's connection to the shared database (opened on
        first use)."""
        backend: SQLiteBackend | None = getattr(self._local, "backend", None)
        if backend is None:
            with self._lock:
                if self._closed:
                    raise RuntimeError(f"backend pool {self.name} is closed")
                backend = SQLiteBackend(
                    None,
                    self._indexes,
                    database=self._uri,
                    uri=True,
                    load=False,
                    cached_statements=self._cached_statements,
                )
                # shared-cache readers take table-level read locks;
                # read-uncommitted skips them — safe here because the
                # snapshot is never written after the bulk load
                backend.connection.execute("PRAGMA read_uncommitted=ON")
                self._connections.append(backend)
                get_metrics().gauge(
                    "service.pool.connections", len(self._connections)
                )
            self._local.backend = backend
        return backend

    def discard_backend(self) -> None:
        """Drop this thread's connection (closing it if still open) so
        the next :meth:`backend` call opens a fresh one — the recovery
        step after connection death.  Safe to call when the thread has
        no connection yet."""
        backend: SQLiteBackend | None = getattr(self._local, "backend", None)
        if backend is None:
            return
        self._local.backend = None
        with self._lock:
            if backend in self._connections:
                self._connections.remove(backend)
            count = len(self._connections)
        backend.close()
        metrics = get_metrics()
        metrics.count("service.pool.discarded_connections")
        metrics.gauge("service.pool.connections", count)

    # -- lifecycle ------------------------------------------------------

    def lease(self) -> "BackendPool":
        """Mark one in-flight query on this snapshot; pair with
        :meth:`release`.  A retired pool stays alive (connections open)
        until its last lease is released, but refuses *new* leases with
        :class:`PoolRetiredError` — otherwise a steady caller could
        keep a retired snapshot alive (and served) forever."""
        # the chaos hook fires outside the lock (an injected
        # retirement race calls retire(), which needs it) and before
        # the count moves, so a refused lease can never leak a count
        _fault_on_lease(self)
        with self._lock:
            if self._closed:
                raise RuntimeError(f"backend pool {self.name} is closed")
            if self._retired:
                raise PoolRetiredError(
                    f"backend pool {self.name} is retired"
                )
            self._leases += 1
        return self

    def release(self) -> None:
        with self._lock:
            if self._leases <= 0:
                raise RuntimeError(
                    f"backend pool {self.name}: release without a lease"
                )
            self._leases -= 1
            close_now = self._retired and self._leases <= 0
        if close_now:
            self.close()

    def retire(self) -> None:
        """Graceful invalidation: no new leases will be taken by the
        owning service; the pool closes itself once in-flight queries
        drain (immediately when idle)."""
        with self._lock:
            self._retired = True
            close_now = self._leases <= 0 and not self._closed
        if close_now:
            self.close()

    def close(self) -> None:
        """Close every connection (the shared in-memory instance is
        freed when the last connection drops)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections, self._connections = self._connections, []
        for backend in connections:
            backend.close()
        get_metrics().gauge("service.pool.connections", 0)

    def __enter__(self) -> "BackendPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
