"""Stable diagnostic codes (``JGI001``…) and the report machinery.

Every defect the static-analysis subsystem can detect has one stable,
documented code so that tests, CI logs and bug reports can refer to it
unambiguously (see ``docs/analysis.md`` for the full catalog).  Codes
are grouped by decade:

====== =====================================================
JGI0xx structural plan defects (DAG shape, operator contracts)
JGI01x property-inference defects (icols / const / key / set)
JGI02x data-level defects (properties violated on real tables)
JGI03x rewrite-rule defects (found by the per-step sanitizer)
JGI04x generated-SQL defects (join-graph block linter)
JGI05x pipeline-level defects (codegen / engine disagreement)
JGI06x containment-analyzer cross-checks (pattern oracle)
====== =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: code -> (slug, one-line description)
CODES: dict[str, tuple[str, str]] = {
    # -- structural (mapped from dagutils.structural_violations kinds) --
    "JGI001": ("plan-cycle", "the plan graph contains a cycle"),
    "JGI002": ("operator-arity", "operator has the wrong number of inputs"),
    "JGI003": ("join-overlap", "join/cross operand schemas overlap"),
    "JGI004": ("missing-column", "operator references a column its input lacks"),
    "JGI005": ("project-malformed", "projection duplicates or drops every output"),
    "JGI006": ("generated-collision", "generated @/#/% column malformed or colliding"),
    "JGI007": ("littable-arity", "literal table row arity mismatch"),
    "JGI008": ("serialize-contract", "Serialize item/pos columns missing from input"),
    "JGI009": ("shared-mutation", "shared node mutated into a conflicting schema"),
    "JGI010": ("inner-serialize", "Serialize operator below the plan root"),
    # -- property inference --------------------------------------------
    "JGI011": ("props-missing", "node absent from the supplied PlanProperties"),
    "JGI012": ("icols-mismatch", "inferred icols disagree with re-derivation"),
    "JGI013": ("icols-out-of-schema", "icols claims a column outside the schema"),
    "JGI014": ("const-mismatch", "inferred constants disagree with re-derivation"),
    "JGI015": ("key-out-of-schema", "candidate key contains a non-schema column"),
    "JGI016": ("set-mismatch", "inferred set property disagrees with re-derivation"),
    "JGI017": ("infer-failed", "property inference raised an exception"),
    # -- data-level ----------------------------------------------------
    "JGI020": ("data-schema-mismatch", "evaluated table schema differs from plan schema"),
    "JGI021": ("const-violated", "claimed constant column is not constant in the data"),
    "JGI022": ("key-violated", "claimed candidate key has duplicate values"),
    "JGI023": ("distinct-violated", "Distinct output contains duplicate rows"),
    # -- rewrite sanitizer ---------------------------------------------
    "JGI030": ("rule-invalid-plan", "rewrite rule produced a structurally invalid plan"),
    "JGI031": ("rule-semantics-changed", "rewrite rule changed the query result"),
    # -- SQL lint ------------------------------------------------------
    "JGI040": ("sql-unbound-alias", "SQL references an alias the FROM clause never binds"),
    "JGI041": ("sql-unknown-column", "SQL references a column the doc table lacks"),
    "JGI042": ("sql-duplicate-alias", "FROM clause binds the same alias twice"),
    "JGI043": ("sql-unused-alias", "FROM clause binds an alias nothing references"),
    "JGI044": ("sql-distinct-order-mismatch", "ORDER BY term missing from the DISTINCT select list"),
    "JGI045": ("sql-select-alias-clash", "SELECT list exposes the same output alias twice"),
    "JGI046": ("sql-item-alias-missing", "declared item alias absent from the select list"),
    "JGI047": ("sql-malformed", "generated SQL does not parse as a single join-graph block"),
    # -- pipeline ------------------------------------------------------
    "JGI050": ("engines-disagree", "execution engines return different results"),
    "JGI051": ("codegen-failed", "isolated plan could not be rendered as one SQL block"),
    "JGI052": ("compile-failed", "compilation or isolation raised an error"),
    "JGI053": ("not-join-graph", "isolated plan did not reach join-graph shape"),
    # -- containment-analyzer cross-checks -----------------------------
    "JGI060": ("rule-pattern-mismatch", "rewrite step result disagrees with the containment analyzer's pattern evaluation"),
    "JGI061": ("plan-pattern-mismatch", "initial plan result disagrees with the containment analyzer's pattern evaluation"),
}

#: dagutils.PlanViolation.kind -> diagnostic code
VIOLATION_CODES: dict[str, str] = {
    "cycle": "JGI001",
    "arity": "JGI002",
    "join-overlap": "JGI003",
    "missing-column": "JGI004",
    "project-duplicate": "JGI005",
    "project-empty": "JGI005",
    "generated-collision": "JGI006",
    "rank-empty": "JGI006",
    "littable-arity": "JGI007",
    "serialize-contract": "JGI008",
    "shared-mutation": "JGI009",
    "inner-serialize": "JGI010",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the analysis subsystem."""

    code: str
    message: str
    severity: str = "error"  # "error" | "warning"
    where: str = ""  # operator label, rule name, or SQL snippet

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def slug(self) -> str:
        return CODES[self.code][0]

    def render(self) -> str:
        location = f" [{self.where}]" if self.where else ""
        return f"{self.code} {self.slug}{location}: {self.message}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def errors(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """The error-severity subset of ``diagnostics``."""
    return [d for d in diagnostics if d.severity == "error"]


@dataclass
class DiagnosticReport:
    """Diagnostics grouped per analyzed query, renderable as text."""

    entries: list[tuple[str, list[Diagnostic]]] = field(default_factory=list)

    def add(self, name: str, diagnostics: list[Diagnostic]) -> None:
        self.entries.append((name, diagnostics))

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return [d for _, ds in self.entries for d in ds]

    @property
    def error_count(self) -> int:
        return len(errors(self.diagnostics))

    @property
    def warning_count(self) -> int:
        return len(self.diagnostics) - len(errors(self.diagnostics))

    def render(self) -> str:
        lines: list[str] = []
        for name, diagnostics in self.entries:
            status = "ok" if not diagnostics else (
                f"{len(errors(diagnostics))} error(s), "
                f"{len(diagnostics) - len(errors(diagnostics))} warning(s)"
            )
            lines.append(f"{name}: {status}")
            for diagnostic in diagnostics:
                lines.append(f"  {diagnostic.render()}")
        lines.append(
            f"-- {len(self.entries)} quer{'y' if len(self.entries) == 1 else 'ies'} "
            f"checked, {self.error_count} error(s), "
            f"{self.warning_count} warning(s)"
        )
        return "\n".join(lines)
