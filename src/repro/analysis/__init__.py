"""Static analysis over algebra plan DAGs and generated SQL.

The subsystem turns latent miscompilations into loud, coded errors
(diagnostic codes ``JGI001``… — see :mod:`repro.analysis.diagnostics`
and ``docs/analysis.md``):

* :func:`check_plan` — deep plan checker: structural operator
  contracts, an independent re-derivation of the Tables 2–5 property
  inference, and optional data-backed verification with the reference
  interpreter;
* :class:`PlanSanitizer` — per-rewrite-step validation wired into the
  isolation engine (``checked=True`` on the pipeline), naming the
  offending Fig. 5 rule on failure;
* :func:`lint_sql` — scope/clause linter for the generated single
  SELECT-DISTINCT-FROM-WHERE-ORDER BY block;
* :func:`lint_query` / :func:`lint_workloads` — the ``repro-xq lint``
  sweep over arbitrary queries or the whole built-in workload corpus.
"""

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticReport,
    errors,
)
from repro.analysis.invariants import (
    check_plan,
    data_diagnostics,
    property_diagnostics,
    structural_diagnostics,
)
from repro.analysis.lint import (
    LintResult,
    lint_compiled,
    lint_query,
    lint_workloads,
)
from repro.analysis.rulecheck import PlanSanitizer
from repro.analysis.sqllint import lint_sql
from repro.errors import SanitizerError

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
    "LintResult",
    "PlanSanitizer",
    "SanitizerError",
    "check_plan",
    "data_diagnostics",
    "errors",
    "lint_compiled",
    "lint_query",
    "lint_sql",
    "lint_workloads",
    "property_diagnostics",
    "structural_diagnostics",
]
