"""Per-step rewrite sanitizer for the isolation engine.

The 19 peephole rules of paper Fig. 5 are only as trustworthy as their
property premises; one unsound application silently miscompiles every
downstream query.  :class:`PlanSanitizer` hooks into
:class:`repro.rewrite.engine.IsolationEngine` and, after **every**
individual rule application,

* runs the deep invariant checker (:func:`repro.analysis.check_plan`)
  on the rewritten plan,
* optionally re-interprets the plan on the (small) fixture documents
  and compares the item sequence against the pre-isolation reference —
  per-step differential testing, and
* when the query falls into the containment analyzer's tree-pattern
  fragment (see :mod:`repro.analysis.containment`), additionally
  compares the interpreted sequence against the *independent* naive
  pattern evaluation of the canonical pattern — a second oracle that
  shares no code with the loop-lifting compiler, so a rule bug and a
  matching interpreter bug cannot mask each other (``JGI060``/
  ``JGI061``).

On failure it raises :class:`repro.errors.SanitizerError` carrying the
diagnostic code, the *name of the offending rule*, and a unified diff
of the plan before/after the application.
"""

from __future__ import annotations

import difflib
from typing import TYPE_CHECKING

from repro.algebra.dagutils import all_nodes, clone_plan, plan_to_text
from repro.algebra.ops import DocScan, LitTable, Operator
from repro.analysis.diagnostics import Diagnostic, errors
from repro.analysis.invariants import check_plan, prune_dead_refs
from repro.errors import SanitizerError
from repro.obs import record_diagnostics

if TYPE_CHECKING:
    from repro.infoset.encoding import DocTable
    from repro.xquery.core import CoreExpr


class PlanSanitizer:
    """Validates every individual rewrite step of an isolation run.

    Parameters
    ----------
    interpret:
        Also check *semantic* equivalence by running the reference
        interpreter after each step and comparing the item sequence
        with the pre-isolation reference.  Rank/pos values are only
        order-isomorphic across rules (9)–(13), so the comparison is on
        the serialized item sequence, which is exactly the observable
        result.
    data:
        Verify const/key property claims against interpreted tables at
        every step (implies evaluating the plan; dominated by
        ``interpret`` cost-wise).
    max_base_rows:
        Interpretation budget: skip the semantic check when the plan's
        base tables (doc store + literals) exceed this many rows.
    """

    def __init__(
        self,
        *,
        interpret: bool = False,
        data: bool = False,
        max_base_rows: int = 600,
    ):
        self.interpret = interpret
        self.data = data
        self.max_base_rows = max_base_rows
        self.steps_checked = 0
        self._reference: list | None = None
        self._pattern_expected: list | None = None

    # -- arming -----------------------------------------------------------

    def set_core(self, core: CoreExpr, table: DocTable) -> None:
        """Arm the containment-analyzer cross-check for the next
        isolation run.

        When ``core`` falls into the tree-pattern fragment, the naive
        pattern evaluator pre-computes the expected item sequence over
        ``table`` — every interpreted plan (initial and per-step) is
        then also compared against this second, compiler-independent
        oracle.  Outside the fragment (or when the pattern is found
        statically unsatisfiable *and* the engines might disagree on
        emptiness shape) the check quietly disarms.
        """
        self._pattern_expected = None
        from repro.analysis.containment import (
            canonicalize,
            evaluate_pattern,
            extract_pattern,
        )

        pattern = extract_pattern(core)
        if pattern is None:
            return
        canonical = canonicalize(pattern)
        self._pattern_expected = evaluate_pattern(canonical, table)

    # -- engine hooks -----------------------------------------------------

    def check_initial(self, root: Operator) -> None:
        """Validate the compiler's output before any rule runs, and
        capture the reference item sequence for the semantic check."""
        self._reference = None
        self._fail_on_errors("<initial plan>", check_plan(root, data=self.data), None)
        if self.interpret and self._within_budget(root):
            from repro.algebra.interpreter import run_plan

            self._reference = run_plan(root)
            if (
                self._pattern_expected is not None
                and self._reference != self._pattern_expected
            ):
                diagnostic = Diagnostic(
                    code="JGI061",
                    message=(
                        f"initial plan disagrees with the pattern oracle: "
                        f"pattern expects {self._pattern_expected[:20]!r}, "
                        f"plan yields {self._reference[:20]!r}"
                    ),
                    where="<initial plan>",
                )
                record_diagnostics([diagnostic])
                raise SanitizerError(
                    diagnostic.render(),
                    code="JGI061",
                    rule="<initial plan>",
                    diagnostics=[diagnostic],
                )

    def snapshot(self, root: Operator) -> Operator:
        """A structure-preserving copy of ``root`` taken before a rule
        application, used for the failure plan-diff."""
        return clone_plan(root)

    def after_step(self, rule: str, before: Operator, after: Operator) -> None:
        """Validate the plan right after one application of ``rule``.

        Intermediate plans may carry icols-dead dangling projection
        entries (``allow_dead_refs``; the engine's final
        ``validate_plan`` is strict) — the semantic check interprets a
        pruned copy, since the reference interpreter is strict."""
        self.steps_checked += 1
        diagnostics = check_plan(after, data=self.data, allow_dead_refs=True)
        self._fail_on_errors(rule, diagnostics, before, after)
        if (
            self.interpret
            and self._reference is not None
            and self._within_budget(after)
        ):
            from repro.algebra.interpreter import run_plan

            result = run_plan(prune_dead_refs(after))
            if (
                self._pattern_expected is not None
                and result != self._pattern_expected
            ):
                diagnostic = Diagnostic(
                    code="JGI060",
                    message=(
                        f"rule ({rule}) disagrees with the pattern oracle: "
                        f"pattern expects {self._pattern_expected[:20]!r}, "
                        f"got {result[:20]!r}"
                    ),
                    where=f"rule {rule}",
                )
                record_diagnostics([diagnostic])
                raise SanitizerError(
                    f"{diagnostic.render()}\n{_plan_diff(before, after)}",
                    code="JGI060",
                    rule=rule,
                    diagnostics=[diagnostic],
                )
            if result != self._reference:
                diagnostic = Diagnostic(
                    code="JGI031",
                    message=(
                        f"rule ({rule}) changed the result: expected "
                        f"{self._reference[:20]!r}, got {result[:20]!r}"
                    ),
                    where=f"rule {rule}",
                )
                record_diagnostics([diagnostic])
                raise SanitizerError(
                    f"{diagnostic.render()}\n{_plan_diff(before, after)}",
                    code="JGI031",
                    rule=rule,
                    diagnostics=[diagnostic],
                )

    # -- internals --------------------------------------------------------

    def _fail_on_errors(
        self,
        rule: str,
        diagnostics: list[Diagnostic],
        before: Operator | None,
        after: Operator | None = None,
    ) -> None:
        broken = errors(diagnostics)
        if not broken:
            return
        details = "\n".join(d.render() for d in broken)
        # a cyclic plan cannot be rendered (the printer would recurse
        # forever), so the diff is omitted for JGI001
        diffable = (
            before is not None
            and after is not None
            and all(d.code != "JGI001" for d in broken)
        )
        diff = f"\n{_plan_diff(before, after)}" if diffable else ""
        record_diagnostics(broken)
        raise SanitizerError(
            f"JGI030 rule ({rule}) produced an invalid plan:\n{details}{diff}",
            code="JGI030",
            rule=rule,
            diagnostics=broken,
        )

    def _within_budget(self, root: Operator) -> bool:
        rows = 0
        seen_stores: set[int] = set()
        for node in all_nodes(root):
            if isinstance(node, DocScan) and id(node.store) not in seen_stores:
                seen_stores.add(id(node.store))
                rows += len(node.store.table)
            elif isinstance(node, LitTable):
                rows += len(node.rows)
        return rows <= self.max_base_rows


def _plan_diff(before: Operator, after: Operator) -> str:
    """Unified diff of the textual plan renderings."""
    diff = difflib.unified_diff(
        plan_to_text(before).splitlines(),
        plan_to_text(after).splitlines(),
        fromfile="plan before rule",
        tofile="plan after rule",
        lineterm="",
    )
    return "\n".join(diff)
