"""Deep plan checker: re-derive schemas and Tables 2–5 properties
independently and cross-check them against the plan.

Layers (each producing :class:`repro.analysis.Diagnostic`\\ s):

1. **structural** — operator contracts over the DAG, delegated to
   :func:`repro.algebra.dagutils.structural_violations` (the single
   source of truth shared with ``validate_plan``): acyclicity, child
   arity, join schema disjointness, referenced-column presence,
   projection output uniqueness, Serialize item/pos presence,
   shared-node mutation hazards.
2. **property** — an *independent* second derivation of ``icols``,
   ``const`` and ``set`` (written edge-function style, deliberately not
   sharing code with :mod:`repro.algebra.properties`) compared for
   exact agreement, plus containment checks (``icols ⊆ columns``,
   every candidate key ⊆ columns) for all four properties.  ``key``
   inference is a heuristic lower bound, so no second derivation can
   demand equality; claimed keys are instead verified on data.
3. **data** (opt-in) — evaluate the plan with the reference
   interpreter and verify the claims on real tables: schemas match,
   constant columns are constant with the claimed value, candidate
   keys are duplicate-free, ``Distinct`` output is duplicate-free.
"""

from __future__ import annotations

from repro.algebra.dagutils import all_nodes, clone_plan, structural_violations
from repro.algebra.expressions import Value
from repro.algebra.ops import (
    Attach,
    Cross,
    Distinct,
    DocScan,
    Join,
    LitTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.algebra.properties import PlanProperties, infer_properties
from repro.analysis.diagnostics import VIOLATION_CODES, Diagnostic


def check_plan(
    root: Operator,
    props: PlanProperties | None = None,
    *,
    data: bool = False,
    max_rows: int = 5000,
    allow_dead_refs: bool = False,
) -> list[Diagnostic]:
    """Run every analysis layer over the DAG rooted at ``root``.

    ``props`` may pass in previously inferred properties (e.g. the ones
    a rewrite rule actually consulted) to be validated; by default a
    fresh inference is checked against the re-derivation.  ``data``
    enables the interpreter-backed layer; tables larger than
    ``max_rows`` are skipped (budget guard, not a failure).
    ``allow_dead_refs`` tolerates icols-dead dangling projection
    entries — the transient states of one-rule-at-a-time
    house-cleaning (see :func:`structural_violations`).
    """
    diagnostics = structural_diagnostics(root, allow_dead_refs=allow_dead_refs)
    if any(d.code == "JGI001" for d in diagnostics):
        return diagnostics  # nothing below terminates on a cyclic plan
    if not any(d.severity == "error" for d in diagnostics):
        diagnostics += property_diagnostics(root, props)
    if data and not any(d.severity == "error" for d in diagnostics):
        if allow_dead_refs:
            # the reference interpreter is strict: evaluate a copy with
            # the (tolerated) dead dangling projection entries pruned
            diagnostics += data_diagnostics(
                prune_dead_refs(root), max_rows=max_rows
            )
        else:
            diagnostics += data_diagnostics(root, props, max_rows=max_rows)
    return diagnostics


def prune_dead_refs(root: Operator) -> Operator:
    """A copy of the plan with dangling projection entries dropped.

    On a plan that passed the ``allow_dead_refs`` structural check,
    every dangling entry is icols-dead, so the pruned copy is
    observably equivalent — and strictly evaluable by the reference
    interpreter.  Pruning cascades bottom-up: dropping a dead output
    may strand (equally dead) entries of a parent projection.
    """
    clone = clone_plan(root)
    for node in all_nodes(clone):  # post-order: children pruned first
        if isinstance(node, Project):
            have = set(node.child.columns)
            if any(old not in have for _, old in node.cols):
                node.cols = tuple(
                    (new, old) for new, old in node.cols if old in have
                )
    return clone


# -- layer 1: structure ------------------------------------------------------


def structural_diagnostics(
    root: Operator, *, allow_dead_refs: bool = False
) -> list[Diagnostic]:
    """Structural violations mapped onto their diagnostic codes."""
    return [
        Diagnostic(
            code=VIOLATION_CODES[violation.kind],
            message=violation.message,
            where=violation.node.label(),
        )
        for violation in structural_violations(
            root, allow_dead_refs=allow_dead_refs
        )
    ]


# -- layer 2: property cross-check -------------------------------------------


def property_diagnostics(
    root: Operator, props: PlanProperties | None = None
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    if props is None:
        try:
            props = infer_properties(root)
        except Exception as error:  # noqa: BLE001 - reported, not masked
            return [
                Diagnostic(
                    code="JGI017",
                    message=f"property inference raised {error!r}",
                    where=root.label(),
                )
            ]

    nodes = all_nodes(root)
    for node in nodes:
        try:
            props.icols(node)
            props.const(node)
            props.keys(node)
            props.set_prop(node)
        except KeyError:
            out.append(
                Diagnostic(
                    code="JGI011",
                    message="node is missing from the supplied plan properties "
                    "(stale inference for a mutated plan?)",
                    where=node.label(),
                )
            )
    if out:
        return out  # the cross-checks below need complete properties

    expected_icols = _derive_icols(root)
    expected_set = _derive_set(root)
    for node in nodes:
        columns = frozenset(node.columns)

        icols = props.icols(node)
        if icols - columns:
            out.append(
                Diagnostic(
                    code="JGI013",
                    message=f"icols {sorted(icols - columns)} outside the "
                    f"schema {sorted(columns)}",
                    where=node.label(),
                )
            )
        if icols != expected_icols[id(node)]:
            out.append(
                Diagnostic(
                    code="JGI012",
                    message=f"icols {sorted(icols)} but re-derivation gives "
                    f"{sorted(expected_icols[id(node)])}",
                    where=node.label(),
                )
            )

        const = props.const(node)
        expected_const = _derive_const(node, {})
        if const != expected_const:
            out.append(
                Diagnostic(
                    code="JGI014",
                    message=f"const {const!r} but re-derivation gives "
                    f"{expected_const!r}",
                    where=node.label(),
                )
            )
        if set(const) - columns:
            out.append(
                Diagnostic(
                    code="JGI014",
                    message=f"const claims columns {sorted(set(const) - columns)} "
                    "outside the schema",
                    where=node.label(),
                )
            )

        for key in props.keys(node):
            if key - columns:
                out.append(
                    Diagnostic(
                        code="JGI015",
                        message=f"candidate key {sorted(key)} contains "
                        f"non-schema columns {sorted(key - columns)}",
                        where=node.label(),
                    )
                )

        if props.set_prop(node) != expected_set[id(node)]:
            out.append(
                Diagnostic(
                    code="JGI016",
                    message=f"set={props.set_prop(node)} but re-derivation "
                    f"gives {expected_set[id(node)]}",
                    where=node.label(),
                )
            )
    return out


def _derive_icols(root: Operator) -> dict[int, frozenset[str]]:
    """Independent top-down re-derivation of Table 2 (``icols``).

    Formulated per edge: ``icols(child) = ⋃ reads(parent) ∩
    cols(child)`` over every incoming DAG edge, seeded at the root.
    """
    order = all_nodes(root)
    icols: dict[int, frozenset[str]] = {id(n): frozenset() for n in order}
    if isinstance(root, Serialize):
        icols[id(root)] = frozenset((root.pos, root.item))
    else:
        icols[id(root)] = frozenset(root.columns)

    for node in reversed(order):  # parents before children
        needed = icols[id(node)]
        for slot, child in enumerate(node.children):
            reads = _edge_reads(node, slot, needed)
            icols[id(child)] |= reads & frozenset(child.columns)
    return icols


def _edge_reads(
    parent: Operator, slot: int, needed: frozenset[str]
) -> frozenset[str]:
    """Columns the ``slot``-th input of ``parent`` must deliver, given
    that ``parent`` itself must deliver ``needed``."""
    if isinstance(parent, Serialize):
        return frozenset((parent.item, parent.pos))
    if isinstance(parent, Project):
        return frozenset(old for new, old in parent.cols if new in needed)
    if isinstance(parent, Select):
        return needed | parent.pred.cols()
    if isinstance(parent, Join):
        return needed | parent.pred.cols()
    if isinstance(parent, Cross):
        return needed
    if isinstance(parent, Distinct):
        return needed
    if isinstance(parent, (Attach, RowId)):
        return needed - {parent.col}
    if isinstance(parent, RowRank):
        return (needed - {parent.col}) | frozenset(parent.order)
    raise TypeError(f"icols re-derivation: unknown operator {parent.label()}")


def _derive_set(root: Operator) -> dict[int, bool]:
    """Independent top-down re-derivation of Table 5 (``set``):
    ``set(child) = ⋀ contribution(parent)`` over every incoming edge,
    where δ contributes True, the order-sensitive ⌐ and # contribute
    False, and every other operator passes its own ``set`` down."""
    order = all_nodes(root)
    setp: dict[int, bool] = {id(n): True for n in order}
    setp[id(root)] = False
    for node in reversed(order):
        for child in node.children:
            if isinstance(node, Distinct):
                contribution = True
            elif isinstance(node, (Serialize, RowId)):
                contribution = False
            else:
                contribution = setp[id(node)]
            setp[id(child)] = setp[id(child)] and contribution
    return setp


def _derive_const(
    node: Operator, memo: dict[int, dict[str, Value]]
) -> dict[str, Value]:
    """Independent bottom-up re-derivation of Table 3 (``const``)."""
    hit = memo.get(id(node))
    if hit is not None:
        return hit
    result: dict[str, Value]
    if isinstance(node, LitTable):
        result = {}
        if node.rows:
            for i, name in enumerate(node.names):
                witness = node.rows[0][i]
                if all(row[i] == witness for row in node.rows):
                    result[name] = witness
    elif isinstance(node, DocScan):
        result = {}
    elif isinstance(node, Project):
        below = _derive_const(node.child, memo)
        result = {
            new: below[old] for new, old in node.cols if old in below
        }
    elif isinstance(node, Attach):
        result = dict(_derive_const(node.child, memo))
        result[node.col] = node.value
    elif isinstance(node, (Join, Cross)):
        result = dict(_derive_const(node.children[0], memo))
        result.update(_derive_const(node.children[1], memo))
    else:  # Serialize, Select, Distinct, RowId, RowRank pass through
        result = dict(_derive_const(node.children[0], memo))
        if isinstance(node, Serialize):  # … Serialize narrows the schema
            schema = set(node.columns)
            result = {c: v for c, v in result.items() if c in schema}
    memo[id(node)] = result
    return result


# -- layer 3: data-backed verification ----------------------------------------


def data_diagnostics(
    root: Operator,
    props: PlanProperties | None = None,
    *,
    max_rows: int = 5000,
) -> list[Diagnostic]:
    """Evaluate the plan with the reference interpreter and verify the
    inferred properties against the actual tables.  Property inference
    must be *sound* (a claimed constant/key holds on every instance) —
    completeness is not checked (missing a key is merely a lost
    optimization)."""
    from repro.algebra.interpreter import Table, evaluate

    if props is None:
        props = infer_properties(root)
    out: list[Diagnostic] = []
    tables: dict[int, Table] = {}
    evaluate(root, tables)
    for node in all_nodes(root):
        table = tables[id(node)]
        if tuple(table.columns) != tuple(node.columns):
            out.append(
                Diagnostic(
                    code="JGI020",
                    message=f"evaluates to schema {list(table.columns)}, "
                    f"plan claims {list(node.columns)}",
                    where=node.label(),
                )
            )
            continue
        if len(table.rows) > max_rows:
            continue  # budget guard

        index = {name: i for i, name in enumerate(table.columns)}
        for name, value in props.const(node).items():
            bad = next(
                (row for row in table.rows if row[index[name]] != value), None
            )
            if bad is not None:
                out.append(
                    Diagnostic(
                        code="JGI021",
                        message=f"column {name!r} claimed constant {value!r} "
                        f"but holds {bad[index[name]]!r}",
                        where=node.label(),
                    )
                )

        for key in props.keys(node):
            positions = [index[c] for c in sorted(key)]
            seen = set()
            violated = False
            for row in table.rows:
                probe = tuple(row[i] for i in positions)
                if probe in seen:
                    violated = True
                    break
                seen.add(probe)
            if violated:
                out.append(
                    Diagnostic(
                        code="JGI022",
                        message=f"candidate key {sorted(key) or '∅'} has "
                        "duplicate values in the evaluated table",
                        where=node.label(),
                    )
                )

        if isinstance(node, Distinct) and len(set(table.rows)) != len(table.rows):
            out.append(
                Diagnostic(
                    code="JGI023",
                    message="Distinct output contains duplicate rows",
                    where=node.label(),
                )
            )
    return out
