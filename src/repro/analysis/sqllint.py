"""Linter for the generated single-block join-graph SQL.

:func:`generate_join_graph_sql` emits exactly one dialect — ``SELECT
[DISTINCT] … FROM doc AS d1, … WHERE … ORDER BY …`` — so the linter
can be precise: it parses the block with the same lexical conventions
the generator uses and verifies scope and clause-compatibility rules
an RDBMS would otherwise report at runtime (or worse, silently
mis-execute):

* every ``dN`` alias referenced anywhere is bound in ``FROM`` exactly
  once (``JGI040`` / ``JGI042``);
* every qualified column is a column of the ``doc`` encoding
  (``JGI041``);
* every bound alias is referenced somewhere — an unreferenced ``doc``
  instance multiplies result cardinality (``JGI043``);
* ``SELECT DISTINCT`` + ``ORDER BY`` requires every order term to
  appear in the select list, per SQL semantics (``JGI044``);
* the declared output aliases are unique and contain the item alias
  (``JGI045`` / ``JGI046``).
"""

from __future__ import annotations

import re

from repro.algebra.ops import DOC_COLUMNS
from repro.analysis.diagnostics import Diagnostic
from repro.sql.codegen import SQLQuery

_FROM_BINDING = re.compile(r"\bdoc\s+AS\s+(\w+)", re.IGNORECASE)
_QUALIFIED_REF = re.compile(r"\b(d\d+)\.(\w+)\b")
_CLAUSE_SPLIT = re.compile(
    r"^(SELECT\s+(?:DISTINCT\s+)?)(?P<select>.*?)"
    r"(?:\nFROM\s+(?P<from>.*?))?"
    r"(?:\nWHERE\s+(?P<where>.*?))?"
    r"(?:\nORDER BY\s+(?P<order>.*?))?$",
    re.DOTALL,
)


def lint_sql(query: SQLQuery) -> list[Diagnostic]:
    """Lint one generated join-graph block (see module docstring)."""
    out: list[Diagnostic] = []
    match = _CLAUSE_SPLIT.match(query.text)
    if match is None:
        return [
            Diagnostic(
                code="JGI047",
                message="query does not parse as a single SELECT block",
                where=query.text.splitlines()[0][:60],
            )
        ]

    from_clause = match.group("from") or ""
    bound = _FROM_BINDING.findall(from_clause)
    duplicates = sorted({a for a in bound if bound.count(a) > 1})
    for alias in duplicates:
        out.append(
            Diagnostic(
                code="JGI042",
                message=f"alias {alias!r} bound more than once in FROM",
                where=alias,
            )
        )
    bound_set = set(bound)

    referenced: set[str] = set()
    for clause_name in ("select", "where", "order"):
        clause = match.group(clause_name) or ""
        for alias, column in _QUALIFIED_REF.findall(clause):
            referenced.add(alias)
            if alias not in bound_set:
                out.append(
                    Diagnostic(
                        code="JGI040",
                        message=f"{clause_name.upper()} references {alias}.{column} "
                        "but FROM never binds the alias",
                        where=f"{alias}.{column}",
                    )
                )
            if column not in DOC_COLUMNS:
                out.append(
                    Diagnostic(
                        code="JGI041",
                        message=f"{alias}.{column} is not a doc table column "
                        f"(have {', '.join(DOC_COLUMNS)})",
                        where=f"{alias}.{column}",
                    )
                )

    for alias in sorted(bound_set - referenced):
        out.append(
            Diagnostic(
                code="JGI043",
                message=f"FROM binds {alias!r} but no clause references it "
                "(cartesian cardinality multiplier)",
                severity="warning",
                where=alias,
            )
        )

    select_exprs = _select_expressions(match.group("select") or "")
    aliases = query.select_aliases
    clashes = sorted({a for a in aliases if aliases.count(a) > 1})
    for alias in clashes:
        out.append(
            Diagnostic(
                code="JGI045",
                message=f"output alias {alias!r} exposed more than once",
                where=alias,
            )
        )
    if query.item_alias not in aliases:
        out.append(
            Diagnostic(
                code="JGI046",
                message=f"item alias {query.item_alias!r} not among the "
                f"select aliases {aliases}",
                where=query.item_alias,
            )
        )

    if query.distinct:
        for term in query.order_by:
            if term not in select_exprs:
                out.append(
                    Diagnostic(
                        code="JGI044",
                        message=f"ORDER BY term {term!r} does not appear in "
                        "the SELECT DISTINCT list",
                        where=term,
                    )
                )
    return out


def _select_expressions(select_clause: str) -> set[str]:
    """The expression parts of a ``expr AS alias, …`` select list.

    The generator never emits commas inside an expression (the
    expression language is columns, constants, ``+`` and comparisons),
    so a top-level split is exact."""
    out: set[str] = set()
    for item in select_clause.split(", "):
        expr, _, _alias = item.rpartition(" AS ")
        if expr:
            out.add(expr.strip())
    return out
