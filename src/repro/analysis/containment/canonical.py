"""Canonical (minimized, sorted) tree patterns and stable keys.

:func:`canonicalize` rewrites a raw extracted pattern into a canonical
representative of its equivalence class, using only transformations
that provably preserve the pattern's value on every store:

* **self-step merging** — a ``self`` edge binds the same instance node
  as its parent, so its test, constraints, branches and selection fold
  into the parent (an unsatisfiable merged test empties the pattern);
* **descendant-or-self splicing** — a bare ``dos::node()`` hop with a
  single downward continuation is the ``//`` desugaring; the two edges
  compose into one ``descendant``-style edge;
* **unsatisfiability** — an empty kind set anywhere (branch or spine)
  makes the pattern statically empty: a false condition filters
  everything, an empty spine selects nothing;
* **redundant-branch elimination** — a branch ``b`` (a subtree without
  the selected node) is dropped when the pattern embeds into its own
  ``b``-less version via self-homomorphism: the remaining branches
  already imply ``b`` (this removes duplicated predicates and
  predicates subsumed by stronger ones);
* **child ordering** — children sort by their canonical serialization,
  making predicate order irrelevant.

:func:`pattern_key` serializes a canonical pattern into a stable
string: two queries with equal keys have equal canonical patterns and
are therefore equivalent (the converse need not hold — key inequality
is not a separation proof).  :func:`canonical_key` composes extraction
+ canonicalization + serialization for Core expressions and is what
the compiled-query cache keys plans on.
"""

from __future__ import annotations

from repro.analysis.containment.hom import find_homomorphism
from repro.analysis.containment.pattern import (
    ALL_KINDS,
    PNode,
    TreePattern,
    extract_pattern,
    pattern_nodes,
)
from repro.xmltree.model import NodeKind
from repro.xquery.core import CoreExpr

__all__ = ["canonical_key", "canonicalize", "pattern_key"]

_ATTR = int(NodeKind.ATTR)

_EMPTY_KEY = "empty"

#: axis composition over a spliced ``dos::node()`` hop
_SPLICE: dict[str, str] = {
    "child": "descendant",
    "descendant": "descendant",
    "descendant-or-self": "descendant-or-self",
}


def _normalize(node: PNode) -> PNode | None:
    """Merge self edges, splice bare dos hops, detect unsatisfiable
    tests.  Returns ``None`` when the node (and with it the whole
    pattern) is unsatisfiable."""
    children: list[PNode] = []
    for child in node.children:
        normalized = _normalize(child)
        if normalized is None:
            return None
        children.append(normalized)
    node.children = children

    while True:
        self_child = next(
            (c for c in node.children if c.axis == "self"), None
        )
        if self_child is None:
            break
        node.children.remove(self_child)
        node.kinds = node.kinds & self_child.kinds
        if self_child.name is not None:
            if node.name is None:
                node.name = self_child.name
            elif node.name != self_child.name:
                return None  # two different required names
        node.constraints = tuple(
            dict.fromkeys((*node.constraints, *self_child.constraints))
        )
        node.children.extend(self_child.children)
        node.selected = node.selected or self_child.selected
        node.fuzzy = node.fuzzy and _ATTR in node.kinds
    if not node.kinds:
        return None

    changed = True
    while changed:
        changed = False
        for position, child in enumerate(node.children):
            if (
                child.axis == "descendant-or-self"
                and child.kinds == ALL_KINDS
                and child.fuzzy
                and child.name is None
                and not child.constraints
                and not child.selected
                and len(child.children) == 1
                and child.children[0].axis in _SPLICE
            ):
                grandchild = child.children[0]
                grandchild.axis = _SPLICE[grandchild.axis]
                node.children[position] = grandchild
                changed = True
                break

    node.constraints = tuple(
        sorted(
            dict.fromkeys(node.constraints),
            key=lambda c: (c[0], isinstance(c[1], str), str(c[1])),
        )
    )
    return node


def _branches(pattern: TreePattern) -> list[tuple[int, int]]:
    """Every removable branch as (preorder parent index, child
    position): subtrees that do not contain the selected node."""
    out: list[tuple[int, int]] = []
    for parent_index, node in enumerate(pattern_nodes(pattern)):
        for position, child in enumerate(node.children):
            if not child.has_selected():
                out.append((parent_index, position))
    return out


def _without_branch(
    pattern: TreePattern, parent_index: int, position: int
) -> TreePattern:
    candidate = pattern.clone()
    parent = pattern_nodes(candidate)[parent_index]
    del parent.children[position]
    return candidate


def _minimize(pattern: TreePattern) -> TreePattern:
    """Drop branches already implied by the rest of the pattern: if the
    pattern self-embeds into the branch-less version, the two are
    equivalent (the branch-less version trivially contains the original,
    and the homomorphism witnesses the converse)."""
    shrinking = True
    while shrinking:
        shrinking = False
        for parent_index, position in _branches(pattern):
            candidate = _without_branch(pattern, parent_index, position)
            if find_homomorphism(pattern, candidate) is not None:
                pattern = candidate
                shrinking = True
                break
    return pattern


def _serialize(node: PNode) -> str:
    kinds = ",".join(str(k) for k in sorted(node.kinds))
    constraints = ";".join(
        f"{op}{'s' if isinstance(v, str) else 'n'}:{v!r}"
        for op, v in node.constraints
    )
    children = "".join(_serialize(child) for child in node.children)
    flags = ("!" if node.selected else "") + ("~" if node.fuzzy else "")
    return (
        f"({node.axis}|{kinds}|{node.name or '*'}|{constraints}|"
        f"{flags}{children})"
    )


def _sort(node: PNode) -> None:
    for child in node.children:
        _sort(child)
    node.children.sort(key=_serialize)


def canonicalize(pattern: TreePattern) -> TreePattern:
    """The canonical representative of ``pattern``'s equivalence class
    (value-preserving on every store; see the module docstring)."""
    uris = tuple(sorted(set(pattern.uris)))
    if pattern.root is None or not uris:
        return TreePattern(uris=(), root=None)
    root = _normalize(pattern.clone().root)
    if root is None:
        return TreePattern(uris=(), root=None)
    minimized = _minimize(TreePattern(uris=uris, root=root))
    assert minimized.root is not None
    _sort(minimized.root)
    return minimized


def pattern_key(pattern: TreePattern) -> str:
    """A stable string key: equal keys imply equivalent patterns."""
    if pattern.root is None:
        return _EMPTY_KEY
    return "\x1f".join(pattern.uris) + "\x1e" + _serialize(pattern.root)


def canonical_key(core: CoreExpr) -> str | None:
    """The canonical cache key of a normalized Core expression, or
    ``None`` when the expression is outside the pattern fragment.

    Two expressions with equal keys have identical canonical tree
    patterns and therefore the same value on every document store —
    the soundness condition for sharing compiled plans between them.
    """
    pattern = extract_pattern(core)
    if pattern is None:
        return None
    return pattern_key(canonicalize(pattern))
