"""Pattern-homomorphism search and independent witness checking.

Containment of tree patterns in the XP\\ :sup:`{/, //, [], *}`
fragment is decided by homomorphism: ``p`` contains ``q`` (every match
of ``q`` on every store is a match of ``p``) whenever there is a
mapping ``h`` from ``p``'s nodes to ``q``'s nodes that sends root to
root and the selected node to the selected node, such that every
``p``-edge is *guaranteed* by the ``q``-tree path between the images
and every ``p``-node test is implied by the image's test.  The search
here is exhaustive over the (small) pattern trees, so a ``None``
answer means "no homomorphism exists", not "gave up".

Guarantees are expressed as path-distance intervals: a ``q``-path from
``h(parent)`` to ``h(node)`` composed of child/descendant/… edges
promises its target lies at a tree distance within ``[lo, hi]``; a
``p``-edge of axis ``child`` is guaranteed iff ``lo == hi == 1``,
``descendant`` iff ``lo >= 1``, and so on.  Soundness rests only on
these local implications — each is a statement about the pre/size/level
axis semantics of ``repro.compiler.axes``.

:func:`verify_witness` re-checks a claimed mapping from scratch
(re-deriving the ``q``-paths and re-testing every implication without
reusing any search state), so a search bug cannot silently produce an
unsound ``CONTAINS`` verdict — the decision procedure re-validates
every witness before returning it.
"""

from __future__ import annotations

from repro.analysis.containment.pattern import (
    PNode,
    TreePattern,
    pattern_nodes,
)
from repro.xmltree.model import NodeKind

__all__ = ["find_homomorphism", "verify_witness"]

_ATTR = int(NodeKind.ATTR)

#: effectively-infinite path distance
_INF = 1 << 30

#: per-edge distance interval contributed by each axis
_EDGE_INTERVAL: dict[str, tuple[int, int]] = {
    "child": (1, 1),
    "attribute": (1, 1),
    "descendant": (1, _INF),
    "descendant-or-self": (0, _INF),
    "self": (0, 0),
}


def _cap(a: int, b: int) -> int:
    return _INF if _INF in (a, b) else a + b


#: (target, lo, hi, lo_attr, hi_attr): the general distance interval of
#: the path, and the interval *conditional on the bound instance being
#: an ATTR row*.  The two differ only in the path's final edge: a fuzzy
#: ``descendant-or-self::node()`` node admits ATTR instances only at
#: distance 0 from its parent (the engine's ``kind <> ATTR OR pre =
#: pre°``), so its edge contributes ``(0, 0)`` instead of ``(0, inf)``
#: when the instance is known to be an attribute.
_Reach = tuple[PNode, int, int, int, int]


def _reachable(node: PNode) -> list[_Reach]:
    """Every node of ``node``'s subtree with the distance intervals its
    tree path from ``node`` guarantees (``node`` itself at ``[0, 0]``)."""
    out: list[_Reach] = [(node, 0, 0, 0, 0)]
    for child in node.children:
        lo_edge, hi_edge = _EDGE_INTERVAL[child.axis]
        lo_attr_edge, hi_attr_edge = (
            (0, 0) if child.fuzzy else (lo_edge, hi_edge)
        )
        for target, lo, hi, lo_attr, hi_attr in _reachable(child):
            if target is child:
                # direct edge: it IS the path's final edge
                out.append(
                    (child, lo_edge, hi_edge, lo_attr_edge, hi_attr_edge)
                )
            else:
                # deeper target: the final edge sits inside the
                # sub-path's conditional interval already
                out.append(
                    (
                        target,
                        lo_edge + lo,
                        _cap(hi_edge, hi),
                        lo_edge + lo_attr,
                        _cap(hi_edge, hi_attr),
                    )
                )
    return out


def _implies(qc: tuple[str, float | str], pc: tuple[str, float | str]) -> bool:
    """Does constraint ``qc`` holding on a node imply ``pc`` holds?

    Constraints are existential over the same node's typed ``data``
    (numeric literal) or untyped ``value`` (string literal) column, so
    implication is plain interval reasoning on the literal — but only
    within one type: a numeric and a string comparison read different
    columns and never imply each other.
    """
    q_op, q_val = qc
    p_op, p_val = pc
    if isinstance(q_val, str) != isinstance(p_val, str):
        return False
    if qc == pc:
        return True
    if isinstance(q_val, str) or isinstance(p_val, str):
        # strings: no order reasoning (collation is the engine's
        # business); only = excludes a differing literal
        return p_op == "!=" and q_op == "=" and q_val != p_val
    if p_op == ">":
        return (q_op in (">", ">=") and q_val >= p_val and (q_op == ">" or q_val > p_val)) or (
            q_op == "=" and q_val > p_val
        )
    if p_op == ">=":
        return (q_op in (">", ">=", "=") and q_val >= p_val)
    if p_op == "<":
        return (q_op in ("<", "<=") and q_val <= p_val and (q_op == "<" or q_val < p_val)) or (
            q_op == "=" and q_val < p_val
        )
    if p_op == "<=":
        return (q_op in ("<", "<=", "=") and q_val <= p_val)
    if p_op == "!=":
        return (
            (q_op == "=" and q_val != p_val)
            or (q_op == ">" and q_val >= p_val)
            or (q_op == "<" and q_val <= p_val)
            or (q_op == ">=" and q_val > p_val)
            or (q_op == "<=" and q_val < p_val)
        )
    return False  # p_op == "=" is only implied by the identical constraint


def _accepts(
    pn: PNode, qn: PNode, lo: int, hi: int, lo_attr: int, hi_attr: int
) -> bool:
    """Is every instance node ``qn`` can bind accepted by ``pn``'s node
    test and constraints?  ``[lo, hi]`` is the guaranteed distance below
    the image of ``pn``'s parent; ``[lo_attr, hi_attr]`` the same
    interval conditional on the instance being an ATTR row (see
    ``_Reach``)."""
    if pn.name is not None and qn.name != pn.name:
        return False
    for pc in pn.constraints:
        if not any(_implies(qc, pc) for qc in qn.constraints):
            return False
    if pn.fuzzy:
        # a fuzzy p-node accepts any of its kinds at any distance —
        # except ATTR, which it admits only at distance zero (the
        # engine's ``kind <> ATTR OR pre = pre°``).  ATTR instances of
        # ``qn`` are themselves pinned to ``[lo_attr, hi_attr]``.
        if not qn.kinds - {_ATTR} <= pn.kinds:
            return False
        if _ATTR in qn.kinds:
            return _ATTR in pn.kinds and hi_attr == 0
        return True
    return qn.kinds <= pn.kinds


def _edge_guaranteed(axis: str, lo: int, hi: int, qn: PNode) -> bool:
    """Does a ``q``-path with distance interval ``[lo, hi]`` to ``qn``
    guarantee the structural relation of a ``p``-edge with ``axis``?"""
    if axis == "child":
        return lo == 1 and hi == 1
    if axis == "attribute":
        # distance-1 ATTR rows are exactly the attributes of the parent
        return lo == 1 and hi == 1 and qn.kinds <= {_ATTR}
    if axis == "descendant":
        return lo >= 1
    if axis == "descendant-or-self":
        return True
    if axis == "self":
        return lo == 0 and hi == 0
    return False


def find_homomorphism(p: TreePattern, q: TreePattern) -> dict[int, int] | None:
    """A containment homomorphism from ``p`` into ``q``, as a mapping
    of preorder node indices (see :func:`pattern_nodes`), or ``None``.

    Both patterns must be satisfiable (non-empty roots); source URIs
    are the caller's concern.  The search is exhaustive: ``None``
    really means no homomorphism exists.
    """
    if p.root is None or q.root is None:
        return None
    p_nodes = pattern_nodes(p)
    q_nodes = pattern_nodes(q)
    p_index = {id(node): i for i, node in enumerate(p_nodes)}
    q_index = {id(node): i for i, node in enumerate(q_nodes)}
    reach: dict[int, list[_Reach]] = {}

    def reachable(qn: PNode) -> list[_Reach]:
        key = q_index[id(qn)]
        if key not in reach:
            reach[key] = _reachable(qn)
        return reach[key]

    memo: dict[tuple[int, int], dict[int, int] | None] = {}

    def embed(pn: PNode, qn: PNode) -> dict[int, int] | None:
        """Map ``pn``'s subtree *below* an already-fixed ``pn -> qn``;
        returns the (partial) index mapping for the children or None."""
        key = (p_index[id(pn)], q_index[id(qn)])
        if key in memo:
            return memo[key]
        mapping: dict[int, int] = {}
        for child in pn.children:
            found: dict[int, int] | None = None
            for target, lo, hi, lo_attr, hi_attr in reachable(qn):
                if child.selected and not target.selected:
                    continue
                if not _edge_guaranteed(child.axis, lo, hi, target):
                    continue
                if not _accepts(child, target, lo, hi, lo_attr, hi_attr):
                    continue
                below = embed(child, target)
                if below is not None:
                    found = {
                        p_index[id(child)]: q_index[id(target)],
                        **below,
                    }
                    break
            if found is None:
                memo[key] = None
                return None
            mapping.update(found)
        memo[key] = mapping
        return mapping

    p_root, q_root = p.root, q.root
    if p_root.selected and not q_root.selected:
        return None
    # the root-to-root binding is a distance-0 "path"
    if not _accepts(p_root, q_root, 0, 0, 0, 0):
        return None
    below = embed(p_root, q_root)
    if below is None:
        return None
    return {0: 0, **below}


def verify_witness(
    p: TreePattern, q: TreePattern, witness: dict[int, int]
) -> list[str]:
    """Independently re-check a claimed homomorphism witness.

    Returns a list of human-readable defects (empty = the witness is
    valid).  Re-derives everything from the two patterns alone: parent
    relations, ``q``-tree paths and their distance intervals, node-test
    and constraint implications, root and output preservation.
    """
    defects: list[str] = []
    p_nodes = pattern_nodes(p)
    q_nodes = pattern_nodes(q)
    if p.root is None or q.root is None:
        return ["witness over an empty pattern"]
    if set(witness) != set(range(len(p_nodes))):
        return ["witness does not map every p-node exactly once"]
    if any(not 0 <= j < len(q_nodes) for j in witness.values()):
        return ["witness maps outside q's node range"]
    if witness[0] != 0:
        defects.append("root is not mapped to root")

    # preorder parent index of every non-root node, for both patterns
    def parents(nodes: list[PNode]) -> dict[int, int]:
        index = {id(node): i for i, node in enumerate(nodes)}
        return {
            index[id(child)]: index[id(node)]
            for node in nodes
            for child in node.children
        }

    p_parent = parents(p_nodes)
    q_parent = parents(q_nodes)

    def q_path(ancestor: int, node: int) -> tuple[int, int, int, int] | None:
        """Distance intervals (general and ATTR-conditional, see
        ``_Reach``) of the q-tree path ancestor -> node, or None if
        ancestor is not on node's root path.  Walking bottom-up, the
        first edge is the path's *final* edge — the only one whose
        contribution differs when the bound instance is an ATTR row
        (a fuzzy node admits ATTR only at distance 0)."""
        lo = hi = lo_attr = hi_attr = 0
        final_edge = True
        current = node
        while current != ancestor:
            if current not in q_parent:
                return None
            edge_node = q_nodes[current]
            lo_edge, hi_edge = _EDGE_INTERVAL[edge_node.axis]
            lo += lo_edge
            hi = _cap(hi, hi_edge)
            if final_edge and edge_node.fuzzy:
                lo_edge, hi_edge = 0, 0
            lo_attr += lo_edge
            hi_attr = _cap(hi_attr, hi_edge)
            final_edge = False
            current = q_parent[current]
        return lo, hi, lo_attr, hi_attr

    for i, pn in enumerate(p_nodes):
        j = witness[i]
        qn = q_nodes[j]
        if pn.selected and not qn.selected:
            defects.append(f"selected p-node {i} maps to unselected q-node {j}")
        if i == 0:
            if not _accepts(pn, qn, 0, 0, 0, 0):
                defects.append("root node test not implied")
            continue
        parent_image = witness[p_parent[i]]
        interval = q_path(parent_image, j)
        if interval is None:
            defects.append(
                f"q-node {j} is not below the image {parent_image} of "
                f"p-node {i}'s parent"
            )
            continue
        lo, hi, lo_attr, hi_attr = interval
        if not _edge_guaranteed(pn.axis, lo, hi, qn):
            defects.append(
                f"{pn.axis} edge to p-node {i} not guaranteed by the "
                f"q-path [{lo}, {'inf' if hi >= _INF else hi}]"
            )
        if not _accepts(pn, qn, lo, hi, lo_attr, hi_attr):
            defects.append(f"node test of p-node {i} not implied by q-node {j}")
    return defects
