"""Tree patterns: the static shape of the workhorse XPath fragment.

A *tree pattern* is the classic XP\\ :sup:`{/, //, [], *}` object of
Miklau/Suciu-style containment: a rooted tree whose nodes carry node
tests (kind + name) and optional value constraints, whose edges carry a
structural axis (child / descendant / descendant-or-self / self /
attribute), and which distinguishes one *selected* node — the query's
output.  The semantics of a pattern over a document store is the set of
nodes the selected node can bind in any embedding of the pattern, in
document order with duplicates removed — exactly the value of the
normalized Core expressions this module extracts patterns from.

:func:`extract_pattern` maps a normalized Core expression (the output
of :func:`repro.xquery.normalize.normalize`) into a
:class:`TreePattern`, or returns ``None`` when the expression falls
outside the pattern fragment.  ``None`` is a *conservative* verdict:
every downstream consumer (the containment decision procedure, the
canonical cache keys, the scatter classifier) treats it as
``OUTSIDE_FRAGMENT`` and never guesses.

The supported shapes (everything else is outside):

* ``doc(uri)`` and ``collection(...)`` roots (exactly one source);
* downward steps — ``child``, ``descendant``, ``descendant-or-self``,
  ``self``, ``attribute`` — wrapped in ``fs:ddo`` as the normalizer
  emits them;
* the desugared-predicate filter shape
  ``for $v in P return if (cond) … then $v else ()`` with every
  condition rooted at a bound pattern variable: existence paths and
  ``ValComp`` literal comparisons (``Comp`` node-node joins are out);
* nothing with ``let``, reverse/sibling axes, FLWOR-ordered returns
  (``return $v/step``), or a second document source.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.xmltree.model import NodeKind
from repro.xquery.core import (
    CoreCollection,
    CoreComp,
    CoreDdo,
    CoreDoc,
    CoreEmpty,
    CoreExpr,
    CoreFor,
    CoreIf,
    CoreStep,
    CoreValComp,
    CoreVar,
)

__all__ = [
    "ALL_KINDS",
    "PNode",
    "TreePattern",
    "extract_pattern",
    "pattern_nodes",
]

_ATTR = int(NodeKind.ATTR)
_DOC = int(NodeKind.DOC)

#: every kind code a pattern node could bind
ALL_KINDS = frozenset(int(k) for k in NodeKind)

#: the downward axes the pattern fragment supports
_PATTERN_AXES = frozenset(
    ("child", "descendant", "descendant-or-self", "self", "attribute")
)

_KIND_SETS: dict[str, frozenset[int]] = {
    "node": ALL_KINDS,
    "element": frozenset({int(NodeKind.ELEM)}),
    "attribute": frozenset({_ATTR}),
    "text": frozenset({int(NodeKind.TEXT)}),
    "comment": frozenset({int(NodeKind.COMMENT)}),
    "processing-instruction": frozenset({int(NodeKind.PI)}),
    "document-node": frozenset({_DOC}),
}


@dataclass
class PNode:
    """One pattern node.

    ``axis`` is the structural edge from the parent node (``"root"``
    for the pattern root).  ``kinds`` is the set of
    :class:`~repro.xmltree.model.NodeKind` codes this node can bind —
    exact for every edge/test combination except a
    ``descendant-or-self::node()`` step, whose acceptance of ATTR rows
    depends on the step distance; such nodes are marked ``fuzzy`` (ATTR
    is admitted only at distance zero, mirroring the engine's
    ``(kind <> ATTR OR pre = pre°)`` disjunct).  ``name`` is a required
    tag/attribute name or ``None`` (any).  ``constraints`` are value
    comparisons ``(op, literal)`` against this node's own ``value``
    (string literal) or typed ``data`` (numeric literal) column, as in
    Core ``ValComp``.  ``selected`` marks the query's output node —
    exactly one node of a pattern carries it.
    """

    axis: str
    kinds: frozenset[int]
    name: str | None = None
    fuzzy: bool = False
    constraints: tuple[tuple[str, float | str], ...] = ()
    children: list["PNode"] = field(default_factory=list)
    selected: bool = False

    def clone(self) -> "PNode":
        return replace(
            self, children=[child.clone() for child in self.children]
        )

    def has_selected(self) -> bool:
        return self.selected or any(
            child.has_selected() for child in self.children
        )


@dataclass
class TreePattern:
    """A rooted tree pattern over a document source.

    ``uris`` is the set of documents the root can bind (one for a
    ``doc(uri)`` root, the resolved member set for ``collection()``).
    ``root`` is the pattern tree; ``None`` marks the *statically empty*
    pattern (empty source or an unsatisfiable node test) whose value is
    the empty sequence on every store.
    """

    uris: tuple[str, ...]
    root: PNode | None

    @property
    def is_empty(self) -> bool:
        return self.root is None

    def clone(self) -> "TreePattern":
        return TreePattern(
            self.uris, self.root.clone() if self.root is not None else None
        )


def pattern_nodes(pattern: TreePattern) -> list[PNode]:
    """The pattern's nodes in preorder — the stable node numbering
    containment witnesses are expressed in."""
    out: list[PNode] = []

    def walk(node: PNode) -> None:
        out.append(node)
        for child in node.children:
            walk(child)

    if pattern.root is not None:
        walk(pattern.root)
    return out


class _Outside(Exception):
    """The Core expression left the pattern fragment."""


def _test_kinds(kind_test: str | None) -> frozenset[int]:
    if kind_test is None:
        return ALL_KINDS
    try:
        return _KIND_SETS[kind_test]
    except KeyError:
        raise _Outside(f"kind test {kind_test!r}") from None


def _step_node(axis: str, kind_test: str | None, name_test: str | None) -> PNode:
    """The pattern node for one location step, with the axis' ATTR
    in/exclusion folded into the kind set (paper Fig. 3 semantics)."""
    if axis not in _PATTERN_AXES:
        raise _Outside(f"axis {axis!r}")
    kinds = _test_kinds(kind_test)
    fuzzy = False
    if axis in ("child", "descendant"):
        # children/descendants are never ATTR rows, and DOC rows are
        # roots — both exclusions are exact
        kinds = kinds - {_ATTR, _DOC}
    elif axis == "attribute":
        kinds = kinds & {_ATTR}
    elif axis == "descendant-or-self":
        # an ATTR context node stays visible at distance 0 only
        fuzzy = _ATTR in kinds
    name = None if name_test in (None, "*") else name_test
    return PNode(axis=axis, kinds=kinds, name=name, fuzzy=fuzzy)


class _Extractor:
    def __init__(self) -> None:
        self.uris: tuple[str, ...] | None = None
        self.root: PNode | None = None

    # -- pattern expressions -------------------------------------------

    def walk(self, core: CoreExpr, env: dict[str, PNode]) -> PNode:
        """The :class:`PNode` binding ``core``'s result items, attached
        into the pattern tree as a side effect."""
        if isinstance(core, (CoreDoc, CoreCollection)):
            if self.root is not None:
                raise _Outside("second document source")
            self.uris = (
                (core.uri,)
                if isinstance(core, CoreDoc)
                else tuple(core.uris)
            )
            self.root = PNode(axis="root", kinds=frozenset({_DOC}))
            return self.root
        if isinstance(core, CoreVar):
            try:
                return env[core.name]
            except KeyError:
                raise _Outside(f"free variable ${core.name}") from None
        if isinstance(core, CoreDdo):
            # ddo is sort + duplicate elimination: the identity on the
            # node *set* a pattern denotes
            return self.walk(core.expr, env)
        if isinstance(core, CoreStep):
            context = self.walk(core.input, env)
            node = _step_node(core.axis, core.kind_test, core.name_test)
            context.children.append(node)
            return node
        if isinstance(core, CoreFor):
            return self._filter(core, env)
        raise _Outside(type(core).__name__)

    def _filter(self, core: CoreFor, env: dict[str, PNode]) -> PNode:
        """The desugared-predicate shape ``for $v in base return
        if (c1) … if (cn) then $v else ()``: conditions become branches
        attached to the node ``$v`` binds; the filtered result binds
        that same node."""
        base = self.walk(core.sequence, env)
        scope = {**env, core.var: base}
        ret: CoreExpr = core.ret
        conditions: list[CoreExpr] = []
        while isinstance(ret, CoreIf):
            conditions.append(ret.cond)
            ret = ret.then
        if not (isinstance(ret, CoreVar) and ret.name == core.var):
            # a computed return (e.g. ``return $v/step``) concatenates
            # per-binding sequences: duplicates and FLWOR order — not a
            # pattern
            raise _Outside("for-return is not the bound variable")
        for condition in conditions:
            self._condition(condition, scope)
        return base

    # -- conditions ----------------------------------------------------

    def _condition(self, cond: CoreExpr, env: dict[str, PNode]) -> None:
        """An effective-boolean-value condition: an existence path or a
        literal comparison, rooted at a bound pattern variable."""
        if isinstance(cond, CoreValComp):
            value = cond.value
            literal = (
                float(value) if isinstance(value, (int, float)) else value
            )
            tip = self.walk(cond.expr, env)
            tip.constraints = (*tip.constraints, (cond.op, literal))
            return
        if isinstance(cond, CoreComp):
            raise _Outside("node-node comparison")
        if isinstance(cond, CoreIf):
            # nested conditional: nonempty iff the guard holds and the
            # branch is nonempty — both are conditions
            self._condition(cond.cond, env)
            self._condition(cond.then, env)
            return
        self.walk(cond, env)  # existence test


def extract_pattern(core: CoreExpr) -> TreePattern | None:
    """The tree pattern of a normalized Core expression, or ``None``
    when the expression is outside the pattern fragment.

    The returned pattern is *raw* — step-accurate but not normalized;
    run it through :func:`repro.analysis.containment.canonicalize`
    before comparing or keying on it.
    """
    if isinstance(core, CoreEmpty):
        return TreePattern(uris=(), root=None)
    extractor = _Extractor()
    try:
        output = extractor.walk(core, {})
    except _Outside:
        return None
    assert extractor.root is not None and extractor.uris is not None
    output.selected = True
    if not extractor.uris:
        return TreePattern(uris=(), root=None)
    return TreePattern(uris=extractor.uris, root=extractor.root)
