"""Direct tree-pattern evaluation over the pre/size/level encoding.

This is a deliberately naive, *independent* implementation of pattern
semantics — a reference oracle with no code shared with the compiler,
the algebra interpreter, or the SQL backends.  The rewrite sanitizer
uses it to cross-check plans against the statically extracted pattern:
when the compiled pipeline and this evaluator disagree on a fragment
query, one of them (in practice: some rewrite rule) is wrong.

Semantics mirror ``repro.compiler.axes`` exactly:

* ``child``/``attribute`` — subtree range + ``level + 1``, split on
  the ATTR kind;
* ``descendant`` — subtree range, never ATTR;
* ``descendant-or-self`` — range including the context itself, which
  stays visible even when it is an ATTR row (the ``kind <> ATTR OR
  pre = pre°`` disjunct);
* value constraints — numeric literals compare the typed ``data``
  column, string literals the untyped ``value`` column; a ``None``
  column never matches (untypeable content, multi-child elements).

Complexity is O(pattern × table²) in the worst case — fine for the
sanitizer's bounded test documents, not a query engine.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.containment.pattern import PNode, TreePattern
from repro.infoset.encoding import DocTable
from repro.xmltree.model import NodeKind

__all__ = ["evaluate_pattern", "filter_pattern", "pattern_selects"]

_ATTR = int(NodeKind.ATTR)


def _targets(table: DocTable, context: int, axis: str) -> Iterator[int]:
    """Candidate ``pre`` ranks of one structural step from ``context``
    (node tests are applied by the caller)."""
    end = context + table.size[context]
    if axis == "self":
        yield context
    elif axis in ("child", "attribute"):
        wanted_level = table.level[context] + 1
        attr = axis == "attribute"
        for pre in range(context + 1, end + 1):
            if table.level[pre] == wanted_level and (
                (table.kind[pre] == _ATTR) == attr
            ):
                yield pre
    elif axis == "descendant":
        for pre in range(context + 1, end + 1):
            if table.kind[pre] != _ATTR:
                yield pre
    elif axis == "descendant-or-self":
        for pre in range(context, end + 1):
            if table.kind[pre] != _ATTR or pre == context:
                yield pre
    else:  # pragma: no cover - extraction only emits the above
        raise ValueError(f"axis {axis!r} is not pattern material")


def _compare(left: float | str, op: str, right: float | str) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _test(table: DocTable, node: PNode, pre: int) -> bool:
    """Does the row at ``pre`` satisfy ``node``'s own test and value
    constraints?  (The fuzzy distance rule lives in :func:`_targets` —
    distant ATTR rows are never generated.)"""
    if table.kind[pre] not in node.kinds:
        return False
    if node.name is not None and table.name[pre] != node.name:
        return False
    for op, literal in node.constraints:
        if isinstance(literal, str):
            column = table.value[pre]
        else:
            column = table.data[pre]
        if column is None or not _compare(column, op, literal):
            return False
    return True


def _exists(table: DocTable, node: PNode, context: int) -> bool:
    """Is there an embedding of ``node``'s subtree with ``node`` bound
    below ``context`` (existence only)?"""
    return any(
        _test(table, node, pre)
        and all(_exists(table, child, pre) for child in node.children)
        for pre in _targets(table, context, node.axis)
    )


def _collect(
    table: DocTable, node: PNode, candidates: Iterator[int], out: set[int]
) -> None:
    """Accumulate the selected node's bindings; ``node``'s subtree
    contains the selected node and ``candidates`` enumerates its
    possible images."""
    spine = [child for child in node.children if child.has_selected()]
    branches = [child for child in node.children if not child.has_selected()]
    for pre in candidates:
        if not _test(table, node, pre):
            continue
        if not all(_exists(table, branch, pre) for branch in branches):
            continue
        if node.selected:
            out.add(pre)
        for child in spine:
            _collect(table, child, _targets(table, pre, child.axis), out)


def _chain(table: DocTable, root: int, target: int) -> list[int] | None:
    """Pre ranks on the ancestor-or-self path ``root .. target``, or
    ``None`` when ``target`` lies outside ``root``'s subtree.  The walk
    skips whole sibling subtrees via the ``size`` column, so it costs
    O(depth × branching) instead of a table scan."""
    if target < root or target > root + table.size[root]:
        return None
    chain = [root]
    node = root
    while node != target:
        child = node + 1
        end = node + table.size[node]
        step = None
        while child <= end:
            if child <= target <= child + table.size[child]:
                step = child
                break
            child += table.size[child] + 1
        if step is None:  # pragma: no cover - pre/size invariant
            return None
        chain.append(step)
        node = step
    return chain


def _chain_targets(
    table: DocTable, chain: list[int], index: int, axis: str
) -> Iterator[int]:
    """Indices into ``chain`` that one structural step from
    ``chain[index]`` may reach — the restriction of :func:`_targets`
    to the ancestor chain (every spine image must keep the target in
    its subtree, so only chain nodes qualify)."""
    if axis == "self":
        yield index
    elif axis in ("child", "attribute"):
        # chain[index + 1] is by construction a child of chain[index];
        # only the ATTR split remains to check.
        attr = axis == "attribute"
        if index + 1 < len(chain) and (
            (table.kind[chain[index + 1]] == _ATTR) == attr
        ):
            yield index + 1
    elif axis == "descendant":
        for j in range(index + 1, len(chain)):
            if table.kind[chain[j]] != _ATTR:
                yield j
    elif axis == "descendant-or-self":
        for j in range(index, len(chain)):
            if table.kind[chain[j]] != _ATTR or j == index:
                yield j
    else:  # pragma: no cover - extraction only emits the above
        raise ValueError(f"axis {axis!r} is not pattern material")


def _selects_at(
    table: DocTable, node: PNode, chain: list[int], index: int
) -> bool:
    """With ``node`` bound at ``chain[index]``, can the pattern below
    it select ``chain[-1]`` (the membership target)?"""
    pre = chain[index]
    if not _test(table, node, pre):
        return False
    for child in node.children:
        if not child.has_selected() and not _exists(table, child, pre):
            return False
    if node.selected:
        return index == len(chain) - 1
    return any(
        _selects_at(table, child, chain, j)
        for child in node.children
        if child.has_selected()
        for j in _chain_targets(table, chain, index, child.axis)
    )


def pattern_selects(pattern: TreePattern, table: DocTable, target: int) -> bool:
    """Does ``target`` belong to ``evaluate_pattern(pattern, table)``?

    Decided without materializing the full result: the selected node
    must bind to ``target`` itself, and every spine node above it must
    bind to an ancestor of ``target`` — so the search space collapses
    to the ancestor-or-self chain.  Branch predicates fall back to the
    unrestricted :func:`_exists` search.  Used by the service view tier
    as the residual filter over materialized rows."""
    if pattern.root is None:
        return False
    hosted = set(table.doc_uris)
    for uri in set(pattern.uris):
        if uri not in hosted:
            continue
        chain = _chain(table, table.root_of(uri), target)
        if chain is not None and _selects_at(table, pattern.root, chain, 0):
            return True
    return False


def filter_pattern(
    pattern: TreePattern, table: DocTable, candidates: Iterable[int]
) -> list[int]:
    """The subset of ``candidates`` (pre ranks, caller order preserved)
    that the pattern selects.  Equivalent to intersecting with
    :func:`evaluate_pattern` but proportional to ``len(candidates)``
    rather than to the table."""
    if pattern.root is None:
        return []
    hosted = set(table.doc_uris)
    spans = [
        (root, root + table.size[root])
        for root in (
            table.root_of(uri) for uri in set(pattern.uris) if uri in hosted
        )
    ]
    out: list[int] = []
    for pre in candidates:
        for root, end in spans:
            if root <= pre <= end:
                chain = _chain(table, root, pre)
                if chain is not None and _selects_at(
                    table, pattern.root, chain, 0
                ):
                    out.append(pre)
                break
    return out


def evaluate_pattern(pattern: TreePattern, table: DocTable) -> list[int]:
    """All ``pre`` ranks the pattern's selected node binds over the
    table, in document order — the reference value of the query the
    pattern was extracted from.  Unknown source URIs contribute
    nothing (a missing document is an empty document source)."""
    if pattern.root is None:
        return []
    hosted = set(table.doc_uris)
    roots = iter(
        sorted(
            table.root_of(uri) for uri in set(pattern.uris) if uri in hosted
        )
    )
    out: set[int] = set()
    _collect(table, pattern.root, roots, out)
    return sorted(out)
