"""Static containment & equivalence analysis for the workhorse fragment.

The subsystem decides, *statically*, whether one query's result always
contains (or equals) another's, for the XP\\ :sup:`{/, //, [], *}`
fragment of normalized Core — single document source, downward axes,
conjunctive predicates, literal value comparisons.  Everything outside
that fragment conservatively yields ``OUTSIDE_FRAGMENT``.

Layers (bottom-up):

:mod:`~repro.analysis.containment.pattern`
    Core → tree-pattern extraction; the ``TreePattern``/``PNode`` model.
:mod:`~repro.analysis.containment.hom`
    Homomorphism search + independent witness re-verification.
:mod:`~repro.analysis.containment.canonical`
    Minimized canonical patterns and stable cache keys.
:mod:`~repro.analysis.containment.decision`
    The public ``contains`` / ``equivalent`` verdicts with witnesses.
:mod:`~repro.analysis.containment.evaluate`
    A naive reference evaluator of patterns over the encoding table
    (the sanitizer's semantic oracle).

See ``docs/containment.md`` for the full story and the wiring into the
compiled-query cache, the rewrite sanitizer, and the scatter planner.
"""

from repro.analysis.containment.canonical import (
    canonical_key,
    canonicalize,
    pattern_key,
)
from repro.analysis.containment.decision import (
    CONTAINS,
    EQUIVALENT,
    NOT_SHOWN,
    OUTSIDE_FRAGMENT,
    ContainmentResult,
    EquivalenceResult,
    contains,
    contains_patterns,
    equivalent,
)
from repro.analysis.containment.evaluate import (
    evaluate_pattern,
    filter_pattern,
    pattern_selects,
)
from repro.analysis.containment.hom import find_homomorphism, verify_witness
from repro.analysis.containment.pattern import (
    PNode,
    TreePattern,
    extract_pattern,
    pattern_nodes,
)

__all__ = [
    "CONTAINS",
    "EQUIVALENT",
    "NOT_SHOWN",
    "OUTSIDE_FRAGMENT",
    "ContainmentResult",
    "EquivalenceResult",
    "PNode",
    "TreePattern",
    "canonical_key",
    "canonicalize",
    "contains",
    "contains_patterns",
    "equivalent",
    "evaluate_pattern",
    "extract_pattern",
    "filter_pattern",
    "find_homomorphism",
    "pattern_selects",
    "pattern_key",
    "pattern_nodes",
    "verify_witness",
]
