"""The containment / equivalence decision procedure.

``contains(p, q)`` asks: is every result of ``q`` a result of ``p``,
on *every* document store?  The procedure extracts and canonicalizes
both queries' tree patterns and searches for a containment
homomorphism from ``p``'s pattern into ``q``'s.  Three verdicts:

``CONTAINS``
    A homomorphism was found **and** independently re-verified
    (:func:`repro.analysis.containment.hom.verify_witness`); the
    witness mapping ships with the result so any consumer can re-check
    it without trusting the search.
``NOT_SHOWN``
    Both queries are in the fragment but no homomorphism exists.  For
    the canonicalized XP\\ :sup:`{/, //, [], *}` fragment the
    homomorphism test is exact on the structural part, but value
    constraints use conservative implication — so ``NOT_SHOWN`` is
    "not proven", never "proven false".
``OUTSIDE_FRAGMENT``
    At least one query is outside the pattern fragment.  Nothing is
    claimed — this is the conservative default, and the wired-in
    consumers (cache, sanitizer, scatter) all treat it as "no
    information".

Soundness is the only hard guarantee: a ``CONTAINS`` (or
``EQUIVALENT``) verdict is always backed by a re-checked witness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.containment.canonical import canonicalize
from repro.analysis.containment.hom import find_homomorphism, verify_witness
from repro.analysis.containment.pattern import TreePattern, extract_pattern
from repro.errors import AnalysisError
from repro.xquery.core import CoreExpr

__all__ = [
    "CONTAINS",
    "EQUIVALENT",
    "NOT_SHOWN",
    "OUTSIDE_FRAGMENT",
    "ContainmentResult",
    "EquivalenceResult",
    "contains",
    "contains_patterns",
    "equivalent",
]

#: verdict constants — strings so they read well in logs and JSON
CONTAINS = "contains"
EQUIVALENT = "equivalent"
NOT_SHOWN = "not-shown"
OUTSIDE_FRAGMENT = "outside-fragment"


@dataclass(frozen=True)
class ContainmentResult:
    """Outcome of a ``contains(p, q)`` question.

    ``witness`` (present exactly on ``CONTAINS``) maps preorder node
    indices of ``p``'s canonical pattern to preorder indices of ``q``'s
    — re-checkable at any time via :func:`verify_witness` against the
    ``p_pattern`` / ``q_pattern`` the verdict was computed over.
    """

    verdict: str
    witness: tuple[tuple[int, int], ...] | None = None
    p_pattern: TreePattern | None = None
    q_pattern: TreePattern | None = None

    @property
    def holds(self) -> bool:
        return self.verdict == CONTAINS


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an ``equivalent(p, q)`` question: containment in both
    directions, each carrying its own witness."""

    verdict: str
    forward: ContainmentResult  # p contains q
    backward: ContainmentResult  # q contains p

    @property
    def holds(self) -> bool:
        return self.verdict == EQUIVALENT


def contains_patterns(p: TreePattern, q: TreePattern) -> ContainmentResult:
    """Containment over already-**canonical** patterns."""
    if q.root is None:
        # the statically empty pattern is contained in everything
        return ContainmentResult(CONTAINS, (), p, q)
    if p.root is None:
        return ContainmentResult(NOT_SHOWN, None, p, q)
    if not set(q.uris) <= set(p.uris):
        # a q-match could root in a document p never touches
        return ContainmentResult(NOT_SHOWN, None, p, q)
    mapping = find_homomorphism(p, q)
    if mapping is None:
        return ContainmentResult(NOT_SHOWN, None, p, q)
    defects = verify_witness(p, q, mapping)
    if defects:  # pragma: no cover - guards against search bugs
        raise AnalysisError(
            "containment witness failed re-verification: "
            + "; ".join(defects)
        )
    witness = tuple(sorted(mapping.items()))
    return ContainmentResult(CONTAINS, witness, p, q)


def _canonical_pattern(core: CoreExpr) -> TreePattern | None:
    pattern = extract_pattern(core)
    if pattern is None:
        return None
    return canonicalize(pattern)


def contains(p: CoreExpr, q: CoreExpr) -> ContainmentResult:
    """Does ``p``'s result contain ``q``'s result on every store?

    Both arguments are normalized Core expressions (the output of
    :func:`repro.xquery.normalize.normalize`).
    """
    p_pattern = _canonical_pattern(p)
    q_pattern = _canonical_pattern(q)
    if p_pattern is None or q_pattern is None:
        return ContainmentResult(OUTSIDE_FRAGMENT, None, p_pattern, q_pattern)
    return contains_patterns(p_pattern, q_pattern)


def equivalent(p: CoreExpr, q: CoreExpr) -> EquivalenceResult:
    """Are ``p`` and ``q`` result-identical on every store?"""
    p_pattern = _canonical_pattern(p)
    q_pattern = _canonical_pattern(q)
    if p_pattern is None or q_pattern is None:
        outside = ContainmentResult(
            OUTSIDE_FRAGMENT, None, p_pattern, q_pattern
        )
        return EquivalenceResult(OUTSIDE_FRAGMENT, outside, outside)
    forward = contains_patterns(p_pattern, q_pattern)
    backward = contains_patterns(q_pattern, p_pattern)
    verdict = (
        EQUIVALENT if forward.holds and backward.holds else NOT_SHOWN
    )
    return EquivalenceResult(verdict, forward, backward)
