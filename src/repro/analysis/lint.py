"""Whole-pipeline lint driver: sweep queries through compile →
isolate (sanitized) → codegen → execute, collecting diagnostics.

This is what ``repro-xq lint`` and the workload-suite sweep run: for
each query it

1. compiles with the per-step :class:`PlanSanitizer` active
   (``checked=True``),
2. deep-checks the stacked and the isolated plan (optionally against
   interpreted data),
3. verifies the isolated plan reached join-graph shape,
4. lints the generated single-block SQL, and
5. optionally executes every engine and compares results
   (``JGI050``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, errors
from repro.analysis.invariants import check_plan
from repro.analysis.sqllint import lint_sql
from repro.errors import ReproError, SanitizerError
from repro.obs import record_diagnostics

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline import CompiledQuery, XQueryProcessor


@dataclass
class LintResult:
    """Diagnostics for one analyzed query."""

    name: str
    query: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not errors(self.diagnostics)


def lint_compiled(
    compiled: "CompiledQuery", *, data: bool = False
) -> list[Diagnostic]:
    """Deep-check both plans of a compiled query and lint its SQL."""
    from repro.errors import CodegenError
    from repro.rewrite.joingraph import is_join_graph

    diagnostics = check_plan(compiled.stacked_plan, data=data)
    diagnostics += check_plan(compiled.isolated_plan, data=data)
    if not is_join_graph(compiled.isolated_plan):
        diagnostics.append(
            Diagnostic(
                code="JGI053",
                message="isolated plan still contains blocking operators "
                "below the tail",
                severity="warning",
                where="isolated plan",
            )
        )
    if errors(diagnostics):
        # codegen assumes plan invariants hold; on a broken plan it
        # would crash arbitrarily rather than raise CodegenError
        return diagnostics
    try:
        sql = compiled.joingraph_sql
    except CodegenError as error:
        diagnostics.append(
            Diagnostic(
                code="JGI051",
                message=str(error),
                where="joingraph-sql",
            )
        )
    else:
        diagnostics += lint_sql(sql)
    return diagnostics


def lint_query(
    processor: "XQueryProcessor",
    query: str,
    *,
    name: str = "query",
    is_tuple: bool = False,
    data: bool = False,
    execute: bool = True,
) -> LintResult:
    """Compile, check, and (optionally) differentially execute one
    query; never raises — every failure becomes a diagnostic."""
    result = LintResult(name=name, query=query)
    try:
        if is_tuple:
            compiled_list = processor.compile_tuple(query)
        else:
            compiled_list = [processor.compile(query)]
    except SanitizerError as error:
        result.diagnostics += error.diagnostics or [
            Diagnostic(code=error.code, message=str(error), where=error.rule)
        ]
        return result
    except ReproError as error:
        result.diagnostics.append(
            Diagnostic(
                code="JGI052",
                message=f"{type(error).__name__}: {error}",
                where=name,
            )
        )
        record_diagnostics(result.diagnostics)
        return result

    for i, compiled in enumerate(compiled_list):
        tag = f"{name}[{i}]" if len(compiled_list) > 1 else name
        diagnostics = lint_compiled(compiled, data=data)
        if execute and not errors(diagnostics):
            diagnostics += _execution_diagnostics(processor, compiled, tag)
        # sanitizer findings were already counted at raise time (in
        # rulecheck); everything surfacing here is counted now
        record_diagnostics(diagnostics)
        result.diagnostics += diagnostics
    return result


def _execution_diagnostics(
    processor: "XQueryProcessor", compiled: "CompiledQuery", tag: str
) -> list[Diagnostic]:
    """Run all four engines and compare against the reference
    interpreter on the stacked plan."""
    reference = processor.execute(compiled, engine="interpreter")
    out: list[Diagnostic] = []
    for engine in ("isolated-interpreter", "stacked-sql", "joingraph-sql"):
        try:
            observed = processor.execute(compiled, engine=engine)
        except ReproError as error:
            out.append(
                Diagnostic(
                    code="JGI050",
                    message=f"engine {engine} failed: {error}",
                    where=tag,
                )
            )
            continue
        if observed != reference:
            out.append(
                Diagnostic(
                    code="JGI050",
                    message=f"engine {engine} returned {len(observed)} item(s), "
                    f"reference has {len(reference)} "
                    f"(first divergence at index "
                    f"{_first_divergence(reference, observed)})",
                    where=tag,
                )
            )
    return out


def _first_divergence(a: list, b: list) -> int:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i
    return min(len(a), len(b))


def lint_workloads(
    *,
    xmark_factor: float = 0.002,
    dblp_factor: float = 0.0005,
    interpret: bool = False,
    data: bool = False,
    execute: bool = True,
) -> DiagnosticReport:
    """Sweep the complete built-in query corpus — the paper's Q1–Q6,
    the XMark catalog, and the TPoX catalog — over freshly generated
    workload documents, with the per-step sanitizer active."""
    from repro.infoset import DocumentStore
    from repro.pipeline import XQueryProcessor
    from repro.workloads import (
        DBLPConfig,
        PAPER_QUERIES,
        TPOX_QUERIES,
        TPoXConfig,
        XMARK_QUERIES,
        XMarkConfig,
        generate_dblp,
        generate_tpox,
        generate_xmark,
    )

    xmark_store = DocumentStore()
    xmark_store.load_tree(generate_xmark(XMarkConfig(factor=xmark_factor)))
    dblp_store = DocumentStore()
    dblp_store.load_tree(generate_dblp(DBLPConfig(factor=dblp_factor)))
    tpox_store = DocumentStore()
    for document in generate_tpox(TPoXConfig()).values():
        tpox_store.load_tree(document)

    processors = {
        "xmark": XQueryProcessor(
            xmark_store, default_doc="auction.xml", checked=True,
            check_interpret=interpret,
        ),
        "dblp": XQueryProcessor(
            dblp_store, default_doc="dblp.xml", checked=True,
            check_interpret=interpret,
        ),
        "tpox": XQueryProcessor(
            tpox_store, default_doc="custacc.xml", checked=True,
            check_interpret=interpret,
        ),
    }

    report = DiagnosticReport()
    for catalog in (PAPER_QUERIES, XMARK_QUERIES, TPOX_QUERIES):
        for name, query in sorted(catalog.items()):
            processor = processors[query.document]
            result = lint_query(
                processor,
                query.text,
                name=name,
                is_tuple=query.is_tuple,
                data=data,
                execute=execute,
            )
            report.add(name, result.diagnostics)
    return report
