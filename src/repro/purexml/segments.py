"""Segmented document storage with XMLPATTERN value indexes.

DB2 pureXML favours designs that store many small XML segments per row
(paper Section 4.2: the XMark instance cut into 23,000 segments of
1–6 KB, DBLP into one publication per row).  An ``XMLPATTERN`` index
maps the value found under a path pattern to the row ids (RIDs) of the
segments containing it, so a value-predicate query touches only the
matching segments and leaves XSCAN a marginal traversal.

The segmenter cuts at a configurable depth: subtrees rooted at that
depth become segments; the "spine" above is retained so absolute paths
still navigate to each segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.purexml.xscan import XScan, node_untyped_value
from repro.xmltree.model import DocumentNode, ElementNode, XMLNode
from repro.xquery import ast
from repro.xquery.parser import parse_xquery


@dataclass
class XMLPatternIndex:
    """CREATE INDEX ... GENERATE KEY USING XMLPATTERN ... AS SQL VARCHAR:
    maps the string value reached by ``pattern`` (an absolute path with
    child/descendant/attribute steps) to segment RIDs."""

    pattern: str
    entries: dict[str, list[int]] = field(default_factory=dict)

    def add(self, value: str, rid: int) -> None:
        self.entries.setdefault(value, []).append(rid)

    def lookup(self, value: str) -> list[int]:
        return self.entries.get(value, [])


class SegmentedStore:
    """Documents cut into segments + the XMLPATTERN index family."""

    def __init__(self, cut_depth: int = 2):
        self.cut_depth = cut_depth
        self.segments: list[ElementNode] = []
        #: path-of-tags from the root to each segment's parent
        self.spines: list[tuple[str, ...]] = []
        self.indexes: dict[str, XMLPatternIndex] = {}
        self.documents: dict[str, DocumentNode] = {}

    def load(self, document: DocumentNode, uri: str | None = None) -> None:
        """Segment a document: subtrees at ``cut_depth`` become rows."""
        self.documents[uri or document.uri] = document
        root = document.root_element

        def cut(node: ElementNode, depth: int, spine: tuple[str, ...]) -> None:
            if depth >= self.cut_depth or not any(
                isinstance(c, ElementNode) for c in node.children
            ):
                self.segments.append(node)
                self.spines.append(spine)
                return
            for child in node.children:
                if isinstance(child, ElementNode):
                    cut(child, depth + 1, spine + (node.tag,))

        cut(root, 0, ())

    @property
    def segment_count(self) -> int:
        return len(self.segments)

    # -- index DDL ---------------------------------------------------------

    def create_pattern_index(self, pattern: str) -> XMLPatternIndex:
        """Populate an XMLPATTERN index for a path like
        ``/site/people/person/@id``: evaluated per segment, each value
        found maps back to the segment RID."""
        index = XMLPatternIndex(pattern)
        steps = _pattern_steps(pattern)
        for rid, (segment, spine) in enumerate(zip(self.segments, self.spines)):
            for node in _match_in_segment(segment, spine, steps):
                value = node_untyped_value(node)
                if value is not None:
                    index.add(value, rid)
        self.indexes[pattern] = index
        return index

    def lookup_segments(self, pattern: str, value: str) -> list[ElementNode]:
        """Segments whose pattern index matches the value (the RID
        fetch that precedes the residual XSCAN)."""
        index = self.indexes.get(pattern)
        if index is None:
            return list(self.segments)  # no eligible index: scan all
        return [self.segments[rid] for rid in index.lookup(value)]


def _pattern_steps(pattern: str) -> list[ast.StepExpr]:
    """Parse an XMLPATTERN into its step list (reusing the XQuery
    parser on the path expression)."""
    expr = parse_xquery(pattern)
    steps: list[ast.StepExpr] = []
    while isinstance(expr, ast.StepExpr):
        steps.append(expr)
        expr = expr.input
    steps.reverse()
    return steps


def _match_in_segment(
    segment: ElementNode, spine: tuple[str, ...], steps: list[ast.StepExpr]
) -> list[XMLNode]:
    """Evaluate an absolute pattern against one segment: the leading
    steps must walk the (virtual) spine down to the segment root, the
    remainder runs inside the segment."""
    contexts: list[XMLNode] = []
    # consume spine steps: child steps matching the spine tags
    position = 0
    for step in steps:
        if position < len(spine):
            matches_spine = (
                step.axis == "child"
                and step.test.kind in (None, "element")
                and step.test.name in (spine[position], "*")
            ) or step.double_slash
            if step.double_slash:
                break  # descendant step: evaluate from segment root upward
            if not matches_spine:
                return []
            position += 1
            continue
        break
    remaining = steps[position:]
    if not remaining:
        return [segment]
    # the first remaining step should match the segment root itself
    first, *rest = remaining
    ok_root = (
        first.double_slash
        or (
            first.axis == "child"
            and XScan.test(segment, first.test, "child")
        )
    )
    if first.double_slash:
        contexts = [
            n
            for n in XScan.axis(segment, "descendant-or-self")
            if XScan.test(n, first.test, first.axis)
        ]
    elif ok_root:
        contexts = [segment]
    else:
        return []
    for step in rest:
        next_contexts: list[XMLNode] = []
        for context in contexts:
            axis = "descendant" if step.double_slash and step.axis == "child" else step.axis
            for node in XScan.axis(context, axis):
                if XScan.test(node, step.test, step.axis):
                    next_contexts.append(node)
        contexts = next_contexts
    return contexts
