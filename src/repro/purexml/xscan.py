"""XSCAN: native, traversal-based XPath/XQuery evaluation.

This models DB2 pureXML's XSCAN operator (internals based on the
TurboXPath algorithm [15]): location steps are evaluated by walking
the document tree itself — the vertical axes traverse subtrees, with
no access-path choice and no value-driven reordering.  Predicates and
nested for loops evaluate by re-traversal, which is exactly why the
paper's Q2 (three nested loops + two value joins) overwhelms this
style of processing while the relational join graph sails through.

Value semantics match the tabular encoding: a node exposes a typed /
untyped value only when its subtree has at most one node (the paper's
``size <= 1`` rule for the ``value``/``data`` columns), keeping every
engine in this repository differentially comparable.
"""

from __future__ import annotations

from typing import Iterator

from repro.algebra.expressions import COMPARISONS
from repro.errors import XQueryTypeError
from repro.xmltree.model import (
    AttributeNode,
    DocumentNode,
    ElementNode,
    NodeKind,
    TextNode,
    XMLNode,
)
from repro.xquery import ast
from repro.xquery.parser import ContextItem


def node_untyped_value(node: XMLNode) -> str | None:
    """The untyped value under the ``size <= 1`` rule of the encoding."""
    if isinstance(node, AttributeNode):
        return node.value
    if isinstance(node, TextNode):
        return node.text
    if isinstance(node, ElementNode):
        below = node.subtree_node_count()
        if below <= 1:
            return node.string_value()
    return None


def node_typed_value(node: XMLNode) -> float | None:
    """xs:decimal cast of the untyped value, when castable."""
    raw = node_untyped_value(node)
    if raw is None:
        return None
    try:
        return float(raw.strip())
    except ValueError:
        return None


class XScan:
    """Single-pattern tree traversal: axis + node test enumeration."""

    @staticmethod
    def axis(node: XMLNode, axis: str) -> Iterator[XMLNode]:
        if axis == "self":
            yield node
        elif axis == "child":
            yield from node.children
        elif axis == "attribute":
            if isinstance(node, ElementNode):
                yield from node.attributes
        elif axis == "descendant":
            for child in node.children:
                yield from XScan._descend(child)
        elif axis == "descendant-or-self":
            yield node
            for child in node.children:
                yield from XScan._descend(child)
        elif axis == "parent":
            if node.parent is not None:
                yield node.parent
        elif axis == "ancestor":
            current = node.parent
            while current is not None:
                yield current
                current = current.parent
        elif axis == "ancestor-or-self":
            yield node
            yield from XScan.axis(node, "ancestor")
        elif axis in ("following-sibling", "preceding-sibling"):
            parent = node.parent
            if parent is None:
                return
            siblings = parent.children
            index = next(i for i, c in enumerate(siblings) if c is node)
            if axis == "following-sibling":
                yield from siblings[index + 1 :]
            else:
                yield from siblings[:index]
        elif axis in ("following", "preceding"):
            # realized via the document order over the whole tree
            root = node
            while root.parent is not None:
                root = root.parent
            seen_context = False
            context_subtree = set(id(n) for n in node.iter_subtree())
            for candidate in root.iter_subtree():
                if candidate is node:
                    seen_context = True
                    continue
                if isinstance(candidate, AttributeNode):
                    continue
                if axis == "following":
                    if seen_context and id(candidate) not in context_subtree:
                        yield candidate
                else:
                    if not seen_context and id(candidate) not in context_subtree:
                        if id(node) not in set(
                            id(a) for a in candidate.iter_subtree()
                        ):
                            yield candidate
        else:
            raise XQueryTypeError(f"XSCAN: unsupported axis {axis!r}")

    @staticmethod
    def _descend(node: XMLNode) -> Iterator[XMLNode]:
        if isinstance(node, AttributeNode):
            return
        yield node
        if isinstance(node, ElementNode):
            for child in node.children:
                yield from XScan._descend(child)

    @staticmethod
    def test(node: XMLNode, test: ast.NodeTest, axis: str) -> bool:
        kind = test.kind
        if kind is None:
            kind = "attribute" if axis == "attribute" else "element"
        if kind != "node":
            wanted = {
                "element": NodeKind.ELEM,
                "attribute": NodeKind.ATTR,
                "text": NodeKind.TEXT,
                "comment": NodeKind.COMMENT,
                "processing-instruction": NodeKind.PI,
                "document-node": NodeKind.DOC,
            }[kind]
            if node.kind != wanted:
                return False
        name = test.name
        if name not in (None, "*"):
            actual = getattr(node, "tag", None) or getattr(node, "name", None)
            if actual != name:
                return False
        return True


class NativeEvaluator:
    """Evaluates the workhorse fragment directly over document trees.

    ``documents`` maps URIs to roots; ``default_doc`` resolves absolute
    paths.  Results are lists of nodes in document order without
    duplicates (per-step fs:ddo), iteration semantics as in XQuery.
    """

    def __init__(self, documents: dict[str, DocumentNode], default_doc: str | None = None):
        self.documents = documents
        self.default_doc = default_doc
        self._order: dict[int, int] = {}
        rank = 0
        for document in documents.values():
            for node in document.iter_subtree():
                self._order[id(node)] = rank
                rank += 1

    def document_order(self, node: XMLNode) -> int:
        return self._order[id(node)]

    def run(self, query: str | ast.Expr) -> list[XMLNode]:
        """Evaluate a query; returns the resulting node sequence."""
        from repro.xquery.parser import parse_xquery

        expr = parse_xquery(query) if isinstance(query, str) else query
        return self.evaluate(expr, {})

    # -- expression dispatch ------------------------------------------------

    def evaluate(self, expr: ast.Expr, env: dict[str, list[XMLNode]]) -> list[XMLNode]:
        if isinstance(expr, ast.DocCall):
            return [self._document(expr.uri)]
        if isinstance(expr, ast.PathRoot):
            if self.default_doc is None:
                raise XQueryTypeError("no default context document")
            return [self._document(self.default_doc)]
        if isinstance(expr, ast.VarRef):
            try:
                return env[expr.name]
            except KeyError:
                raise XQueryTypeError(f"unbound variable ${expr.name}") from None
        if isinstance(expr, ContextItem):
            return env["."]
        if isinstance(expr, ast.StepExpr):
            return self._step(expr, env)
        if isinstance(expr, ast.FLWOR):
            return self._flwor(expr, env)
        if isinstance(expr, ast.IfExpr):
            if self._boolean(expr.cond, env):
                return self.evaluate(expr.then, env)
            if isinstance(expr.orelse, ast.EmptySequence):
                return []
            return self.evaluate(expr.orelse, env)
        if isinstance(expr, ast.EmptySequence):
            return []
        if isinstance(expr, ast.SequenceExpr):
            out: list[XMLNode] = []
            for item in expr.items:
                out.extend(self.evaluate(item, env))
            return out
        raise XQueryTypeError(f"XSCAN cannot evaluate {type(expr).__name__}")

    def _document(self, uri: str) -> DocumentNode:
        try:
            return self.documents[uri]
        except KeyError:
            raise XQueryTypeError(f"unknown document {uri!r}") from None

    def _step(self, expr: ast.StepExpr, env: dict) -> list[XMLNode]:
        contexts = self.evaluate(expr.input, env)
        axis = expr.axis
        results: list[XMLNode] = []
        seen: set[int] = set()
        for context in contexts:
            if expr.double_slash:
                candidates: Iterator[XMLNode] = (
                    grand
                    for dos in XScan.axis(context, "descendant-or-self")
                    for grand in XScan.axis(dos, axis)
                )
            else:
                candidates = XScan.axis(context, axis)
            for candidate in candidates:
                if not XScan.test(candidate, expr.test, axis):
                    continue
                if id(candidate) in seen:
                    continue
                seen.add(id(candidate))
                results.append(candidate)
        results.sort(key=self.document_order)
        for predicate in expr.predicates:
            results = [
                node
                for node in results
                if self._boolean(predicate.expr, {**env, ".": [node]})
            ]
        return results

    def _flwor(self, expr: ast.FLWOR, env: dict) -> list[XMLNode]:
        results: list[XMLNode] = []

        def recurse(clauses: list, scope: dict) -> None:
            if not clauses:
                if expr.where is None or self._boolean(expr.where, scope):
                    results.extend(self.evaluate(expr.ret, scope))
                return
            head, *rest = clauses
            if isinstance(head, ast.LetClause):
                recurse(rest, {**scope, head.var: self.evaluate(head.value, scope)})
                return
            for node in self.evaluate(head.sequence, scope):
                recurse(rest, {**scope, head.var: [node]})

        recurse(list(expr.clauses), dict(env))
        return results

    # -- effective boolean values / comparisons ----------------------------

    def _boolean(self, expr: ast.Expr, env: dict) -> bool:
        if isinstance(expr, ast.AndExpr):
            return all(self._boolean(p, env) for p in expr.parts)
        if isinstance(expr, ast.Comparison):
            return self._comparison(expr, env)
        return bool(self.evaluate(expr, env))

    def _comparison(self, expr: ast.Comparison, env: dict) -> bool:
        op = COMPARISONS[expr.op][0]
        left_literal = _literal(expr.left)
        right_literal = _literal(expr.right)
        if right_literal is not None and left_literal is None:
            return any(
                _compare(op, node, right_literal)
                for node in self.evaluate(expr.left, env)
            )
        if left_literal is not None and right_literal is None:
            from repro.algebra.expressions import MIRRORED

            mirrored = COMPARISONS[MIRRORED[expr.op]][0]
            return any(
                _compare(mirrored, node, left_literal)
                for node in self.evaluate(expr.right, env)
            )
        if left_literal is not None:
            raise XQueryTypeError("literal/literal comparison unsupported")
        left_nodes = self.evaluate(expr.left, env)
        right_nodes = self.evaluate(expr.right, env)
        for a in left_nodes:
            va = node_untyped_value(a)
            if va is None:
                continue
            for b in right_nodes:
                vb = node_untyped_value(b)
                if vb is not None and op(va, vb):
                    return True
        return False


def _literal(expr: ast.Expr):
    if isinstance(expr, ast.StringLiteral):
        return expr.value
    if isinstance(expr, ast.NumberLiteral):
        return expr.value
    return None


def _compare(op, node: XMLNode, literal) -> bool:
    if isinstance(literal, (int, float)):
        value = node_typed_value(node)
        return value is not None and op(value, float(literal))
    value = node_untyped_value(node)
    return value is not None and op(value, literal)
