"""The pureXML execution engine: whole-document vs segmented setups.

``PureXMLEngine`` evaluates the workhorse fragment natively (XSCAN
traversals).  In *segmented* mode, linear path queries first consult
the XMLPATTERN index family: an eligible value predicate yields the
RIDs of candidate segments and the residual traversal runs per
segment; queries without an eligible index — and non-path queries such
as Q2's nested loops — fall back to scanning every segment, which
reproduces the whole-document cost (and the paper's Q2 blow-up).
"""

from __future__ import annotations

from repro.purexml.segments import SegmentedStore
from repro.purexml.xscan import NativeEvaluator
from repro.xmltree.model import DocumentNode, XMLNode
from repro.xquery import ast
from repro.xquery.parser import parse_xquery


class PureXMLEngine:
    """A native XML processor over one or more documents."""

    def __init__(
        self,
        documents: dict[str, DocumentNode],
        default_doc: str | None = None,
        segmented: bool = False,
        cut_depth: int = 2,
        patterns: tuple[str, ...] = (),
    ):
        self.documents = documents
        self.default_doc = default_doc or next(iter(documents), None)
        self.segmented = segmented
        self.evaluator = NativeEvaluator(documents, self.default_doc)
        self.store: SegmentedStore | None = None
        if segmented:
            self.store = SegmentedStore(cut_depth=cut_depth)
            for uri, document in documents.items():
                self.store.load(document, uri)
            for pattern in patterns:
                self.store.create_pattern_index(pattern)

    # -- public API --------------------------------------------------------

    def run(self, query: str) -> list[XMLNode]:
        """Evaluate a query, returning nodes in document order."""
        expr = parse_xquery(query)
        if self.segmented:
            return self._run_segmented(expr)
        return self._ordered(self.evaluator.run(expr))

    def document_order(self, node: XMLNode) -> int:
        return self.evaluator.document_order(node)

    def _ordered(self, nodes: list[XMLNode]) -> list[XMLNode]:
        return nodes

    # -- segmented evaluation ------------------------------------------------

    def _run_segmented(self, expr: ast.Expr) -> list[XMLNode]:
        assert self.store is not None
        steps = _linearize(expr)
        if steps is None:
            # non-path query (FLWOR / value joins): no index applies —
            # XSCAN does all the heavy work over every segment.
            return self._ordered(self.evaluator.run(expr))
        hit = self._indexed_lookup(steps)
        if hit is None:
            candidates = list(self.store.segments)
        else:
            pattern, value = hit
            candidates = self.store.lookup_segments(pattern, value)
        results: list[XMLNode] = []
        seen: set[int] = set()
        for rid, segment in enumerate(self.store.segments):
            if segment not in candidates:
                continue
            spine = self.store.spines[rid]
            rebased = _rebase_onto_segment(steps, spine, segment)
            if rebased is None:
                continue
            for node in self.evaluator.evaluate(rebased, {"#seg": [segment]}):
                if id(node) not in seen:
                    seen.add(id(node))
                    results.append(node)
        results.sort(key=self.evaluator.document_order)
        return results

    def _indexed_lookup(self, steps: list[ast.StepExpr]) -> tuple[str, str] | None:
        """Find an (XMLPATTERN, value) pair usable for this path: the
        first equality-to-string predicate whose pattern has an index."""
        assert self.store is not None
        prefix: list[str] = []
        for step in steps:
            tag = step.test.name or "*"
            sep = "//" if step.double_slash else "/"
            prefix.append(f"{sep}{'@' if step.axis == 'attribute' else ''}{tag}")
            for predicate in step.predicates:
                comparisons = (
                    predicate.expr.parts
                    if isinstance(predicate.expr, ast.AndExpr)
                    else [predicate.expr]
                )
                for comparison in comparisons:
                    if not isinstance(comparison, ast.Comparison):
                        continue
                    if comparison.op != "=" or not isinstance(
                        comparison.right, ast.StringLiteral
                    ):
                        continue
                    relative = _relative_pattern(comparison.left)
                    if relative is None:
                        continue
                    pattern = "".join(prefix) + relative
                    if pattern in self.store.indexes:
                        return pattern, comparison.right.value
        return None


def _relative_pattern(expr: ast.Expr) -> str | None:
    """Render a relative predicate path (``@id``, ``child/tag``) as the
    tail of an XMLPATTERN, or None for non-path operands."""
    steps: list[ast.StepExpr] = []
    current = expr
    while isinstance(current, ast.StepExpr):
        steps.append(current)
        current = current.input
    from repro.xquery.parser import ContextItem

    if not isinstance(current, ContextItem):
        return None
    parts = []
    for step in reversed(steps):
        marker = "@" if step.axis == "attribute" else ""
        parts.append(f"/{marker}{step.test.name or '*'}")
    return "".join(parts)


def _linearize(expr: ast.Expr) -> list[ast.StepExpr] | None:
    """A pure path query as its top-down step list; None otherwise."""
    steps: list[ast.StepExpr] = []
    current = expr
    while isinstance(current, ast.StepExpr):
        steps.append(current)
        current = current.input
    if isinstance(current, (ast.PathRoot, ast.DocCall)):
        steps.reverse()
        return steps
    return None


def _rebase_onto_segment(
    steps: list[ast.StepExpr], spine: tuple[str, ...], segment
) -> ast.Expr | None:
    """Rewrite an absolute path to start at a segment root: leading
    child steps walk the spine; the step matching the segment root
    becomes ``self::tag`` on the ``#seg`` variable; the rest chains on.
    Returns None when the path cannot reach this segment."""
    position = 0
    index = 0
    for index, step in enumerate(steps):
        if step.double_slash or step.axis == "descendant":
            break  # may land anywhere below the spine
        if position < len(spine):
            if step.axis != "child" or step.predicates:
                return None
            if step.test.name not in (spine[position], "*"):
                return None
            position += 1
            continue
        break
    else:
        return None
    remaining = steps[index:]
    anchor = remaining[0]
    if anchor.double_slash or anchor.axis == "descendant":
        # ``//t`` / ``descendant::t`` from above the segment reaches any
        # matching node in the segment subtree, the root included.
        rebased: ast.Expr = ast.StepExpr(
            ast.VarRef("#seg"),
            "descendant-or-self",
            anchor.test,
            list(anchor.predicates),
        )
    else:
        if anchor.axis != "child":
            return None
        if anchor.test.kind in (None, "element") and anchor.test.name not in (
            getattr(segment, "tag", None),
            "*",
        ):
            return None
        rebased = ast.StepExpr(
            ast.VarRef("#seg"), "self", anchor.test, list(anchor.predicates)
        )
    for step in remaining[1:]:
        if step.double_slash:
            rebased = ast.StepExpr(
                rebased, "descendant-or-self", ast.NodeTest(kind="node")
            )
        rebased = ast.StepExpr(
            rebased, step.axis, step.test, list(step.predicates)
        )
    return rebased
