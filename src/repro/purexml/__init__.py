"""A native XML query processor in the style of DB2 pureXML™
(paper Section 4.2).

The tree traversal of XPath location steps is implemented by
:class:`XScan` — a TurboXPath-style evaluator that walks document
subtrees natively (no relational encoding, no B-trees over node
properties).  Two storage setups mirror the paper's comparison:

* **whole** — each document is one monolithic tree; every descendant
  step scans the subtree below its context (Q5's wildcard forces a
  full-instance scan);
* **segmented** — documents are cut into many small segments, with
  XMLPATTERN value indexes mapping (path pattern, value) to segment
  ids: point queries (Q3/Q5) touch only the matching segments, while
  value joins (Q2) degenerate to nested XSCANs — exactly the failure
  mode the paper observes.
"""

from repro.purexml.xscan import XScan, NativeEvaluator
from repro.purexml.segments import SegmentedStore, XMLPatternIndex
from repro.purexml.engine import PureXMLEngine

__all__ = [
    "NativeEvaluator",
    "PureXMLEngine",
    "SegmentedStore",
    "XMLPatternIndex",
    "XScan",
]
