"""Query flight recorder: one structured record per served query.

The serving layer (:class:`repro.service.QueryService`,
:class:`repro.service.ShardedService`) records one
:class:`FlightRecord` per query at the serving boundary into a
bounded ring buffer — query-text hash, engine, cache outcome, scatter
decision, retries/degrades/breaker state, per-phase nanoseconds, row
counts, deadline budget consumed.  The recorder is always on: the ring
is a ``collections.deque`` with ``maxlen`` behind one short lock
acquisition per query, cheap enough for the hot path (the overhead
gate lives in ``BENCH_service.json`` / CI's observability-smoke job).

A tail-sampling **slow-query log** promotes any record over a
configurable latency threshold — and *every* degraded or surfaced
(errored) query — to a full capture that additionally holds the
query's trace spans and the backend's ``EXPLAIN QUERY PLAN`` output.

Plumbing: the service pushes a :class:`FlightContext` for the duration
of a query (:func:`flight_capture`); instrumentation points anywhere
below the boundary — the cache tiers in ``compile()``, the retry loop,
the scatter classifier — annotate :func:`current_context` without
needing a reference to the recorder.  Worker threads adopt the
submitting query's context via :func:`adopt_context` so shard-level
retries land on the top-level record.

Snapshots are versioned JSON (``repro.obs.flight/v1``, see
``docs/schemas.md``); :func:`validate_flight_snapshot` is the schema
gate used by ``tests/test_api/test_schemas.py``.
"""

from __future__ import annotations

import functools
import hashlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.metrics import Histogram
from repro.obs.tracer import Span

__all__ = [
    "FLIGHT_SCHEMA",
    "FlightContext",
    "FlightRecord",
    "FlightRecorder",
    "SlowCapture",
    "adopt_context",
    "current_context",
    "flight_capture",
    "query_hash",
    "span_tree",
    "validate_flight_snapshot",
]

FLIGHT_SCHEMA = "repro.obs.flight/v1"

#: how much of the (normalized) query text each record keeps verbatim;
#: the full text is always identifiable via its hash
QUERY_HEAD_CHARS = 120

_CACHE_OUTCOMES = (
    "exact",
    "canonical",
    "view",
    "miss",
    "single-flight-wait",
    "precompiled",
)
_SCATTER_DECISIONS = ("scatter", "route", "serial")


@functools.lru_cache(maxsize=4096)
def query_hash(text: str) -> str:
    """Stable 64-bit hex digest of a query text (blake2b).

    Cached: a serving workload records the same few query texts over
    and over, and the hash is on the per-query hot path.
    """
    return hashlib.blake2b(text.encode("utf-8"), digest_size=8).hexdigest()


# -- per-query context ----------------------------------------------------


class FlightContext:
    """Mutable scratchpad one query's instrumentation points write to.

    Cache outcome and scatter decision are *set-once* (the serving
    boundary wins; nested executions — e.g. the serial fallback's inner
    service — cannot overwrite them); retries and degradations
    accumulate under a lock because shard workers annotate the same
    context concurrently.
    """

    __slots__ = (
        "_lock",
        "cache",
        "degraded",
        "fanout",
        "pattern_classified",
        "phases_ns",
        "retries",
        "rows",
        "scatter",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.cache: str | None = None
        self.scatter: str | None = None
        self.fanout = 1
        self.pattern_classified = False
        self.retries = 0
        self.degraded = False
        self.phases_ns: dict[str, int] = {}
        self.rows = 0

    def note_cache(self, outcome: str) -> None:
        """Record the compiled-plan cache outcome (first writer wins)."""
        with self._lock:
            if self.cache is None:
                self.cache = outcome

    def note_scatter(self, decision: str, fanout: int) -> None:
        """Record the scatter decision (first writer wins)."""
        with self._lock:
            if self.scatter is None:
                self.scatter = decision
                self.fanout = fanout

    def note_pattern_classified(self) -> None:
        self.pattern_classified = True

    def note_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def note_degraded(self) -> None:
        self.degraded = True

    def add_phase(self, name: str, ns: int) -> None:
        """Accumulate wall-clock nanoseconds into phase ``name``."""
        with self._lock:
            self.phases_ns[name] = self.phases_ns.get(name, 0) + int(ns)

    def note_rows(self, rows: int) -> None:
        self.rows = rows


_state = threading.local()


def current_context() -> FlightContext | None:
    """The active query's flight context on this thread, if any."""
    return getattr(_state, "context", None)


class flight_capture:
    """Scope one query's flight context on the calling thread.

    ``own=True`` pushes a fresh context (the serving boundary);
    ``own=False`` yields whatever context is already active — ``None``
    outside any boundary — so nested services annotate their caller's
    record instead of fabricating their own.

    Class-based rather than ``@contextmanager``: this wraps every
    served query, and a plain object is measurably cheaper than a
    generator frame on the hot path.
    """

    __slots__ = ("_own", "_previous")

    def __init__(self, own: bool = True) -> None:
        self._own = own

    def __enter__(self) -> FlightContext | None:
        if not self._own:
            return current_context()
        self._previous = current_context()
        context = FlightContext()
        _state.context = context
        return context

    def __exit__(self, *exc: object) -> None:
        if self._own:
            _state.context = self._previous


class adopt_context:
    """Install an existing context on this thread (worker-pool tasks
    adopt the submitting query's context so their annotations — shard
    retries, degradations — land on the top-level record)."""

    __slots__ = ("_context", "_previous")

    def __init__(self, context: FlightContext | None) -> None:
        self._context = context

    def __enter__(self) -> None:
        self._previous = current_context()
        _state.context = self._context

    def __exit__(self, *exc: object) -> None:
        _state.context = self._previous


# -- records --------------------------------------------------------------


@dataclass(slots=True)
class FlightRecord:
    """One query's flight data, as captured at the serving boundary.

    Not frozen: a frozen dataclass routes every ``__init__`` field
    through ``object.__setattr__``, and one record is built per served
    query — plain slotted assignment keeps construction off the
    overhead gate's radar.  Treat instances as immutable anyway; only
    the recorder (stamping ``seq``) writes to one after construction.
    """

    seq: int
    ts: float  # wall-clock unix seconds at completion
    query_hash: str
    query_head: str  # first QUERY_HEAD_CHARS of the normalized text
    engine: str
    status: str  # "ok" | "error:<ExceptionType>"
    cache: str  # exact | canonical | view | miss | single-flight-wait | precompiled
    scatter: str | None  # scatter | route | serial | None (unsharded)
    fanout: int
    pattern_classified: bool
    retries: int
    degraded: bool
    breaker: str  # breaker state at completion: closed | open | half-open
    phases_ns: dict[str, int]  # compile / rewrite / sql / merge / ...
    elapsed_ns: int
    rows: int
    shards: int
    deadline_budget_s: float | None
    deadline_consumed: float | None  # fraction of the budget spent

    @property
    def surfaced(self) -> bool:
        return self.status != "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "query_hash": self.query_hash,
            "query_head": self.query_head,
            "engine": self.engine,
            "status": self.status,
            "cache": self.cache,
            "scatter": self.scatter,
            "fanout": self.fanout,
            "pattern_classified": self.pattern_classified,
            "retries": self.retries,
            "degraded": self.degraded,
            "breaker": self.breaker,
            "phases_ns": dict(self.phases_ns),
            "elapsed_ns": self.elapsed_ns,
            "rows": self.rows,
            "shards": self.shards,
            "deadline_budget_s": self.deadline_budget_s,
            "deadline_consumed": self.deadline_consumed,
        }


@dataclass(frozen=True)
class SlowCapture:
    """A promoted record: the flight data plus full diagnostics."""

    record: FlightRecord
    reason: str  # "slow" | "degraded" | "surfaced"
    explain: list[str] = field(default_factory=list)
    trace: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "record": self.record.to_dict(),
            "reason": self.reason,
            "explain": list(self.explain),
            "trace": list(self.trace),
        }


def span_tree(span: Span, depth: int = 8) -> dict[str, Any]:
    """A JSON-ready tree of one trace span (for slow captures)."""
    node: dict[str, Any] = {
        "name": span.name,
        "duration_ns": span.duration_ns,
        "attributes": {
            key: value
            for key, value in span.attributes.items()
            if isinstance(value, (str, int, float, bool))
        },
    }
    if span.children and depth > 0:
        node["children"] = [
            span_tree(child, depth - 1) for child in span.children
        ]
    return node


# -- the recorder ---------------------------------------------------------


class FlightRecorder:
    """Bounded ring of :class:`FlightRecord` plus the slow-query log.

    ``capacity`` bounds the ring (oldest records fall off);
    ``slow_capacity`` bounds the slow log; ``slow_threshold_s`` is the
    promotion latency — degraded and surfaced queries are promoted
    regardless of latency.  ``latency`` accumulates every recorded
    query's end-to-end nanoseconds into a quantile histogram, so
    percentiles survive ring eviction.
    """

    def __init__(
        self,
        capacity: int = 512,
        *,
        slow_capacity: int = 64,
        slow_threshold_s: float = 0.25,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if slow_capacity <= 0:
            raise ValueError("slow_capacity must be positive")
        if slow_threshold_s < 0:
            raise ValueError("slow_threshold_s must be non-negative")
        self.capacity = capacity
        self.slow_capacity = slow_capacity
        self.slow_threshold_s = slow_threshold_s
        self._lock = threading.Lock()
        self._records: deque[FlightRecord] = deque(maxlen=capacity)
        self._slow: deque[SlowCapture] = deque(maxlen=slow_capacity)
        self._seq = 0
        self._promoted = 0
        self._errors = 0
        self._degraded = 0
        self.latency = Histogram()
        # the epoch histogram is what stats() summarizes: it restarts
        # on mark_epoch() (store/collection invalidation) so percentiles
        # always describe the *current* corpus, while self.latency stays
        # cumulative for the full snapshot()
        self._epoch_latency = Histogram()
        self._epochs = 0

    # -- recording -----------------------------------------------------

    def record(
        self,
        *,
        query_text: str,
        engine: str,
        status: str,
        context: FlightContext,
        elapsed_ns: int,
        shards: int = 1,
        breaker: str = "closed",
        deadline_budget_s: float | None = None,
        deadline_consumed: float | None = None,
        detail: Callable[[], dict[str, Any]] | None = None,
    ) -> FlightRecord:
        """Append one record; promote it to the slow log if warranted.

        ``detail`` is only invoked on promotion — it supplies the
        expensive diagnostics (``explain`` rows, ``trace`` span trees)
        that ordinary records skip.
        """
        record = FlightRecord(
            seq=0,  # stamped under the lock
            ts=time.time(),
            query_hash=query_hash(query_text),
            query_head=query_text[:QUERY_HEAD_CHARS],
            engine=engine,
            status=status,
            cache=context.cache or "miss",
            scatter=context.scatter,
            fanout=context.fanout,
            pattern_classified=context.pattern_classified,
            retries=context.retries,
            degraded=context.degraded,
            breaker=breaker,
            phases_ns=dict(context.phases_ns),
            elapsed_ns=int(elapsed_ns),
            rows=context.rows,
            shards=shards,
            deadline_budget_s=deadline_budget_s,
            deadline_consumed=deadline_consumed,
        )
        reason = self._promotion_reason(record)
        capture: SlowCapture | None = None
        if reason is not None:
            explain: list[str] = []
            trace: list[dict[str, Any]] = []
            if detail is not None:
                try:
                    diagnostics = detail()
                except Exception as error:  # diagnostics must never fail
                    explain = [f"capture failed: {error}"]
                else:
                    explain = list(diagnostics.get("explain", ()))
                    trace = list(diagnostics.get("trace", ()))
            if not trace:
                # no live tracer: synthesize spans from the phase clock
                trace = [
                    {"name": f"phase:{name}", "duration_ns": ns}
                    for name, ns in sorted(record.phases_ns.items())
                ]
            capture = SlowCapture(
                record=record, reason=reason, explain=explain, trace=trace
            )
        with self._lock:
            self._seq += 1
            # the record is still private to this call, so stamping the
            # sequence in place is safe — and far cheaper on the hot
            # path than a dataclasses.replace() 19-field copy
            record.seq = self._seq
            self._records.append(record)
            self.latency.observe(elapsed_ns)
            self._epoch_latency.observe(elapsed_ns)
            if record.surfaced:
                self._errors += 1
            if record.degraded:
                self._degraded += 1
            if capture is not None:
                self._promoted += 1
                self._slow.append(capture)
        return record

    def _promotion_reason(self, record: FlightRecord) -> str | None:
        if record.surfaced:
            return "surfaced"
        if record.degraded:
            return "degraded"
        if record.elapsed_ns >= self.slow_threshold_s * 1e9:
            return "slow"
        return None

    # -- reading -------------------------------------------------------

    def records(self) -> list[FlightRecord]:
        """The retained ring, oldest first."""
        with self._lock:
            return list(self._records)

    def slow(self) -> list[SlowCapture]:
        """The slow-query log, oldest first."""
        with self._lock:
            return list(self._slow)

    def counts(self) -> dict[str, int]:
        with self._lock:
            return {
                "recorded": self._seq,
                "retained": len(self._records),
                "promoted": self._promoted,
                "slow_retained": len(self._slow),
                "errors": self._errors,
                "degraded": self._degraded,
            }

    def mark_epoch(self) -> None:
        """Start a new latency epoch.  The owning service calls this
        when the corpus changes (document load / collection graft
        invalidation): cumulative counts and the retained ring survive,
        but the percentile population behind :meth:`stats` restarts, so
        ``Session.stats()["flight"]`` never reports percentiles from a
        corpus that no longer exists."""
        with self._lock:
            self._epochs += 1
            self._epoch_latency = Histogram()

    def stats(self) -> dict[str, Any]:
        """The small summary ``Session.stats()`` embeds.  The latency
        percentiles are recomputed live from the current corpus epoch
        (:meth:`mark_epoch`); counts stay cumulative."""
        with self._lock:
            latency = self._epoch_latency.summary()
            return {
                "recorded": self._seq,
                "promoted": self._promoted,
                "errors": self._errors,
                "degraded": self._degraded,
                "epochs": self._epochs,
                "latency_ns": latency,
            }

    def snapshot(self) -> dict[str, Any]:
        """The full ``repro.obs.flight/v1`` JSON document."""
        with self._lock:
            return {
                "schema": FLIGHT_SCHEMA,
                "config": {
                    "capacity": self.capacity,
                    "slow_capacity": self.slow_capacity,
                    "slow_threshold_s": self.slow_threshold_s,
                },
                "counts": {
                    "recorded": self._seq,
                    "retained": len(self._records),
                    "promoted": self._promoted,
                    "slow_retained": len(self._slow),
                    "errors": self._errors,
                    "degraded": self._degraded,
                },
                "latency_ns": self.latency.summary(),
                "records": [record.to_dict() for record in self._records],
                "slow": [capture.to_dict() for capture in self._slow],
            }

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self._slow.clear()
            self._seq = 0
            self._promoted = 0
            self._errors = 0
            self._degraded = 0
            self.latency = Histogram()
            self._epoch_latency = Histogram()
            self._epochs = 0


# -- schema validation ----------------------------------------------------


def validate_flight_snapshot(snapshot: Any) -> list[str]:
    """Structural problems in a ``repro.obs.flight/v1`` document
    (empty list = valid) — the same problems-list contract as
    :func:`repro.obs.validate_chrome_trace`."""
    problems: list[str] = []
    if not isinstance(snapshot, dict):
        return ["snapshot is not an object"]
    if snapshot.get("schema") != FLIGHT_SCHEMA:
        problems.append(
            f"schema stamp is {snapshot.get('schema')!r}, "
            f"expected {FLIGHT_SCHEMA!r}"
        )
    config = snapshot.get("config")
    if not isinstance(config, dict):
        problems.append("config missing or not an object")
    else:
        for key in ("capacity", "slow_capacity", "slow_threshold_s"):
            if not isinstance(config.get(key), (int, float)):
                problems.append(f"config.{key} missing or not numeric")
    counts = snapshot.get("counts")
    if not isinstance(counts, dict):
        problems.append("counts missing or not an object")
    else:
        for key in ("recorded", "retained", "promoted", "errors", "degraded"):
            value = counts.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"counts.{key} missing or negative")
    latency = snapshot.get("latency_ns")
    if not isinstance(latency, dict):
        problems.append("latency_ns missing or not an object")
    else:
        for key in ("count", "mean", "p50", "p95", "p99", "max"):
            if not isinstance(latency.get(key), (int, float)):
                problems.append(f"latency_ns.{key} missing or not numeric")
    records = snapshot.get("records")
    if not isinstance(records, list):
        problems.append("records missing or not a list")
        records = []
    slow = snapshot.get("slow")
    if not isinstance(slow, list):
        problems.append("slow missing or not a list")
        slow = []
    for where, record in [("records", r) for r in records] + [
        ("slow", c.get("record") if isinstance(c, dict) else None)
        for c in slow
    ]:
        problems.extend(_validate_record(where, record))
    for index, capture in enumerate(slow):
        if not isinstance(capture, dict):
            continue
        if capture.get("reason") not in ("slow", "degraded", "surfaced"):
            problems.append(f"slow[{index}].reason invalid")
        for key in ("explain", "trace"):
            if not isinstance(capture.get(key), list):
                problems.append(f"slow[{index}].{key} missing or not a list")
    return problems


def _validate_record(where: str, record: Any) -> list[str]:
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"{where}: record is not an object"]
    label = f"{where}[seq={record.get('seq')}]"
    for key, kinds in (
        ("seq", int),
        ("ts", (int, float)),
        ("query_hash", str),
        ("query_head", str),
        ("engine", str),
        ("status", str),
        ("fanout", int),
        ("pattern_classified", bool),
        ("retries", int),
        ("degraded", bool),
        ("breaker", str),
        ("elapsed_ns", int),
        ("rows", int),
        ("shards", int),
    ):
        if not isinstance(record.get(key), kinds):
            problems.append(f"{label}.{key} missing or mistyped")
    if record.get("cache") not in _CACHE_OUTCOMES:
        problems.append(f"{label}.cache invalid: {record.get('cache')!r}")
    scatter = record.get("scatter")
    if scatter is not None and scatter not in _SCATTER_DECISIONS:
        problems.append(f"{label}.scatter invalid: {scatter!r}")
    phases = record.get("phases_ns")
    if not isinstance(phases, dict) or not all(
        isinstance(k, str) and isinstance(v, int) for k, v in phases.items()
    ):
        problems.append(f"{label}.phases_ns missing or mistyped")
    for key in ("deadline_budget_s", "deadline_consumed"):
        value = record.get(key)
        if value is not None and not isinstance(value, (int, float)):
            problems.append(f"{label}.{key} mistyped")
    return problems
