"""Planner estimate-vs-actual cardinality audit (q-error).

The cost-based planner commits to a join order using classical
selectivity estimates (:meth:`_PlanState.base_cardinality` and
friends).  This module measures how wrong those estimates were: it
instruments every operator along the plan's left-deep spine with a row
counter, executes the plan once, and reports the **q-error** per
planning step:

    q(est, act) = max(est, act) / min(est, act)      (both floored)

q = 1 means a perfect estimate; the literature on estimate quality
(PostBOUND et al.) treats q as the canonical scale-free error measure
because it penalizes under- and over-estimation symmetrically — an
under-estimate is what makes a nested-loop plan blow up, an
over-estimate what makes the planner refuse one.

Results land in three places: the returned :class:`OperatorAudit`
list, ``planner.qerror.*`` metrics in the global registry, and
``actual_rows`` annotations on the physical operators themselves (so a
subsequent :func:`repro.planner.explain_plan` shows actuals inline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.planner.joinplan import PhysicalQuery
    from repro.planner.physical import PhysicalOp

__all__ = ["OperatorAudit", "audit_plan", "qerror"]

#: cardinality floor — keeps q-error finite for empty results
_FLOOR = 0.5


def qerror(estimated: float, actual: float) -> float:
    """Symmetric relative estimation error, floored at :data:`_FLOOR`
    rows on both sides so empty intermediates stay finite."""
    est = max(estimated, _FLOOR)
    act = max(actual, _FLOOR)
    return max(est / act, act / est)


@dataclass
class OperatorAudit:
    """Estimate vs. reality for one planning step."""

    position: int
    alias: str
    kind: str  # 'leaf' | 'nljoin' | 'hsjoin' | 'cross'
    operator: str  # physical operator description
    estimated: float
    actual: int

    @property
    def q(self) -> float:
        return qerror(self.estimated, self.actual)

    @property
    def underestimated(self) -> bool:
        return self.actual > max(self.estimated, _FLOOR)


def _spine(root: "PhysicalOp") -> list["PhysicalOp"]:
    """The left-deep operator chain from the plan root down to the
    leading leaf, root first."""
    chain: list[PhysicalOp] = []
    op: PhysicalOp | None = root
    while op is not None:
        chain.append(op)
        op = op.children[0] if op.children else None
    return chain


def _count_rows(op: "PhysicalOp") -> dict[str, int]:
    """Wrap ``op.rows`` (per instance) so executions count output
    bindings; returns the live counter cell."""
    inner = op.rows
    cell = {"rows": 0}

    def counted():
        for binding in inner():
            cell["rows"] += 1
            yield binding

    op.rows = counted  # type: ignore[method-assign]
    return cell


def audit_plan(plan: "PhysicalQuery") -> tuple[list[Any], list[OperatorAudit]]:
    """Execute ``plan`` with per-operator row counting and compare each
    step's estimated cardinality with the rows it actually produced.

    Returns ``(items, audits)`` — the query result (identical to
    ``plan.execute()``) plus one :class:`OperatorAudit` per planning
    step, leading leaf first.  Also records ``planner.qerror`` metrics
    and attaches a ``planner.audit`` span (with the per-alias q-errors)
    to the active trace.
    """
    from repro.planner.physical import FilterOp, Return, Sort

    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span("planner.audit", steps=len(plan.steps)) as span:
        # bottom-up: ops introducing aliases, in planning order —
        # the spine minus the Return/Sort/Filter tail.
        step_ops = [
            op
            for op in reversed(_spine(plan.root))
            if not isinstance(op, (Return, Sort, FilterOp))
        ]
        cells = [_count_rows(op) for op in step_ops]
        with tracer.span("planner.execute"):
            items = plan.root.items()

        audits: list[OperatorAudit] = []
        for i, step in enumerate(plan.steps):
            if i >= len(step_ops):  # impossible/degenerate plans
                break
            actual = cells[i]["rows"]
            op = step_ops[i]
            op.actual_rows = actual
            audit = OperatorAudit(
                position=i,
                alias=step.alias,
                kind=step.kind,
                operator=op.describe(),
                estimated=step.estimated_cardinality,
                actual=actual,
            )
            audits.append(audit)
            metrics.observe("planner.qerror", audit.q)
            metrics.gauge(f"planner.qerror.{step.alias}", audit.q)
            metrics.gauge(f"planner.estimated_rows.{step.alias}", audit.estimated)
            metrics.gauge(f"planner.actual_rows.{step.alias}", actual)
        if audits:
            worst = max(audits, key=lambda a: a.q)
            metrics.observe("planner.qerror_max", worst.q)
            span.set(
                worst_alias=worst.alias,
                worst_q=round(worst.q, 3),
                rows_out=len(items),
            )
    return items, audits
