"""Trace and metrics exporters.

Four formats, all derivable from one :class:`~repro.obs.Tracer` +
:class:`~repro.obs.MetricsRegistry` pair:

* :func:`chrome_trace` — the Chrome trace-event JSON object format
  (load the file in ``about://tracing`` or https://ui.perfetto.dev to
  browse the span waterfall);
* :func:`metrics_json` — a flat, JSON-ready metrics dump;
* :func:`prometheus_text` — the Prometheus text exposition format
  (counters as ``_total`` counters, quantile histograms as summaries
  with ``quantile`` labels, flight-recorder health gauges);
* :func:`tree_report` — an indented, human-readable span tree for
  terminals.

:func:`validate_chrome_trace` / :func:`validate_prometheus_text`
re-check emitted artifacts against the subset of each format we
produce; the CI smoke job and the golden-schema tests both go through
them.
"""

from __future__ import annotations

import json
import math
import re
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.flight import FlightRecorder

__all__ = [
    "chrome_trace",
    "metrics_json",
    "prometheus_text",
    "tree_report",
    "validate_chrome_trace",
    "validate_prometheus_text",
    "write_chrome_trace",
]

#: event categories by span-name prefix (first dotted component)
_CATEGORIES = {
    "compile": "compile",
    "parse": "compile",
    "normalize": "compile",
    "looplift": "compile",
    "isolate": "rewrite",
    "codegen": "codegen",
    "sql": "sql",
    "execute": "execute",
    "serialize": "execute",
    "planner": "planner",
}


def _category(name: str) -> str:
    head = name.split(".", 1)[0].split(":", 1)[0]
    return _CATEGORIES.get(head, "pipeline")


def _json_safe(attributes: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in attributes.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [str(v) for v in value]
        else:
            out[key] = str(value)
    return out


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict[str, Any]:
    """Render the tracer's span forest as a Chrome trace-event JSON
    object (``ph: "X"`` complete events for spans, ``ph: "i"`` instant
    events for in-span markers; timestamps in microseconds)."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]

    def emit(span: Span) -> None:
        events.append(
            {
                "name": span.name,
                "cat": _category(span.name),
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": (span.end_ns or span.start_ns) / 1000.0
                - span.start_ns / 1000.0,
                "pid": 1,
                "tid": 1,
                "args": _json_safe(span.attributes),
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": event.name,
                    "cat": _category(span.name),
                    "ph": "i",
                    "ts": event.ts_ns / 1000.0,
                    "pid": 1,
                    "tid": 1,
                    "s": "t",
                    "args": _json_safe(event.attributes),
                }
            )
        for child in span.children:
            emit(child)

    for root in tracer.roots:
        emit(root)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str, **kwargs: Any) -> None:
    """Serialize :func:`chrome_trace` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer, **kwargs), handle, indent=1)


#: required keys (and value types) per event phase we emit
_PHASE_SCHEMA: dict[str, dict[str, type | tuple[type, ...]]] = {
    "X": {
        "name": str,
        "cat": str,
        "ts": (int, float),
        "dur": (int, float),
        "pid": int,
        "tid": int,
        "args": dict,
    },
    "i": {"name": str, "ts": (int, float), "pid": int, "tid": int, "s": str},
    "M": {"name": str, "pid": int, "args": dict},
}


def validate_chrome_trace(trace: Any) -> list[str]:
    """Schema-check a trace object; returns a list of problems (empty
    when the object is a valid trace of the subset we emit)."""
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        phase = event.get("ph")
        schema = _PHASE_SCHEMA.get(phase)  # type: ignore[arg-type]
        if schema is None:
            problems.append(f"event {i}: unknown phase {phase!r}")
            continue
        for key, types in schema.items():
            if key not in event:
                problems.append(f"event {i} ({event.get('name')}): missing {key!r}")
            elif not isinstance(event[key], types):
                problems.append(
                    f"event {i} ({event.get('name')}): {key!r} has type "
                    f"{type(event[key]).__name__}"
                )
        if phase == "X" and isinstance(event.get("dur"), (int, float)):
            if event["dur"] < 0:
                problems.append(f"event {i}: negative duration")
    return problems


def metrics_json(metrics: MetricsRegistry) -> dict[str, Any]:
    """A flat, JSON-serializable dump of every metric, stamped with
    its schema version (``repro.obs.metrics/v1``, see
    ``docs/schemas.md``)."""
    return {"schema": "repro.obs.metrics/v1", **metrics.snapshot()}


# -- Prometheus text exposition -------------------------------------------

#: quantile labels emitted for every histogram-as-summary
_PROMETHEUS_QUANTILES = (0.5, 0.9, 0.95, 0.99)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)(?:\s+(-?\d+))?$"
)


def _prometheus_name(name: str, prefix: str) -> str:
    """A dotted metric name mapped into the Prometheus grammar
    (``[a-zA-Z_:][a-zA-Z0-9_:]*``), namespaced under ``prefix``."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isfinite(value) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _summary_lines(
    lines: list[str], name: str, histogram: Histogram, source: str
) -> None:
    lines.append(f"# HELP {name} {_escape_help('histogram ' + source)}")
    lines.append(f"# TYPE {name} summary")
    for q in _PROMETHEUS_QUANTILES:
        lines.append(
            f'{name}{{quantile="{q}"}} '
            f"{_format_value(histogram.quantile(q))}"
        )
    lines.append(f"{name}_sum {_format_value(histogram.total)}")
    lines.append(f"{name}_count {histogram.count}")


def prometheus_text(
    metrics: MetricsRegistry,
    *,
    flight: "FlightRecorder | None" = None,
    prefix: str = "repro",
) -> str:
    """The registry (and optionally a flight recorder) rendered in the
    Prometheus text exposition format, version 0.0.4.

    Dotted metric names are sanitized into the Prometheus grammar and
    namespaced under ``prefix``; counters gain the conventional
    ``_total`` suffix; histograms are exposed as summaries with
    ``quantile`` labels plus ``_sum`` / ``_count``.  Distinct dotted
    names that sanitize to the same exposition name have their counter
    values summed (never duplicated samples).
    """
    lines: list[str] = []
    counters: dict[str, float] = {}
    sources: dict[str, str] = {}
    for name, value in sorted(metrics.counters.items()):
        exposed = _prometheus_name(name, prefix)
        if not exposed.endswith("_total"):
            exposed += "_total"
        counters[exposed] = counters.get(exposed, 0) + value
        sources.setdefault(exposed, name)
    for exposed, value in counters.items():
        lines.append(
            f"# HELP {exposed} {_escape_help('counter ' + sources[exposed])}"
        )
        lines.append(f"# TYPE {exposed} counter")
        lines.append(f"{exposed} {_format_value(value)}")
    gauges: dict[str, float] = {}
    gauge_sources: dict[str, str] = {}
    for name, value in sorted(metrics.gauges.items()):
        exposed = _prometheus_name(name, prefix)
        gauges[exposed] = value  # collisions: latest wins, like gauges
        gauge_sources.setdefault(exposed, name)
    for exposed, value in gauges.items():
        lines.append(
            f"# HELP {exposed} "
            f"{_escape_help('gauge ' + gauge_sources[exposed])}"
        )
        lines.append(f"# TYPE {exposed} gauge")
        lines.append(f"{exposed} {_format_value(value)}")
    seen_summaries: set[str] = set()
    for name, histogram in sorted(metrics.histograms.items()):
        exposed = _prometheus_name(name, prefix)
        if exposed in seen_summaries:
            continue
        seen_summaries.add(exposed)
        _summary_lines(lines, exposed, histogram, name)
    if flight is not None:
        for key, value in flight.counts().items():
            exposed = f"{prefix}_flight_{key}" if prefix else f"flight_{key}"
            lines.append(
                f"# HELP {exposed} {_escape_help('flight recorder ' + key)}"
            )
            lines.append(f"# TYPE {exposed} gauge")
            lines.append(f"{exposed} {value}")
        _summary_lines(
            lines,
            f"{prefix}_flight_latency_ns" if prefix else "flight_latency_ns",
            flight.latency,
            "end-to-end query latency (ns)",
        )
    return "\n".join(lines) + "\n"


def validate_prometheus_text(text: str) -> list[str]:
    """Parse a text exposition; returns a list of problems (empty when
    every line round-trips through the subset of the format we emit:
    HELP/TYPE comments, escaped label values, float samples)."""
    problems: list[str] = []
    types: dict[str, str] = {}
    sampled: set[str] = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment
            kind, name = parts[1], parts[2]
            if not _METRIC_NAME_RE.match(name):
                problems.append(f"line {number}: invalid metric name {name!r}")
                continue
            if kind == "TYPE":
                declared = parts[3].strip() if len(parts) > 3 else ""
                if declared not in (
                    "counter", "gauge", "summary", "histogram", "untyped"
                ):
                    problems.append(
                        f"line {number}: invalid TYPE {declared!r} for {name}"
                    )
                if name in types:
                    problems.append(f"line {number}: duplicate TYPE for {name}")
                if name in sampled:
                    problems.append(
                        f"line {number}: TYPE for {name} after its samples"
                    )
                types[name] = declared
            else:
                docstring = parts[3] if len(parts) > 3 else ""
                # strip valid escape pairs (\\ and \n) left-to-right;
                # a backslash surviving that is a stray escape — a
                # lookahead can't do this (the second \ of \\s would
                # be misread as opening a new escape)
                if "\\" in re.sub(r"\\\\|\\n", "", docstring):
                    problems.append(
                        f"line {number}: invalid escape in HELP {name}"
                    )
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {number}: unparseable sample {line!r}")
            continue
        name, labels, value, _timestamp = match.groups()
        family = name
        for suffix in ("_sum", "_count", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        sampled.add(family)
        if family not in types:
            problems.append(f"line {number}: sample {name} has no TYPE")
        try:
            float(value)
        except ValueError:
            problems.append(f"line {number}: non-float value {value!r}")
        if labels:
            consumed = 0
            parsed: dict[str, str] = {}
            for pair in _LABEL_PAIR_RE.finditer(labels):
                parsed[pair.group(1)] = pair.group(2)
                consumed = pair.end()
                if consumed < len(labels) and labels[consumed] == ",":
                    consumed += 1
            if labels[consumed:].strip():
                problems.append(
                    f"line {number}: malformed labels {labels!r}"
                )
            for label_name, label_value in parsed.items():
                if not _LABEL_NAME_RE.match(label_name):
                    problems.append(
                        f"line {number}: invalid label name {label_name!r}"
                    )
                if "\\" in re.sub(r'\\\\|\\n|\\"', "", label_value):
                    problems.append(
                        f"line {number}: invalid escape in label "
                        f"{label_name}={label_value!r}"
                    )
            if types.get(family) == "summary" and "quantile" in parsed:
                try:
                    quantile = float(parsed["quantile"])
                except ValueError:
                    quantile = -1.0
                if not 0.0 <= quantile <= 1.0:
                    problems.append(
                        f"line {number}: quantile out of range "
                        f"{parsed['quantile']!r}"
                    )
    return problems


def tree_report(tracer: Tracer, min_ms: float = 0.0) -> str:
    """Indented span tree with durations, self-times and attributes —
    the terminal-friendly view ``repro obs`` prints."""
    lines: list[str] = []

    def visit(span: Span, depth: int) -> None:
        if span.duration_ms < min_ms:
            return
        child_ns = sum(c.duration_ns for c in span.children)
        self_ms = (span.duration_ns - child_ns) / 1e6
        attrs = ", ".join(
            f"{k}={_short(v)}" for k, v in span.attributes.items()
        )
        note = f"  [{attrs}]" if attrs else ""
        extra = f" (self {self_ms:.3f})" if span.children else ""
        events = f"  +{len(span.events)} event(s)" if span.events else ""
        lines.append(
            f"{'  ' * depth}{span.name:<{max(28 - 2 * depth, 8)}}"
            f"{span.duration_ms:>10.3f} ms{extra}{note}{events}"
        )
        for child in span.children:
            visit(child, depth + 1)

    for root in tracer.roots:
        visit(root, 0)
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def _short(value: Any, limit: int = 48) -> str:
    text = str(value)
    return text if len(text) <= limit else text[: limit - 1] + "…"
