"""Trace and metrics exporters.

Three formats, all derivable from one :class:`~repro.obs.Tracer` +
:class:`~repro.obs.MetricsRegistry` pair:

* :func:`chrome_trace` — the Chrome trace-event JSON object format
  (load the file in ``about://tracing`` or https://ui.perfetto.dev to
  browse the span waterfall);
* :func:`metrics_json` — a flat, JSON-ready metrics dump;
* :func:`tree_report` — an indented, human-readable span tree for
  terminals.

:func:`validate_chrome_trace` re-checks an emitted trace object
against the subset of the trace-event schema we produce; the CI smoke
job and the golden-schema tests both go through it.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "metrics_json",
    "tree_report",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: event categories by span-name prefix (first dotted component)
_CATEGORIES = {
    "compile": "compile",
    "parse": "compile",
    "normalize": "compile",
    "looplift": "compile",
    "isolate": "rewrite",
    "codegen": "codegen",
    "sql": "sql",
    "execute": "execute",
    "serialize": "execute",
    "planner": "planner",
}


def _category(name: str) -> str:
    head = name.split(".", 1)[0].split(":", 1)[0]
    return _CATEGORIES.get(head, "pipeline")


def _json_safe(attributes: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in attributes.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [str(v) for v in value]
        else:
            out[key] = str(value)
    return out


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict[str, Any]:
    """Render the tracer's span forest as a Chrome trace-event JSON
    object (``ph: "X"`` complete events for spans, ``ph: "i"`` instant
    events for in-span markers; timestamps in microseconds)."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]

    def emit(span: Span) -> None:
        events.append(
            {
                "name": span.name,
                "cat": _category(span.name),
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": (span.end_ns or span.start_ns) / 1000.0
                - span.start_ns / 1000.0,
                "pid": 1,
                "tid": 1,
                "args": _json_safe(span.attributes),
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": event.name,
                    "cat": _category(span.name),
                    "ph": "i",
                    "ts": event.ts_ns / 1000.0,
                    "pid": 1,
                    "tid": 1,
                    "s": "t",
                    "args": _json_safe(event.attributes),
                }
            )
        for child in span.children:
            emit(child)

    for root in tracer.roots:
        emit(root)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str, **kwargs: Any) -> None:
    """Serialize :func:`chrome_trace` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer, **kwargs), handle, indent=1)


#: required keys (and value types) per event phase we emit
_PHASE_SCHEMA: dict[str, dict[str, type | tuple[type, ...]]] = {
    "X": {
        "name": str,
        "cat": str,
        "ts": (int, float),
        "dur": (int, float),
        "pid": int,
        "tid": int,
        "args": dict,
    },
    "i": {"name": str, "ts": (int, float), "pid": int, "tid": int, "s": str},
    "M": {"name": str, "pid": int, "args": dict},
}


def validate_chrome_trace(trace: Any) -> list[str]:
    """Schema-check a trace object; returns a list of problems (empty
    when the object is a valid trace of the subset we emit)."""
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        phase = event.get("ph")
        schema = _PHASE_SCHEMA.get(phase)  # type: ignore[arg-type]
        if schema is None:
            problems.append(f"event {i}: unknown phase {phase!r}")
            continue
        for key, types in schema.items():
            if key not in event:
                problems.append(f"event {i} ({event.get('name')}): missing {key!r}")
            elif not isinstance(event[key], types):
                problems.append(
                    f"event {i} ({event.get('name')}): {key!r} has type "
                    f"{type(event[key]).__name__}"
                )
        if phase == "X" and isinstance(event.get("dur"), (int, float)):
            if event["dur"] < 0:
                problems.append(f"event {i}: negative duration")
    return problems


def metrics_json(metrics: MetricsRegistry) -> dict[str, Any]:
    """A flat, JSON-serializable dump of every metric, stamped with
    its schema version (``repro.obs.metrics/v1``, see
    ``docs/schemas.md``)."""
    return {"schema": "repro.obs.metrics/v1", **metrics.snapshot()}


def tree_report(tracer: Tracer, min_ms: float = 0.0) -> str:
    """Indented span tree with durations, self-times and attributes —
    the terminal-friendly view ``repro obs`` prints."""
    lines: list[str] = []

    def visit(span: Span, depth: int) -> None:
        if span.duration_ms < min_ms:
            return
        child_ns = sum(c.duration_ns for c in span.children)
        self_ms = (span.duration_ns - child_ns) / 1e6
        attrs = ", ".join(
            f"{k}={_short(v)}" for k, v in span.attributes.items()
        )
        note = f"  [{attrs}]" if attrs else ""
        extra = f" (self {self_ms:.3f})" if span.children else ""
        events = f"  +{len(span.events)} event(s)" if span.events else ""
        lines.append(
            f"{'  ' * depth}{span.name:<{max(28 - 2 * depth, 8)}}"
            f"{span.duration_ms:>10.3f} ms{extra}{note}{events}"
        )
        for child in span.children:
            visit(child, depth + 1)

    for root in tracer.roots:
        visit(root, 0)
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def _short(value: Any, limit: int = 48) -> str:
    text = str(value)
    return text if len(text) <= limit else text[: limit - 1] + "…"
