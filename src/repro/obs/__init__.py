"""Zero-dependency pipeline observability: tracing, metrics, audits.

The paper's whole evaluation is observational — it watches what the
relational back-end does with isolated join graphs.  This package
gives the reproduction the same eyes on itself:

* :mod:`repro.obs.tracer` — nested spans over the pipeline phases
  (parse → normalize → loop-lift → isolate → codegen → execute), with
  a shared-singleton no-op path when disabled;
* :mod:`repro.obs.metrics` — process-global counters / gauges /
  histograms (rewrite-rule fires, SQL statement stats, analysis
  findings);
* :mod:`repro.obs.audit` — the planner estimate-vs-actual cardinality
  audit (q-error per operator);
* :mod:`repro.obs.export` — Chrome trace-event JSON, flat metrics
  JSON, and a terminal span tree;
* :mod:`repro.obs.report` — the composed ``repro obs`` summary.

See ``docs/observability.md`` for the span taxonomy, metric name
catalog, exporter formats, and the q-error definition.
"""

from repro.obs.audit import OperatorAudit, audit_plan, qerror
from repro.obs.export import (
    chrome_trace,
    metrics_json,
    tree_report,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    get_metrics,
    metrics_scope,
    record_diagnostics,
    set_metrics,
)
from repro.obs.report import phase_profile, qerror_table, summary_report
from repro.obs.tracer import (
    NULL_SPAN,
    Event,
    NullSpan,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "NULL_SPAN",
    "Event",
    "Histogram",
    "MetricsRegistry",
    "NullSpan",
    "OperatorAudit",
    "Span",
    "Tracer",
    "audit_plan",
    "chrome_trace",
    "get_metrics",
    "get_tracer",
    "metrics_json",
    "metrics_scope",
    "phase_profile",
    "qerror",
    "qerror_table",
    "record_diagnostics",
    "set_metrics",
    "set_tracer",
    "summary_report",
    "tracing",
    "tree_report",
    "validate_chrome_trace",
    "write_chrome_trace",
]
