"""Zero-dependency observability for the pipeline *and* the serving
stack: tracing, metrics, flight records, audits.

The paper's whole evaluation is observational — it watches what the
relational back-end does with isolated join graphs.  This package
gives the reproduction the same eyes on itself, from single compiles
up through the sharded, fault-injected serving layers:

* :mod:`repro.obs.tracer` — nested spans over the pipeline phases
  (parse → normalize → loop-lift → isolate → codegen → execute) and
  the service layers (``service.query``, ``service.scatter``,
  ``service.retry`` …), with a shared-singleton no-op path when
  disabled;
* :mod:`repro.obs.metrics` — process-global counters / gauges /
  quantile histograms (rewrite-rule fires, SQL statement stats, cache
  hit tiers, retry/breaker/degrade recoveries, scatter fan-outs) with
  lossless merge across worker and shard registries;
* :mod:`repro.obs.flight` — the always-on query flight recorder: one
  structured record per served query in a bounded ring, plus the
  slow-query log (trace spans + ``EXPLAIN`` for slow, degraded or
  surfaced queries);
* :mod:`repro.obs.audit` — the planner estimate-vs-actual cardinality
  audit (q-error per operator);
* :mod:`repro.obs.export` — Chrome trace-event JSON, flat metrics
  JSON, Prometheus text exposition, and a terminal span tree;
* :mod:`repro.obs.report` — the composed ``repro obs`` summary.

See ``docs/observability.md`` for the span taxonomy, metric name
catalog, flight-record fields, exporter formats, and the q-error
definition.
"""

from repro.obs.audit import OperatorAudit, audit_plan, qerror
from repro.obs.export import (
    chrome_trace,
    metrics_json,
    prometheus_text,
    tree_report,
    validate_chrome_trace,
    validate_prometheus_text,
    write_chrome_trace,
)
from repro.obs.flight import (
    FlightRecord,
    FlightRecorder,
    SlowCapture,
    validate_flight_snapshot,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    get_metrics,
    latency_summary_ms,
    metrics_scope,
    record_diagnostics,
    set_metrics,
)
from repro.obs.report import phase_profile, qerror_table, summary_report
from repro.obs.tracer import (
    NULL_SPAN,
    Event,
    NullSpan,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "NULL_SPAN",
    "Event",
    "FlightRecord",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "NullSpan",
    "OperatorAudit",
    "SlowCapture",
    "Span",
    "Tracer",
    "audit_plan",
    "chrome_trace",
    "get_metrics",
    "get_tracer",
    "latency_summary_ms",
    "metrics_json",
    "metrics_scope",
    "phase_profile",
    "prometheus_text",
    "qerror",
    "qerror_table",
    "record_diagnostics",
    "set_metrics",
    "set_tracer",
    "summary_report",
    "tracing",
    "tree_report",
    "validate_chrome_trace",
    "validate_flight_snapshot",
    "validate_prometheus_text",
    "write_chrome_trace",
]
