"""Composed observability summary — what ``repro obs`` prints.

One :func:`summary_report` call renders, in order: the span tree
(where did the time go), the rewrite-rule fire counts (which of the 19
isolation rules are hot), SQL back-end statistics, the planner
q-error table (estimate quality), and analysis health (JGI diagnostic
counts from the sanitizer/linter, when a checked run recorded any).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.obs.export import tree_report
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.audit import OperatorAudit

__all__ = ["phase_profile", "qerror_table", "summary_report"]


def phase_profile(tracer: Tracer) -> dict[str, float]:
    """Total seconds per span name, aggregated over the whole forest —
    the flat per-phase breakdown the bench harness embeds in its JSON
    output.  Nested spans contribute to their own bucket only, so the
    buckets are *inclusive* times per phase name."""
    totals: dict[str, float] = {}
    for span in tracer.walk():
        totals[span.name] = totals.get(span.name, 0.0) + span.duration_ns / 1e9
    return totals


def qerror_table(audits: Sequence["OperatorAudit"]) -> str:
    """Render the estimate-vs-actual audit as an aligned table."""
    if not audits:
        return "(no planner steps audited)"
    header = (
        f"{'#':>2} {'alias':<6} {'step':<7} {'estimated':>12} "
        f"{'actual':>9} {'q-error':>9}  operator"
    )
    lines = [header, "-" * len(header)]
    for audit in audits:
        direction = "under" if audit.underestimated else "over"
        q = audit.q
        flag = "" if q < 10 else f"  !{direction}"
        lines.append(
            f"{audit.position + 1:>2} {audit.alias:<6} {audit.kind:<7} "
            f"{audit.estimated:>12.1f} {audit.actual:>9} {q:>9.2f}"
            f"  {audit.operator}{flag}"
        )
    worst = max(audits, key=lambda a: a.q)
    lines.append(
        f"-- worst q-error {worst.q:.2f} at {worst.alias} "
        f"({'under' if worst.underestimated else 'over'}-estimated)"
    )
    return "\n".join(lines)


def _counter_section(
    title: str, counters: dict[str, float], unit: str = ""
) -> list[str]:
    if not counters:
        return []
    lines = [title]
    width = max(len(k) for k in counters)
    for name, value in sorted(counters.items(), key=lambda kv: (-kv[1], kv[0])):
        rendered = f"{value:g}{unit}"
        lines.append(f"  {name:<{width}}  {rendered:>10}")
    return lines


def summary_report(
    tracer: Tracer,
    metrics: MetricsRegistry,
    audits: Sequence["OperatorAudit"] | None = None,
) -> str:
    """The full human-readable observability summary."""
    sections: list[str] = []

    sections.append("== spans (where the time went) ==")
    sections.append(tree_report(tracer))

    rule_fires = metrics.prefixed("rewrite.rule_fired")
    if rule_fires:
        sections.append("")
        sections.extend(
            _counter_section(
                "== rewrite rules (fires per rule) ==",
                {f"rule ({name})": fires for name, fires in rule_fires.items()},
            )
        )
    shrink = metrics.gauges.get("rewrite.nodes_removed")
    if shrink is not None:
        before = metrics.gauges.get("rewrite.nodes_before", 0)
        after = metrics.gauges.get("rewrite.nodes_after", 0)
        sections.append(
            f"  plan size {before:g} -> {after:g} operators "
            f"({shrink:g} removed)"
        )

    sql_stats = {
        name: value
        for name, value in metrics.counters.items()
        if name.startswith("sql.")
    }
    if sql_stats:
        sections.append("")
        sections.extend(_counter_section("== sql back-end ==", sql_stats))
        run_ns = metrics.histograms.get("sql.run_ns")
        if run_ns is not None and run_ns.count:
            sections.append(
                f"  statement time: mean {run_ns.mean / 1e6:.3f} ms, "
                f"p95 {run_ns.quantile(0.95) / 1e6:.3f} ms, "
                f"max {run_ns.maximum / 1e6:.3f} ms over {run_ns.count} stmt(s)"
            )

    service_stats = {
        name: value
        for name, value in metrics.counters.items()
        if name.startswith("service.")
    }
    if service_stats:
        sections.append("")
        sections.extend(
            _counter_section(
                "== service layer (compiled-plan cache + pool) ==",
                service_stats,
            )
        )
        exact_hits = metrics.counters.get("service.cache.hits", 0)
        canonical_hits = metrics.counters.get("service.cache.canonical_hit", 0)
        view_hits = metrics.counters.get("service.cache.view_hit", 0)
        misses = metrics.counters.get("service.cache.misses", 0)
        if exact_hits or canonical_hits or view_hits or misses:
            sections.append(
                f"  cache outcomes: {exact_hits:g} exact hit(s), "
                f"{canonical_hits:g} canonical hit(s), "
                f"{view_hits:g} view hit(s), "
                f"{misses:g} miss(es)"
            )
        query_ns = metrics.histograms.get("service.query_ns")
        if query_ns is not None and query_ns.count:
            sections.append(
                f"  query latency: mean {query_ns.mean / 1e6:.3f} ms, "
                f"p50 {query_ns.quantile(0.50) / 1e6:.3f} ms, "
                f"p95 {query_ns.quantile(0.95) / 1e6:.3f} ms, "
                f"p99 {query_ns.quantile(0.99) / 1e6:.3f} ms, "
                f"max {query_ns.maximum / 1e6:.3f} ms over "
                f"{query_ns.count} query(ies)"
            )

    if audits:
        sections.append("")
        sections.append("== planner estimate audit (q-error) ==")
        sections.append(qerror_table(audits))

    findings = metrics.prefixed("analysis.diagnostics")
    sections.append("")
    if findings:
        sections.extend(
            _counter_section("== analysis health (JGI findings) ==", findings)
        )
    else:
        sections.append("== analysis health ==")
        sections.append("  no diagnostics recorded")

    return "\n".join(sections)
